"""Unit tests for the cross-server replication subsystem.

The write-ahead log, the replica state machine (strict sequence order,
idempotent duplicates, gap stalls), streaming over the simulated network and
the anti-entropy catch-up after outages.
"""

import pytest

from repro.errors import ECommerceError, ReplicationError
from repro.core.profile import Profile
from repro.core.ratings import Interaction, InteractionKind
from repro.ecommerce.platform_builder import PlatformConfig, build_platform
from repro.ecommerce.replication import ReplicaState, ReplicationLog
from repro.ecommerce.transactions import TransactionKind, TransactionRecord


def _profile_dicts(db):
    return {profile.user_id: profile.to_dict() for profile in db.profiles()}


def _entry_payloads(user_id="ann"):
    """An ordered, applicable mutation history for one consumer."""
    profile = Profile(user_id)
    profile.category("books").preference = 3.0
    profile.category("books").terms.set("fantasy", 1.5)
    interaction = Interaction(
        user_id=user_id, item_id="item-1", kind=InteractionKind.BUY, timestamp=4.0
    )
    transaction = TransactionRecord.create(
        user_id=user_id, item_id="item-1", marketplace="marketplace-1",
        kind=TransactionKind.DIRECT_PURCHASE, price=9.0, list_price=10.0,
        timestamp=5.0,
    )
    return [
        ("register", {"user_id": user_id, "display_name": "Ann", "timestamp": 1.0}),
        ("store-profile", {"profile": profile.to_dict()}),
        ("interaction", {"interaction": interaction}),
        ("transaction", {"transaction": transaction}),
        ("login", {"user_id": user_id, "timestamp": 6.0}),
    ]


class TestReplicationLog:
    def test_sequence_numbers_are_monotonic_from_one(self):
        log = ReplicationLog()
        entries = [
            log.append(op, payload, timestamp=float(i))
            for i, (op, payload) in enumerate(_entry_payloads())
        ]
        assert [entry.seq for entry in entries] == [1, 2, 3, 4, 5]
        assert log.last_seq == 5

    def test_entries_since_returns_the_suffix(self):
        log = ReplicationLog()
        for op, payload in _entry_payloads():
            log.append(op, payload, timestamp=0.0)
        assert [e.seq for e in log.entries_since(0)] == [1, 2, 3, 4, 5]
        assert [e.seq for e in log.entries_since(3)] == [4, 5]
        assert log.entries_since(5) == []
        with pytest.raises(ReplicationError):
            log.entries_since(-1)


class TestReplicaState:
    def _filled_log(self):
        log = ReplicationLog()
        for op, payload in _entry_payloads():
            log.append(op, payload, timestamp=0.0)
        return log

    def test_applies_full_history_in_order(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        assert state.apply_entries(log.entries_since(0)) == 5
        assert state.applied_seq == 5
        assert state.db.is_registered("ann")
        assert state.db.profile("ann").category("books", create=False).preference == 3.0
        assert len(state.db.ratings.interactions_of("ann")) == 1
        assert len(state.db.transactions_of("ann")) == 1
        assert state.db.user("ann").logins == 1

    def test_duplicate_entries_are_idempotent(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        state.apply_entries(log.entries_since(0))
        assert state.apply_entries(log.entries_since(0)) == 0
        assert state.applied_seq == 5
        assert len(state.db.ratings.interactions_of("ann")) == 1

    def test_gap_stalls_until_the_suffix_is_shipped(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        entries = log.entries_since(0)
        state.apply_entries(entries[:1])
        # Entries 3..5 without 2: nothing applies, the replica waits.
        assert state.apply_entries(entries[2:]) == 0
        assert state.applied_seq == 1
        # Anti-entropy ships the full suffix: everything applies.
        assert state.apply_entries(entries[1:]) == 4
        assert state.applied_seq == 5

    def test_unknown_op_is_rejected(self):
        log = ReplicationLog()
        log.append("format-disk", {}, timestamp=0.0)
        state = ReplicaState("primary")
        with pytest.raises(ReplicationError):
            state.apply_entries(log.entries_since(0))

    def test_login_stats_restore_applies(self):
        """The promotion path replicates adopted login aggregates as a
        durable ``login-stats`` op."""
        log = self._filled_log()
        log.append(
            "login-stats",
            {"user_id": "ann", "logins": 7, "last_login_at": 42.0},
            timestamp=8.0,
        )
        state = ReplicaState("primary")
        state.apply_entries(log.entries_since(0))
        record = state.db.user("ann")
        assert record.logins == 7
        assert record.last_login_at == 42.0

    def test_unregister_round_trips(self):
        log = self._filled_log()
        log.append("unregister", {"user_id": "ann"}, timestamp=7.0)
        state = ReplicaState("primary")
        state.apply_entries(log.entries_since(0))
        assert not state.db.is_registered("ann")
        assert state.db.ratings.interactions_of("ann") == []


@pytest.fixture
def replicated_platform():
    return build_platform(seed=11, num_buyer_servers=3, replication_factor=1)


class TestStreamingReplication:
    def test_mutations_stream_to_the_replica_synchronously(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.query("book")
        session.logout()

        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]
        replica = peer.replication.hosted[owner.name]
        assert owner.replication.lag_of(peer.name) == 0
        assert replica.db.is_registered("ann")
        assert (
            replica.db.profile("ann").to_dict()
            == owner.user_db.profile("ann").to_dict()
        )
        assert (
            replica.db.ratings.interactions_of("ann")
            == owner.user_db.ratings.interactions_of("ann")
        )

    def test_replication_traffic_is_charged_to_the_network(self, replicated_platform):
        platform = replicated_platform
        before = platform.network.total_bytes
        session = platform.login("ann")
        session.logout()
        replication_transfers = [
            event for event in platform.event_log.by_category("transfer.replication")
        ]
        assert replication_transfers
        assert platform.network.total_bytes > before

    def test_partition_defers_then_anti_entropy_catches_up(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.logout()
        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]

        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.query("book")
        session.logout()
        assert owner.replication.lag_of(peer.name) > 0
        assert platform.metrics.counter("replication.deferred").value > 0

        platform.failures.heal()
        # One anti-entropy interval later the replica has converged.
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        assert owner.replication.lag_of(peer.name) == 0
        replica = peer.replication.hosted[owner.name]
        assert (
            replica.db.profile("ann").to_dict()
            == owner.user_db.profile("ann").to_dict()
        )
        assert platform.event_log.count("replication.catch-up") >= 1

    def test_lag_is_visible_in_metrics(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.logout()
        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]
        gauge = platform.metrics.gauge(
            f"replication.lag.{owner.name}->{peer.name}"
        )
        assert gauge.value == 0.0

        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.logout()
        platform.failures.heal()
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        assert gauge.value == 0.0  # converged again, and the gauge says so

    def test_wiring_misuse_raises(self, replicated_platform):
        platform = replicated_platform
        first, second = platform.buyer_servers[0], platform.buyer_servers[1]
        with pytest.raises(ECommerceError):
            first.enable_replication()  # already enabled by the builder
        with pytest.raises(ReplicationError):
            first.replication.replicate_to(first)  # self-replication
        with pytest.raises(ReplicationError):
            first.replication.replicate_to(second)  # already a peer
        with pytest.raises(ReplicationError):
            first.replication.lag_of("no-such-peer")
        with pytest.raises(ReplicationError):
            first.replication.start_anti_entropy(500.0)  # already scheduled


class TestLogTruncation:
    def _filled_log(self):
        log = ReplicationLog()
        for op, payload in _entry_payloads():
            log.append(op, payload, timestamp=0.0)
        return log

    def test_truncate_keeps_sequence_numbers_and_drops_storage(self):
        log = self._filled_log()
        assert log.truncate_through(3) == 3
        assert log.truncated_seq == 3
        assert log.last_seq == 5
        assert len(log) == 2
        assert [e.seq for e in log.entries_since(3)] == [4, 5]
        # Appending continues the original numbering.
        entry = log.append("login", {"user_id": "ann", "timestamp": 9.0}, 9.0)
        assert entry.seq == 6

    def test_entries_below_the_truncation_point_are_refused(self):
        log = self._filled_log()
        log.truncate_through(3)
        with pytest.raises(ReplicationError):
            log.entries_since(2)

    def test_truncating_past_the_log_or_backwards_is_refused(self):
        log = self._filled_log()
        with pytest.raises(ReplicationError):
            log.truncate_through(6)
        log.truncate_through(4)
        assert log.truncate_through(4) == 0  # idempotent no-op
        assert log.truncate_through(2) == 0  # never regress


class TestBoundedWal:
    def _busy_platform(self, threshold=5, sessions=6):
        platform = build_platform(
            seed=11, num_buyer_servers=3, replication_factor=1,
            replication_wal_truncate_threshold=threshold,
        )
        keyword = next(iter(platform.catalog_view())).terms[0][0]
        for _ in range(sessions):
            session = platform.login("ann")
            results = session.query(keyword)
            if results:
                session.buy(results[0].item, marketplace=results[0].marketplace)
            session.logout()
        return platform

    def test_anti_entropy_truncates_the_acknowledged_prefix(self):
        platform = self._busy_platform(threshold=5)
        fleet = platform.fleet
        owner = fleet.server_for("ann")
        manager = owner.replication
        appended = manager.log.last_seq
        assert appended > 5  # enough traffic to cross the threshold
        assert manager.lag_of(manager.peers[0].name) == 0

        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )

        assert manager.log.truncated_seq == appended
        assert len(manager.log) == 0
        assert manager.snapshot is not None
        assert manager.snapshot.seq >= appended
        assert platform.event_log.count("replication.wal-truncated") >= 1
        assert (
            platform.metrics.counter("replication.wal.truncated_entries").value
            >= appended
        )

    def test_truncation_never_drops_unacknowledged_entries(self):
        """The satellite invariant: a lagging peer holds truncation back."""
        platform = self._busy_platform(threshold=3)
        fleet = platform.fleet
        owner = fleet.server_for("ann")
        manager = owner.replication
        peer = manager.peers[0]

        # Flush what is already acknowledged, then lag the peer.
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        acked_before = manager.acked_seq(peer.name)
        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.query("book")
        session.logout()
        assert manager.lag_of(peer.name) > 0

        # Anti-entropy keeps running but must not truncate past the lagging
        # peer's acknowledgement — those entries are its only way back.
        platform.scheduler.run_for(
            3 * platform.config.replication_anti_entropy_interval_ms
        )
        assert manager.log.truncated_seq <= acked_before
        assert [e.seq for e in manager.log.entries_since(manager.log.truncated_seq)]

        # Heal: the peer catches up from the retained suffix, byte for byte,
        # and truncation resumes.
        platform.failures.heal()
        platform.scheduler.run_for(
            2 * platform.config.replication_anti_entropy_interval_ms
        )
        assert manager.lag_of(peer.name) == 0
        replica = peer.replication.hosted[owner.name]
        assert _profile_dicts(replica.db) == _profile_dicts(owner.user_db)
        # Truncation resumed: at most one sub-threshold tail is retained.
        assert manager.log.truncated_seq > acked_before or len(manager.log) < 3
        assert len(manager.log) < 3

    def test_peer_crash_during_catch_up_defers_and_preserves_entries(self):
        """A peer that dies mid-catch-up loses nothing: shipments defer, the
        suffix stays in the log, and recovery converges byte-identically."""
        platform = self._busy_platform(threshold=3)
        fleet = platform.fleet
        owner = fleet.server_for("ann")
        manager = owner.replication
        peer = manager.peers[0]

        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.query("book")
        session.logout()
        platform.failures.heal()
        # Mid-catch-up the peer crashes outright.
        platform.failures.crash_host(peer.name)
        deferred_before = platform.metrics.counter("replication.deferred").value
        platform.scheduler.run_for(
            2 * platform.config.replication_anti_entropy_interval_ms
        )
        assert platform.metrics.counter("replication.deferred").value > deferred_before
        assert manager.lag_of(peer.name) > 0
        acked = manager.acked_seq(peer.name)
        assert manager.log.truncated_seq <= acked

        platform.failures.recover_host(peer.name)
        platform.scheduler.run_for(
            2 * platform.config.replication_anti_entropy_interval_ms
        )
        assert manager.lag_of(peer.name) == 0
        replica = peer.replication.hosted[owner.name]
        assert _profile_dicts(replica.db) == _profile_dicts(owner.user_db)

    def test_new_peer_after_truncation_bootstraps_from_the_snapshot(self):
        """A peer wired after the acknowledged prefix was truncated cannot
        replay from seq 1 — it receives the snapshot, then the tail."""
        platform = self._busy_platform(threshold=3)
        fleet = platform.fleet
        owner = fleet.server_for("ann")
        manager = owner.replication
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        assert manager.log.truncated_seq > 0

        newcomer = next(
            server for server in fleet.servers
            if server is not owner
            and all(peer is not server for peer in manager.peers)
        )
        state = manager.replicate_to(newcomer)

        assert state.applied_seq == manager.log.last_seq
        assert manager.lag_of(newcomer.name) == 0
        assert _profile_dicts(state.db) == _profile_dicts(owner.user_db)
        assert (
            platform.metrics.counter("replication.snapshots_shipped").value >= 1
        )
        assert platform.event_log.count("replication.snapshot-bootstrap") >= 1

    def test_snapshot_bootstrap_equals_entry_replay(self):
        """Replaying entries 1..n and bootstrapping from a snapshot at n
        produce byte-identical replicas."""
        platform = self._busy_platform(threshold=0)  # keep the full log
        fleet = platform.fleet
        owner = fleet.server_for("ann")
        manager = owner.replication

        replayed = ReplicaState(owner.name)
        replayed.apply_entries(manager.log.entries_since(0))
        bootstrapped = ReplicaState(owner.name)
        bootstrapped.bootstrap(manager._capture_snapshot())

        assert bootstrapped.applied_seq == replayed.applied_seq
        assert _profile_dicts(bootstrapped.db) == _profile_dicts(replayed.db)
        assert bootstrapped.db.user_ids == replayed.db.user_ids
        for user_id in replayed.db.user_ids:
            assert (
                bootstrapped.db.ratings.interactions_of(user_id)
                == replayed.db.ratings.interactions_of(user_id)
            )
            assert (
                bootstrapped.db.transactions_of(user_id)
                == replayed.db.transactions_of(user_id)
            )
            boot_record = bootstrapped.db.user(user_id)
            replay_record = replayed.db.user(user_id)
            assert boot_record.logins == replay_record.logins
            assert boot_record.last_login_at == replay_record.last_login_at

    def test_replica_never_regresses_to_an_older_snapshot(self):
        platform = self._busy_platform(threshold=0)
        owner = platform.fleet.server_for("ann")
        manager = owner.replication
        snapshot = manager._capture_snapshot()
        state = ReplicaState(owner.name)
        state.apply_entries(manager.log.entries_since(0))
        session = platform.login("ann")
        session.logout()
        state.apply_entries(manager.log.entries_since(state.applied_seq))
        with pytest.raises(ReplicationError):
            state.bootstrap(snapshot)

    def test_zero_threshold_disables_truncation(self):
        platform = self._busy_platform(threshold=0)
        owner = platform.fleet.server_for("ann")
        platform.scheduler.run_for(
            5 * platform.config.replication_anti_entropy_interval_ms
        )
        assert owner.replication.log.truncated_seq == 0
        assert len(owner.replication.log) == owner.replication.log.last_seq


class TestPlatformConfigValidation:
    def test_replication_factor_needs_enough_servers(self):
        config = PlatformConfig(num_buyer_servers=2, replication_factor=2)
        with pytest.raises(ECommerceError):
            config.validate()

    def test_negative_factor_rejected(self):
        config = PlatformConfig(replication_factor=-1)
        with pytest.raises(ECommerceError):
            config.validate()

    def test_negative_truncate_threshold_rejected(self):
        config = PlatformConfig(replication_wal_truncate_threshold=-1)
        with pytest.raises(ECommerceError):
            config.validate()

    def test_topology_reports_the_replica_map(self):
        platform = build_platform(seed=3, num_buyer_servers=2, replication_factor=1)
        topology = platform.coordinator.topology()
        names = [server.name for server in platform.buyer_servers]
        assert topology["replica_map"] == {
            names[0]: [names[1]],
            names[1]: [names[0]],
        }
