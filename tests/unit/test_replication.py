"""Unit tests for the cross-server replication subsystem.

The write-ahead log, the replica state machine (strict sequence order,
idempotent duplicates, gap stalls), streaming over the simulated network and
the anti-entropy catch-up after outages.
"""

import pytest

from repro.errors import ECommerceError, ReplicationError
from repro.core.profile import Profile
from repro.core.ratings import Interaction, InteractionKind
from repro.ecommerce.platform_builder import PlatformConfig, build_platform
from repro.ecommerce.replication import ReplicaState, ReplicationLog
from repro.ecommerce.transactions import TransactionKind, TransactionRecord


def _entry_payloads(user_id="ann"):
    """An ordered, applicable mutation history for one consumer."""
    profile = Profile(user_id)
    profile.category("books").preference = 3.0
    profile.category("books").terms.set("fantasy", 1.5)
    interaction = Interaction(
        user_id=user_id, item_id="item-1", kind=InteractionKind.BUY, timestamp=4.0
    )
    transaction = TransactionRecord.create(
        user_id=user_id, item_id="item-1", marketplace="marketplace-1",
        kind=TransactionKind.DIRECT_PURCHASE, price=9.0, list_price=10.0,
        timestamp=5.0,
    )
    return [
        ("register", {"user_id": user_id, "display_name": "Ann", "timestamp": 1.0}),
        ("store-profile", {"profile": profile.to_dict()}),
        ("interaction", {"interaction": interaction}),
        ("transaction", {"transaction": transaction}),
        ("login", {"user_id": user_id, "timestamp": 6.0}),
    ]


class TestReplicationLog:
    def test_sequence_numbers_are_monotonic_from_one(self):
        log = ReplicationLog()
        entries = [
            log.append(op, payload, timestamp=float(i))
            for i, (op, payload) in enumerate(_entry_payloads())
        ]
        assert [entry.seq for entry in entries] == [1, 2, 3, 4, 5]
        assert log.last_seq == 5

    def test_entries_since_returns_the_suffix(self):
        log = ReplicationLog()
        for op, payload in _entry_payloads():
            log.append(op, payload, timestamp=0.0)
        assert [e.seq for e in log.entries_since(0)] == [1, 2, 3, 4, 5]
        assert [e.seq for e in log.entries_since(3)] == [4, 5]
        assert log.entries_since(5) == []
        with pytest.raises(ReplicationError):
            log.entries_since(-1)


class TestReplicaState:
    def _filled_log(self):
        log = ReplicationLog()
        for op, payload in _entry_payloads():
            log.append(op, payload, timestamp=0.0)
        return log

    def test_applies_full_history_in_order(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        assert state.apply_entries(log.entries_since(0)) == 5
        assert state.applied_seq == 5
        assert state.db.is_registered("ann")
        assert state.db.profile("ann").category("books", create=False).preference == 3.0
        assert len(state.db.ratings.interactions_of("ann")) == 1
        assert len(state.db.transactions_of("ann")) == 1
        assert state.db.user("ann").logins == 1

    def test_duplicate_entries_are_idempotent(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        state.apply_entries(log.entries_since(0))
        assert state.apply_entries(log.entries_since(0)) == 0
        assert state.applied_seq == 5
        assert len(state.db.ratings.interactions_of("ann")) == 1

    def test_gap_stalls_until_the_suffix_is_shipped(self):
        log = self._filled_log()
        state = ReplicaState("primary")
        entries = log.entries_since(0)
        state.apply_entries(entries[:1])
        # Entries 3..5 without 2: nothing applies, the replica waits.
        assert state.apply_entries(entries[2:]) == 0
        assert state.applied_seq == 1
        # Anti-entropy ships the full suffix: everything applies.
        assert state.apply_entries(entries[1:]) == 4
        assert state.applied_seq == 5

    def test_unknown_op_is_rejected(self):
        log = ReplicationLog()
        log.append("format-disk", {}, timestamp=0.0)
        state = ReplicaState("primary")
        with pytest.raises(ReplicationError):
            state.apply_entries(log.entries_since(0))

    def test_unregister_round_trips(self):
        log = self._filled_log()
        log.append("unregister", {"user_id": "ann"}, timestamp=7.0)
        state = ReplicaState("primary")
        state.apply_entries(log.entries_since(0))
        assert not state.db.is_registered("ann")
        assert state.db.ratings.interactions_of("ann") == []


@pytest.fixture
def replicated_platform():
    return build_platform(seed=11, num_buyer_servers=3, replication_factor=1)


class TestStreamingReplication:
    def test_mutations_stream_to_the_replica_synchronously(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.query("book")
        session.logout()

        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]
        replica = peer.replication.hosted[owner.name]
        assert owner.replication.lag_of(peer.name) == 0
        assert replica.db.is_registered("ann")
        assert (
            replica.db.profile("ann").to_dict()
            == owner.user_db.profile("ann").to_dict()
        )
        assert (
            replica.db.ratings.interactions_of("ann")
            == owner.user_db.ratings.interactions_of("ann")
        )

    def test_replication_traffic_is_charged_to_the_network(self, replicated_platform):
        platform = replicated_platform
        before = platform.network.total_bytes
        session = platform.login("ann")
        session.logout()
        replication_transfers = [
            event for event in platform.event_log.by_category("transfer.replication")
        ]
        assert replication_transfers
        assert platform.network.total_bytes > before

    def test_partition_defers_then_anti_entropy_catches_up(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.logout()
        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]

        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.query("book")
        session.logout()
        assert owner.replication.lag_of(peer.name) > 0
        assert platform.metrics.counter("replication.deferred").value > 0

        platform.failures.heal()
        # One anti-entropy interval later the replica has converged.
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        assert owner.replication.lag_of(peer.name) == 0
        replica = peer.replication.hosted[owner.name]
        assert (
            replica.db.profile("ann").to_dict()
            == owner.user_db.profile("ann").to_dict()
        )
        assert platform.event_log.count("replication.catch-up") >= 1

    def test_lag_is_visible_in_metrics(self, replicated_platform):
        platform = replicated_platform
        fleet = platform.fleet
        session = platform.login("ann")
        session.logout()
        owner = fleet.server_for("ann")
        peer = owner.replication.peers[0]
        gauge = platform.metrics.gauge(
            f"replication.lag.{owner.name}->{peer.name}"
        )
        assert gauge.value == 0.0

        platform.failures.partition([owner.name], [peer.name])
        session = platform.login("ann")
        session.logout()
        platform.failures.heal()
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )
        assert gauge.value == 0.0  # converged again, and the gauge says so

    def test_wiring_misuse_raises(self, replicated_platform):
        platform = replicated_platform
        first, second = platform.buyer_servers[0], platform.buyer_servers[1]
        with pytest.raises(ECommerceError):
            first.enable_replication()  # already enabled by the builder
        with pytest.raises(ReplicationError):
            first.replication.replicate_to(first)  # self-replication
        with pytest.raises(ReplicationError):
            first.replication.replicate_to(second)  # already a peer
        with pytest.raises(ReplicationError):
            first.replication.lag_of("no-such-peer")
        with pytest.raises(ReplicationError):
            first.replication.start_anti_entropy(500.0)  # already scheduled


class TestPlatformConfigValidation:
    def test_replication_factor_needs_enough_servers(self):
        config = PlatformConfig(num_buyer_servers=2, replication_factor=2)
        with pytest.raises(ECommerceError):
            config.validate()

    def test_negative_factor_rejected(self):
        config = PlatformConfig(replication_factor=-1)
        with pytest.raises(ECommerceError):
            config.validate()

    def test_topology_reports_the_replica_map(self):
        platform = build_platform(seed=3, num_buyer_servers=2, replication_factor=1)
        topology = platform.coordinator.topology()
        names = [server.name for server in platform.buyer_servers]
        assert topology["replica_map"] == {
            names[0]: [names[1]],
            names[1]: [names[0]],
        }
