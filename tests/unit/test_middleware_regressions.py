"""Regression tests for the middleware bugfix sweep (PR 6 satellites).

Each test here fails on the pre-PR code:

- ``TokenBucket`` anchored its refill at 0.0 ms, granting a spurious full
  refill to the first acquire on any warm clock, and ``__post_init__``
  clobbered an explicitly passed ``tokens`` value with a full bucket.
- ``RetryMiddleware`` mutated the dispatch's envelope in place
  (``response.status = DEGRADED``), rewriting history for any cached or
  logged reference to it.
- ``MetricsMiddleware`` recorded ~0 ms latency samples for
  admission-rejected requests, dragging the latency percentiles toward
  zero exactly when shedding meant the platform was slowest.
"""

import pytest

from repro.api.envelope import ApiError, ApiResponse, ApiStatus
from repro.api.middleware import (
    ApiCall,
    MetricsMiddleware,
    RetryMiddleware,
    TokenBucket,
)
from repro.platform.clock import SimulationClock
from repro.platform.metrics import MetricsRegistry


class TestTokenBucketAnchoring:
    def test_no_spurious_refill_on_warm_clock(self):
        """A drained bucket's first acquire on a warm clock must not be
        granted capacity it never accrued (old code refilled from 0.0)."""
        bucket = TokenBucket(capacity=5.0, refill_per_ms=1.0, tokens=0.0)
        assert not bucket.try_acquire(1_000.0)

    def test_refill_accrues_from_first_acquire_anchor(self):
        bucket = TokenBucket(capacity=5.0, refill_per_ms=1.0, tokens=0.0)
        assert not bucket.try_acquire(1_000.0)  # anchors at 1000ms
        assert bucket.try_acquire(1_003.0)      # 3ms * 1/ms accrued
        assert bucket.tokens == pytest.approx(2.0)

    def test_explicit_tokens_respected(self):
        """Old ``__post_init__`` clobbered any explicit ``tokens`` value to
        a full bucket."""
        bucket = TokenBucket(capacity=5.0, refill_per_ms=0.0, tokens=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_explicit_tokens_clamped_to_capacity(self):
        bucket = TokenBucket(capacity=3.0, refill_per_ms=0.0, tokens=10.0)
        assert bucket.tokens == 3.0

    def test_defaults_to_full_bucket(self):
        bucket = TokenBucket(capacity=3.0, refill_per_ms=0.0)
        assert bucket.tokens == 3.0

    def test_explicit_anchor_still_respected(self):
        """A bucket constructed with ``last_refill_ms`` (the gateway's own
        construction path) refills from that anchor, not the first acquire."""
        bucket = TokenBucket(
            capacity=5.0, refill_per_ms=1.0, tokens=0.0, last_refill_ms=100.0
        )
        assert bucket.try_acquire(102.0)
        assert bucket.tokens == pytest.approx(1.0)


class _RetryableRequest:
    """Minimal request shape: retryable writes allowed, carries a user."""

    operation = "stub"
    retry_safe = True

    def __init__(self, user_id="alice"):
        self.user_id = user_id


class _StubGateway:
    def __init__(self, heals=True):
        self._heals = heals

    def _heal_routing(self, user_id):
        return self._heals


class TestRetryMiddlewareEnvelopeAliasing:
    def test_degraded_report_does_not_mutate_dispatch_envelope(self):
        """The OK envelope the dispatch returned may be cached downstream;
        reporting a post-failover success as DEGRADED must replace the
        envelope, never alias it."""
        clock = SimulationClock()
        metrics = MetricsRegistry()
        middleware = RetryMiddleware(
            max_retries=2, backoff_ms=5.0, metrics=metrics, clock=clock
        )
        shared_ok = ApiResponse(status=ApiStatus.OK, result="cached-elsewhere")
        responses = [
            ApiResponse(
                status=ApiStatus.UNAVAILABLE,
                error=ApiError(
                    code="host-unreachable",
                    kind="RoutingUnavailableError",
                    message="down",
                    retryable=True,
                ),
            ),
            shared_ok,
        ]
        call = ApiCall(
            gateway=_StubGateway(heals=True),
            request=_RetryableRequest(),
            operation="stub",
            request_id=1,
        )
        result = middleware.handle(call, lambda _call: responses.pop(0))

        assert result.status == ApiStatus.DEGRADED
        assert result is not shared_ok
        assert shared_ok.status == ApiStatus.OK, (
            "retry middleware aliased the dispatch's envelope"
        )
        assert result.result == "cached-elsewhere"

    def test_no_failover_returns_envelope_unchanged(self):
        clock = SimulationClock()
        middleware = RetryMiddleware(
            max_retries=2, backoff_ms=5.0, metrics=MetricsRegistry(), clock=clock
        )
        ok = ApiResponse(status=ApiStatus.OK)
        call = ApiCall(
            gateway=_StubGateway(heals=False),
            request=_RetryableRequest(),
            operation="stub",
            request_id=1,
        )
        assert middleware.handle(call, lambda _call: ok) is ok


class TestMetricsMiddlewareRejectedLatency:
    def _run(self, status):
        clock = SimulationClock()
        metrics = MetricsRegistry()
        middleware = MetricsMiddleware(metrics, clock)
        call = ApiCall(
            gateway=None, request=object(), operation="query", request_id=1
        )
        response = ApiResponse(status=status)
        middleware.handle(call, lambda _call: response)
        return metrics

    def test_rejected_requests_record_no_latency_sample(self):
        """A shed request spends ~0 simulated ms; letting it into the
        latency timers drags every percentile toward zero under burst."""
        metrics = self._run(ApiStatus.REJECTED)
        assert metrics.timer("api.latency_ms").summary()["count"] == 0
        assert metrics.timer("api.latency_ms.query").summary()["count"] == 0

    def test_rejected_requests_still_counted(self):
        metrics = self._run(ApiStatus.REJECTED)
        assert metrics.counter("api.requests").value == 1
        assert metrics.counter(f"api.status.{ApiStatus.REJECTED}").value == 1

    def test_dispatched_requests_still_record_latency(self):
        metrics = self._run(ApiStatus.OK)
        assert metrics.timer("api.latency_ms").summary()["count"] == 1
