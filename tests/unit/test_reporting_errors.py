"""Unit tests for the experiment reporting helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import format_table, print_result


class TestFormatTable:
    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"

    def test_renders_header_separator_and_rows(self):
        rows = [{"name": "a", "value": 1.25}, {"name": "bb", "value": 10.0}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_floats_formatted_consistently(self):
        text = format_table([{"x": 0.123456}])
        assert "0.1235" in text

    def test_large_floats_use_one_decimal(self):
        text = format_table([{"x": 123456.789}])
        assert "123456.8" in text

    def test_explicit_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_column_value_rendered_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        text = format_table(rows, columns=["a", "b"])
        assert text  # must not raise


class TestExperimentResult:
    def test_add_row_and_column(self):
        result = ExperimentResult("demo")
        result.add_row(x=1, y=2)
        result.add_row(x=3, y=4)
        assert result.column("x") == [1, 3]

    def test_notes_accumulate(self):
        result = ExperimentResult("demo")
        result.add_note("first")
        result.add_note("second")
        assert result.notes == ["first", "second"]

    def test_print_result_outputs_table(self, capsys):
        result = ExperimentResult("demo", description="a demo")
        result.add_row(metric=0.5)
        result.add_note("just a note")
        print_result(result)
        captured = capsys.readouterr().out
        assert "== demo ==" in captured
        assert "metric" in captured
        assert "just a note" in captured


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.PlatformError,
            errors.NetworkError,
            errors.AgentError,
            errors.AuthenticationError,
            errors.ECommerceError,
            errors.MarketplaceError,
            errors.AuctionError,
            errors.RecommendationError,
            errors.ProfileError,
            errors.SimilarityError,
            errors.WorkloadError,
            errors.ExperimentError,
        ],
    )
    def test_all_errors_share_the_base_class(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_specific_hierarchies(self):
        assert issubclass(errors.HostUnreachableError, errors.NetworkError)
        assert issubclass(errors.AuctionError, errors.MarketplaceError)
        assert issubclass(errors.MessageTimeoutError, errors.MessageDeliveryError)
        assert issubclass(errors.ColdStartError, errors.RecommendationError)

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.AuctionError("boom")
