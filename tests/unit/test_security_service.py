"""Unit coverage for :mod:`repro.agents.security`.

Pins the credential scheme's sharp edges — the expiry *boundary* (a
credential is valid at exactly ``expires_at`` and dead one tick after),
revocation, signature tampering, wrong session keys in the
challenge/response step — and the seeded-determinism contract the
platform builder relies on: same platform seed, same credential and
nonce streams, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.errors import AuthenticationError
from repro.agents.security import AgentCredential, AuthenticationService
from repro.ecommerce.platform_builder import build_platform


def _seeded_service(name: str = "server-a", seed: int = 5) -> AuthenticationService:
    token = f"auth|{seed}|{name}"
    return AuthenticationService(
        name,
        secret=token.encode("utf-8"),
        rng=random.Random(token),
    )


class TestExpiryBoundary:
    def test_credential_valid_at_exact_expiry_instant(self):
        auth = _seeded_service()
        credential = auth.issue("mba-1", owner="alice", now=100.0)

        # ``is_expired`` is ``now > expires_at``: the boundary itself passes.
        assert credential.expires_at == 100.0 + auth.credential_lifetime_ms
        assert auth.verify(credential, credential.expires_at) is True
        assert auth.verified_count == 1

    def test_credential_rejected_one_tick_past_expiry(self):
        auth = _seeded_service()
        credential = auth.issue("mba-1", owner="alice", now=100.0)

        with pytest.raises(AuthenticationError, match="expired"):
            auth.verify(credential, credential.expires_at + 0.001)
        assert auth.rejected_count == 1


class TestRevocationAndTampering:
    def test_revoked_credential_is_refused(self):
        auth = _seeded_service()
        credential = auth.issue("mba-1", owner="alice", now=0.0)
        auth.verify(credential, 1.0)

        auth.revoke("mba-1")
        with pytest.raises(AuthenticationError, match="revoked"):
            auth.verify(credential, 1.0)

    def test_tampered_session_key_breaks_the_signature(self):
        auth = _seeded_service()
        credential = auth.issue("mba-1", owner="alice", now=0.0)
        stolen = replace(credential, session_key="0" * 32)

        with pytest.raises(AuthenticationError, match="signature mismatch"):
            auth.verify(stolen, 1.0)

    def test_foreign_service_signature_is_refused(self):
        ours = _seeded_service("server-a")
        theirs = _seeded_service("server-b")
        credential = theirs.issue("mba-1", owner="alice", now=0.0)

        with pytest.raises(AuthenticationError, match="signature mismatch"):
            ours.verify(credential, 1.0)

    def test_wrong_session_key_fails_challenge_response(self):
        auth = _seeded_service()
        credential = auth.issue("mba-1", owner="alice", now=0.0)
        nonce = auth.challenge()

        # An imposter holding a different key computes a different echo.
        imposter = replace(
            credential,
            session_key="f" * 32,
            signature=auth._sign(
                credential.agent_id,
                credential.owner,
                credential.issued_at,
                credential.expires_at,
                "f" * 32,
            ),
        )
        forged = AuthenticationService.respond(imposter, nonce)
        with pytest.raises(AuthenticationError, match="challenge/response"):
            auth.verify_response(credential, nonce, forged, 1.0)

        # The honest holder's echo passes.
        honest = AuthenticationService.respond(credential, nonce)
        assert auth.verify_response(credential, nonce, honest, 1.0) is True


class TestSeededDeterminism:
    def test_same_seed_yields_identical_credential_and_nonce_streams(self):
        first = _seeded_service("server-a", seed=9)
        second = _seeded_service("server-a", seed=9)

        for index in range(5):
            a = first.issue(f"mba-{index}", owner="alice", now=float(index))
            b = second.issue(f"mba-{index}", owner="alice", now=float(index))
            assert a == b
        assert [first.challenge() for _ in range(5)] == [
            second.challenge() for _ in range(5)
        ]

    def test_different_servers_draw_different_streams(self):
        a = _seeded_service("server-a", seed=9)
        b = _seeded_service("server-b", seed=9)
        assert a.challenge() != b.challenge()

    def test_platform_builder_seeds_auth_from_platform_seed(self):
        """Regression: two same-seed platforms produce identical auth streams.

        The builder derives each server's signing secret and token RNG from
        ``(platform seed, host name)`` instead of OS entropy, so anything
        that stores a session key or nonce stays byte-reproducible.
        """
        one = build_platform(num_marketplaces=1, num_sellers=1,
                             items_per_seller=5, seed=13)
        two = build_platform(num_marketplaces=1, num_sellers=1,
                             items_per_seller=5, seed=13)
        auth_one = one.marketplaces[0].context.auth
        auth_two = two.marketplaces[0].context.auth

        assert auth_one.issue("mba-1", owner="alice", now=0.0) == auth_two.issue(
            "mba-1", owner="alice", now=0.0
        )
        assert [auth_one.challenge() for _ in range(3)] == [
            auth_two.challenge() for _ in range(3)
        ]

        # A different platform seed shifts the stream.
        other = build_platform(num_marketplaces=1, num_sellers=1,
                               items_per_seller=5, seed=14)
        assert other.marketplaces[0].context.auth.challenge() != auth_one.challenge()


def test_unseeded_service_still_works_with_os_entropy():
    auth = AuthenticationService("standalone")
    credential = auth.issue("mba-1", owner="alice", now=0.0)
    assert auth.verify(credential, 1.0) is True
    assert len(auth.challenge()) == 32
