"""Unit tests for the similarity algorithm (Figure 4.5)."""

import pytest

from repro.errors import SimilarityError
from repro.core.profile import Profile
from repro.core.similarity import (
    SimilarityConfig,
    cosine_similarity,
    find_similar_users,
    pearson_correlation,
    profile_similarity,
)


def build_profile(user_id, preferences, terms=None):
    """Profile with given category preference values and optional terms."""
    profile = Profile(user_id)
    for category, value in preferences.items():
        profile.category(category).preference = value
    for category, term_weights in (terms or {}).items():
        for term, weight in term_weights.items():
            profile.category(category).terms.set(term, weight)
    return profile


class TestVectorSimilarities:
    def test_cosine_identical_vectors(self):
        assert cosine_similarity({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0}) == pytest.approx(1.0)

    def test_cosine_orthogonal_vectors(self):
        assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_cosine_empty_vectors(self):
        assert cosine_similarity({}, {"a": 1.0}) == 0.0
        assert cosine_similarity({}, {}) == 0.0

    def test_cosine_is_symmetric(self):
        left = {"a": 1.0, "b": 0.5}
        right = {"a": 0.2, "c": 0.9}
        assert cosine_similarity(left, right) == pytest.approx(cosine_similarity(right, left))

    def test_cosine_swap_is_exactly_symmetric(self):
        # The implementation iterates the smaller dict for the dot product
        # (an internal left/right swap).  That swap is an efficiency detail
        # and must never change the value: both call orders exercise both
        # branches and must return the identical float.
        small = {"a": 0.3, "b": 0.7}
        large = {"a": 1.1, "b": 0.2, "c": 0.5, "d": 0.9}
        assert cosine_similarity(small, large) == cosine_similarity(large, small)
        same_size_left = {"a": 0.25, "c": 4.0}
        same_size_right = {"a": 3.5, "b": 0.125}
        assert cosine_similarity(same_size_left, same_size_right) == cosine_similarity(
            same_size_right, same_size_left
        )

    def test_cosine_zero_weight_vector(self):
        # All-zero weights give a zero norm, not a division error.
        assert cosine_similarity({"a": 0.0}, {"a": 1.0}) == 0.0

    def test_pearson_perfect_positive(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"a": 2.0, "b": 4.0, "c": 6.0}
        assert pearson_correlation(left, right) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert pearson_correlation(left, right) == pytest.approx(-1.0)

    def test_pearson_insufficient_overlap(self):
        assert pearson_correlation({"a": 1.0}, {"a": 1.0}) == 0.0
        assert pearson_correlation({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_pearson_zero_variance(self):
        assert pearson_correlation({"a": 1.0, "b": 1.0}, {"a": 2.0, "b": 5.0}) == 0.0

    def test_pearson_empty_vectors(self):
        assert pearson_correlation({}, {}) == 0.0
        assert pearson_correlation({}, {"a": 1.0}) == 0.0
        assert pearson_correlation({"a": 1.0}, {}) == 0.0

    def test_pearson_singleton_overlap_is_zero(self):
        # One shared key can never yield a meaningful correlation — the
        # implementation returns 0 rather than dividing by zero variance.
        left = {"a": 3.0, "x": 1.0, "y": 2.0}
        right = {"a": 3.0, "z": 5.0}
        assert pearson_correlation(left, right) == 0.0

    def test_pearson_zero_valued_vectors(self):
        # Overlapping keys whose values are all zero have zero variance.
        assert pearson_correlation({"a": 0.0, "b": 0.0}, {"a": 0.0, "b": 0.0}) == 0.0
        assert pearson_correlation({"a": 0.0, "b": 0.0}, {"a": 1.0, "b": 4.0}) == 0.0

    def test_pearson_tiny_variance_does_not_underflow(self):
        # var_left * var_right underflows to 0.0 for weights ~1e-107; the
        # implementation must not divide by that underflowed product.
        tiny = {"a": 0.0, "b": 7.38e-107}
        assert pearson_correlation(tiny, tiny) == pytest.approx(1.0)
        # Even when the product of the two standard deviations underflows,
        # the result is a clean 0.0 rather than a ZeroDivisionError.
        tinier = {"a": 0.0, "b": 1e-300}
        assert pearson_correlation(tinier, tinier) in (0.0, pytest.approx(1.0))

    def test_pearson_is_symmetric(self):
        left = {"a": 1.0, "b": 2.0, "c": 4.0}
        right = {"a": 3.0, "b": 1.5, "c": 2.5}
        assert pearson_correlation(left, right) == pytest.approx(
            pearson_correlation(right, left)
        )


class TestSimilarityConfig:
    def test_defaults_valid(self):
        SimilarityConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"preference_weight": -0.1},
            {"term_weight": -0.1},
            {"preference_weight": 0.0, "term_weight": 0.0},
            {"discard_tolerance": -1.0},
            {"min_similarity": 1.5},
            {"top_k": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(SimilarityError):
            SimilarityConfig(**kwargs).validate()


class TestProfileSimilarity:
    def test_identical_profiles_score_one(self):
        profile = build_profile("a", {"books": 3.0}, {"books": {"novel": 0.5}})
        other = build_profile("b", {"books": 3.0}, {"books": {"novel": 0.5}})
        assert profile_similarity(profile, other) == pytest.approx(1.0)

    def test_disjoint_profiles_score_zero(self):
        left = build_profile("a", {"books": 3.0}, {"books": {"novel": 0.5}})
        right = build_profile("b", {"fashion": 3.0}, {"fashion": {"boots": 0.5}})
        assert profile_similarity(left, right) == 0.0

    def test_empty_profiles_score_zero(self):
        assert profile_similarity(Profile("a"), Profile("b")) == 0.0

    def test_partial_overlap_between_zero_and_one(self):
        left = build_profile("a", {"books": 3.0, "fashion": 1.0})
        right = build_profile("b", {"books": 3.0, "groceries": 2.0})
        assert 0.0 < profile_similarity(left, right) < 1.0

    def test_weights_change_the_blend(self):
        left = build_profile("a", {"books": 3.0}, {"books": {"novel": 1.0}})
        right = build_profile("b", {"books": 3.0}, {"books": {"thriller": 1.0}})
        preference_only = profile_similarity(
            left, right, SimilarityConfig(preference_weight=1.0, term_weight=0.0)
        )
        term_only = profile_similarity(
            left, right, SimilarityConfig(preference_weight=0.0, term_weight=1.0)
        )
        assert preference_only == pytest.approx(1.0)
        assert term_only == 0.0


class TestFindSimilarUsers:
    def test_excludes_the_target_itself(self):
        target = build_profile("me", {"books": 3.0})
        others = [target, build_profile("friend", {"books": 3.0})]
        neighbours = find_similar_users(target, others)
        assert [user for user, _ in neighbours] == ["friend"]

    def test_ranks_by_similarity(self):
        target = build_profile("me", {"books": 3.0, "fashion": 1.0})
        close = build_profile("close", {"books": 3.0, "fashion": 1.0})
        far = build_profile("far", {"books": 0.5, "groceries": 3.0})
        neighbours = find_similar_users(target, [far, close])
        assert neighbours[0][0] == "close"
        assert neighbours[0][1] > neighbours[-1][1]

    def test_discard_rule_drops_divergent_category_preferences(self):
        # Same overall shape, but wildly different preference value for "books".
        target = build_profile("me", {"books": 1.0, "fashion": 1.0})
        divergent = build_profile("divergent", {"books": 9.0, "fashion": 1.0})
        kept = find_similar_users(
            target, [divergent], SimilarityConfig(discard_tolerance=10.0), category="books"
        )
        dropped = find_similar_users(
            target, [divergent], SimilarityConfig(discard_tolerance=3.0), category="books"
        )
        assert [user for user, _ in kept] == ["divergent"]
        assert dropped == []

    def test_discard_rule_only_applies_when_category_given(self):
        target = build_profile("me", {"books": 1.0})
        divergent = build_profile("divergent", {"books": 9.0})
        neighbours = find_similar_users(
            target, [divergent], SimilarityConfig(discard_tolerance=3.0)
        )
        assert [user for user, _ in neighbours] == ["divergent"]

    def test_min_similarity_filters_weak_matches(self):
        target = build_profile("me", {"books": 3.0})
        weak = build_profile("weak", {"books": 0.1, "fashion": 5.0, "groceries": 5.0})
        neighbours = find_similar_users(
            target, [weak], SimilarityConfig(min_similarity=0.9)
        )
        assert neighbours == []

    def test_top_k_limits_results(self):
        target = build_profile("me", {"books": 3.0})
        candidates = [build_profile(f"user-{i}", {"books": 3.0}) for i in range(10)]
        neighbours = find_similar_users(target, candidates, SimilarityConfig(top_k=4))
        assert len(neighbours) == 4

    def test_deterministic_tie_break_by_user_id(self):
        target = build_profile("me", {"books": 3.0})
        candidates = [build_profile(name, {"books": 3.0}) for name in ("zoe", "amy", "bob")]
        neighbours = find_similar_users(target, candidates)
        assert [user for user, _ in neighbours] == ["amy", "bob", "zoe"]

    def test_empty_candidate_list(self):
        assert find_similar_users(build_profile("me", {"books": 1.0}), []) == []
