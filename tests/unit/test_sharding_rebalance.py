"""Shard routing and rebalancing edge cases.

The equivalence property suite (tests/property/test_sharding.py) covers the
happy paths; these tests pin the corners: registering into an empty shard,
every consumer collapsing onto one shard, category-routed profiles with no
category preferences (must fall back to hash placement, not crash), and
explicit rebalances that grow or shrink the shard count.
"""

import zlib

import pytest

from repro.errors import ECommerceError, SimilarityError
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.core.ratings import InteractionKind
from repro.core.sharding import ShardRouter, ShardedNeighborIndex
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.ecommerce.platform_builder import build_platform


def _profile(user_id, category=None, preference=5.0, terms=()):
    profile = Profile(user_id)
    if category is not None:
        entry = profile.category(category)
        entry.preference = preference
        for term, weight in terms:
            entry.terms.set(term, weight)
    return profile


def _ids_hashing_to_same_shard(count, num_shards, shard=0):
    """User ids whose stable hash all lands on one shard (worst-case skew)."""
    found = []
    index = 0
    while len(found) < count:
        candidate = f"user-{index}"
        if zlib.crc32(candidate.encode("utf-8")) % num_shards == shard:
            found.append(candidate)
        index += 1
    return found


class TestShardRouter:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(SimilarityError):
            ShardRouter(0)
        with pytest.raises(SimilarityError):
            ShardRouter(4, strategy="round-robin")

    def test_category_profile_without_preferences_falls_back_to_hash(self):
        router = ShardRouter(4, strategy="category")
        empty = Profile("nobody")
        assert router.shard_for(empty) == router.shard_for_user("nobody")

    def test_category_routing_colocates_same_dominant_category(self):
        router = ShardRouter(4, strategy="category")
        first = _profile("a", "books")
        second = _profile("b", "books")
        assert router.shard_for(first) == router.shard_for(second)


class TestLazyInvalidation:
    """Counter-pinned: hook bursts cost one re-index per *touched* consumer.

    The PR-8 fix — ``ShardedNeighborIndex.on_profile_update`` used to place
    migrating/unplaced consumers eagerly (one full re-index per feedback
    event); now every hook is deferred into a dirty set / pending queue and
    flushed by the next sync, so batch refreshes never recompute untouched
    consumers.
    """

    @staticmethod
    def _population(count=12):
        categories = ["books", "toys", "fashion"]
        return [
            _profile(
                f"user-{index}",
                categories[index % len(categories)],
                preference=3.0 + index,
                terms=[("ab", 1.0 + index)],
            )
            for index in range(count)
        ]

    @staticmethod
    def _rebuilds(index):
        return sum(shard.rebuilds for shard in index.shards)

    def test_same_shard_update_burst_costs_one_rebuild(self):
        profiles = self._population()
        config = SimilarityConfig(min_similarity=0.0)
        index = ShardedNeighborIndex(
            profiles=profiles, config=config, num_shards=3, routing="hash"
        )
        index.find_similar(profiles[0])  # warm every per-consumer cache
        rebuilds_before = self._rebuilds(index)
        mutations_before = index.mutations

        victim = profiles[3]
        for step in range(5):
            victim.category("books").terms.set("ab", 2.0 + step)
            index.on_profile_update(victim)
        # Nothing recomputed yet — the burst only marked state dirty.
        assert self._rebuilds(index) == rebuilds_before
        assert index.mutations == mutations_before

        index.find_similar(profiles[0])
        # The flush re-indexed exactly the touched consumer, nobody else.
        assert self._rebuilds(index) == rebuilds_before + 1
        assert index.mutations == mutations_before + 1

    def test_migrating_update_burst_is_deferred_until_sync(self):
        profiles = self._population()
        config = SimilarityConfig(min_similarity=0.0)
        index = ShardedNeighborIndex(
            profiles=profiles, config=config, num_shards=3, routing="category"
        )
        index.find_similar(profiles[0])
        rebuilds_before = self._rebuilds(index)

        # Shift one consumer's dominant category so the router wants them on
        # a different shard; every event in the burst re-reports the move.
        mover = profiles[0]
        source = index.shard_of(mover.user_id)
        # Pick a dominant category deterministically guaranteed to route the
        # mover onto a different shard (category hashing is stable).
        for candidate in (f"moved-{suffix}" for suffix in range(100)):
            entry = mover.category(candidate)
            entry.preference = 99.0
            entry.terms.set("zz", 5.0)
            if index.router.shard_for(mover) != source:
                break
            mover.categories.pop(candidate, None)
        assert index.router.shard_for(mover) != source
        for _ in range(4):
            index.on_profile_update(mover)
        # Deferred: still on the old shard, nothing re-indexed.
        assert index.shard_of(mover.user_id) == source
        assert self._rebuilds(index) == rebuilds_before

        answers = index.find_similar(mover)
        # One placement happened at sync, and the answer is still exact.
        assert index.shard_of(mover.user_id) == index.router.shard_for(mover)
        assert self._rebuilds(index) == rebuilds_before + 1
        assert answers == find_similar_users(mover, profiles, config)

    def test_batch_refresh_skips_untouched_consumers(self):
        """Service-level: a second batch refresh after one consumer's write
        re-indexes only that consumer."""
        platform = build_platform(seed=7)
        server = platform.buyer_server
        keyword = next(iter(platform.catalog_view())).terms[0][0]
        users = [f"lazy-{index}" for index in range(6)]
        for user_id in users:
            session = platform.login(user_id)
            with pytest.warns(DeprecationWarning):
                results = session.query(keyword)
            session.logout()
        service = server.recommendations
        service.batch_refresh(users, k=5)
        index = service.neighbor_index
        rebuilds_before = index.rebuilds

        # A burst of learning updates, all for one consumer.
        item = next(iter(platform.catalog_view()))
        profile = server.user_db.profile(users[0])
        for step in range(3):
            server.profile_learner.apply(
                profile,
                FeedbackEvent(
                    user_id=users[0],
                    item=item,
                    kind=InteractionKind.VIEW,
                    timestamp=float(step),
                    rating=None,
                ),
            )
        assert index.dirty_users() == {users[0]}

        service.batch_refresh(users, k=5)
        # Only the updated consumer's cache was rebuilt — once for the whole
        # burst; the five untouched consumers were never recomputed.
        assert index.rebuilds == rebuilds_before + 1


class TestShardedIndexEdgeCases:
    def test_registering_into_an_empty_shard(self):
        """A consumer routed to a shard nobody lives in yet indexes fine and
        shows up in queries immediately."""
        config = SimilarityConfig(min_similarity=0.0)
        alice = _profile("alice", "books", terms=[("ab", 1.0)])
        index = ShardedNeighborIndex(config=config, num_shards=4, routing="category")
        index.add(alice)
        assert sum(1 for size in index.shard_sizes() if size == 0) >= 2

        # "fashion" hashes to a different (currently empty) shard than
        # "books"; if not, the router would co-locate and this test would
        # silently weaken, so assert the premise.
        nina = _profile("nina", "fashion", terms=[("ab", 1.0)])
        target_shard = index.router.shard_for(nina)
        assert index.shard_sizes()[target_shard] == 0
        index.add(nina)
        assert index.shard_sizes()[target_shard] == 1

        target = _profile("query", "books", terms=[("ab", 2.0)])
        assert index.find_similar(target) == find_similar_users(
            target, [alice, nina], config
        )

    def test_all_consumers_hashing_to_one_shard(self):
        """Worst-case placement skew must not change results — only balance."""
        num_shards = 4
        user_ids = _ids_hashing_to_same_shard(6, num_shards, shard=2)
        profiles = [
            _profile(uid, "books", preference=float(i + 1), terms=[("ab", 1.0 + i)])
            for i, uid in enumerate(user_ids)
        ]
        config = SimilarityConfig(min_similarity=0.0, discard_tolerance=10.0)
        index = ShardedNeighborIndex(
            profiles=profiles, config=config, num_shards=num_shards, routing="hash"
        )
        sizes = index.shard_sizes()
        assert sizes[2] == len(profiles)
        assert sum(sizes) == len(profiles)
        for target in profiles:
            assert index.find_similar(target, category="books") == find_similar_users(
                target, profiles, config, category="books"
            )

    def test_category_routed_profile_with_no_preferences_is_queryable(self):
        config = SimilarityConfig(min_similarity=0.0)
        cold = Profile("cold-start")
        warm = _profile("warm", "books", terms=[("ab", 1.0)])
        index = ShardedNeighborIndex(
            profiles=[cold, warm], config=config, num_shards=8, routing="category"
        )
        assert index.shard_of("cold-start") == index.router.shard_for_user("cold-start")
        # Querying *for* the cold profile and *about* it both work.
        assert index.find_similar(cold) == find_similar_users(cold, [cold, warm], config)
        assert index.find_similar(warm) == find_similar_users(warm, [cold, warm], config)

    def test_removal_can_empty_a_shard(self):
        index = ShardedNeighborIndex(num_shards=2, routing="hash")
        index.add(_profile("alice", "books"))
        owner = index.shard_of("alice")
        index.remove("alice")
        assert index.shard_sizes()[owner] == 0
        assert "alice" not in index
        index.remove("alice")  # idempotent

    def test_rebalance_grow_and_shrink(self):
        profiles = [
            _profile(f"user-{i}", "books", preference=float(i), terms=[("ab", 1.0)])
            for i in range(10)
        ]
        config = SimilarityConfig(min_similarity=0.0)
        index = ShardedNeighborIndex(profiles=profiles, config=config, num_shards=2)
        expected = find_similar_users(profiles[0], profiles, config)

        index.rebalance(num_shards=16)  # more shards than consumers
        assert index.num_shards == 16
        assert sum(index.shard_sizes()) == len(profiles)
        assert index.find_similar(profiles[0]) == expected

        index.rebalance(num_shards=1)
        assert index.shard_sizes() == [len(profiles)]
        assert index.find_similar(profiles[0]) == expected

    def test_rebalance_can_switch_routing_strategy(self):
        profiles = [_profile(f"user-{i}", "books") for i in range(5)]
        index = ShardedNeighborIndex(profiles=profiles, num_shards=4, routing="hash")
        index.rebalance(routing="category")
        # All profiles share a dominant category, so they all co-locate now.
        assert sorted(index.shard_sizes(), reverse=True)[0] == len(profiles)


class TestFleetRebalanceEdgeCases:
    def test_register_into_an_empty_fleet_shard(self):
        platform = build_platform(seed=11, num_buyer_servers=3)
        fleet = platform.fleet
        # Find a consumer routed to each server; the first registration into
        # a server with zero consumers is the empty-shard case.
        seen = set()
        index = 0
        while len(seen) < 3:
            user_id = f"consumer-{index}"
            shard = fleet.router.shard_for_user(user_id)
            if shard not in seen:
                assert len(fleet.servers[shard].user_db) == 0
                fleet.register_consumer(user_id)
                assert fleet.servers[shard].user_db.is_registered(user_id)
                seen.add(shard)
            index += 1
        assert all(size > 0 for size in fleet.shard_sizes())

    def test_draining_a_live_server_is_refused(self):
        platform = build_platform(seed=11, num_buyer_servers=2)
        platform.login("ann").logout()
        with pytest.raises(ECommerceError):
            platform.fleet.handle_server_failure(0)

    def test_migration_moves_profile_and_ratings(self):
        platform = build_platform(seed=11, num_buyer_servers=2)
        fleet = platform.fleet
        session = platform.login("ann")
        session.query("book")
        session.logout()
        source = fleet.shard_of("ann")
        target = 1 - source
        source_db = fleet.servers[source].user_db
        target_db = fleet.servers[target].user_db
        profile_before = source_db.profile("ann").to_dict()
        interactions_before = len(source_db.ratings.interactions_of("ann"))

        fleet.migrate_consumer("ann", target)

        assert not source_db.is_registered("ann")
        assert target_db.is_registered("ann")
        assert target_db.profile("ann").to_dict() == profile_before
        assert len(target_db.ratings.interactions_of("ann")) == interactions_before
        assert fleet.shard_of("ann") == target
        # The source server forgets the consumer completely: registration,
        # ratings (no ghost collaborative neighbour) and provider-backed index.
        assert source_db.ratings.interactions_of("ann") == []
        assert "ann" not in source_db.ratings.users
        source_index = fleet.servers[source].recommendations.neighbor_index
        source_index.sync()
        assert "ann" not in source_index

    def test_migration_round_trip_does_not_double_count(self):
        """Migrating a consumer away and back must not duplicate their
        ratings, transactions or profile signal on either server."""
        platform = build_platform(seed=11, num_buyer_servers=2)
        fleet = platform.fleet
        session = platform.login("ann")
        results = session.query(
            next(iter(platform.catalog_view())).terms[0][0]
        )
        if results:
            session.buy(results[0].item, marketplace=results[0].marketplace)
        session.logout()

        home = fleet.shard_of("ann")
        home_db = fleet.servers[home].user_db
        away = 1 - home
        interactions = len(home_db.ratings.interactions_of("ann"))
        transactions = len(home_db.transactions_of("ann"))
        profile = home_db.profile("ann").to_dict()

        fleet.migrate_consumer("ann", away)
        fleet.migrate_consumer("ann", home)

        assert len(home_db.ratings.interactions_of("ann")) == interactions
        assert len(home_db.transactions_of("ann")) == transactions
        assert home_db.profile("ann").to_dict() == profile
        away_db = fleet.servers[away].user_db
        assert not away_db.is_registered("ann")
        assert away_db.ratings.interactions_of("ann") == []
