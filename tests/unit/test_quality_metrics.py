"""Unit tests for the recommendation-quality metrics."""

import pytest

from repro.core.metrics import (
    average_precision,
    catalog_coverage,
    f1_at_k,
    hit_rate_at_k,
    kendall_tau,
    mean_absolute_error,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    root_mean_squared_error,
    spearman_rank_correlation,
)

RECOMMENDED = ["a", "b", "c", "d", "e"]
RELEVANT = ["a", "c", "x"]


class TestPrecisionRecall:
    def test_precision_counts_hits_in_top_k(self):
        assert precision_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(2 / 5)
        assert precision_at_k(RECOMMENDED, RELEVANT, 1) == pytest.approx(1.0)

    def test_recall_counts_found_relevant(self):
        assert recall_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(2 / 3)
        assert recall_at_k(RECOMMENDED, RELEVANT, 1) == pytest.approx(1 / 3)

    def test_empty_inputs(self):
        assert precision_at_k([], RELEVANT, 5) == 0.0
        assert recall_at_k(RECOMMENDED, [], 5) == 0.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(RECOMMENDED, RELEVANT, 0)

    def test_f1_is_harmonic_mean(self):
        precision = precision_at_k(RECOMMENDED, RELEVANT, 5)
        recall = recall_at_k(RECOMMENDED, RELEVANT, 5)
        expected = 2 * precision * recall / (precision + recall)
        assert f1_at_k(RECOMMENDED, RELEVANT, 5) == pytest.approx(expected)

    def test_f1_zero_when_no_hits(self):
        assert f1_at_k(["z"], RELEVANT, 1) == 0.0

    def test_hit_rate(self):
        assert hit_rate_at_k(RECOMMENDED, RELEVANT, 1) == 1.0
        assert hit_rate_at_k(["z", "y"], RELEVANT, 2) == 0.0


class TestRankingMetrics:
    def test_average_precision_perfect_ranking(self):
        assert average_precision(["a", "c"], ["a", "c"]) == pytest.approx(1.0)

    def test_average_precision_penalises_late_hits(self):
        early = average_precision(["a", "z", "c"], ["a", "c"])
        late = average_precision(["z", "a", "c"], ["a", "c"])
        assert early > late

    def test_average_precision_no_hits(self):
        assert average_precision(["z"], ["a"]) == 0.0

    def test_ndcg_perfect_is_one(self):
        assert ndcg_at_k(["a", "c"], ["a", "c"], 2) == pytest.approx(1.0)

    def test_ndcg_prefers_early_hits(self):
        early = ndcg_at_k(["a", "z", "y"], ["a"], 3)
        late = ndcg_at_k(["z", "y", "a"], ["a"], 3)
        assert early > late

    def test_ndcg_no_relevant(self):
        assert ndcg_at_k(RECOMMENDED, [], 5) == 0.0


class TestErrorMetrics:
    def test_mae_and_rmse(self):
        predictions = {"a": 3.0, "b": 5.0}
        truths = {"a": 4.0, "b": 3.0}
        assert mean_absolute_error(predictions, truths) == pytest.approx(1.5)
        assert root_mean_squared_error(predictions, truths) == pytest.approx((2.5) ** 0.5)

    def test_no_overlap_returns_zero(self):
        assert mean_absolute_error({"a": 1.0}, {"b": 1.0}) == 0.0
        assert root_mean_squared_error({}, {}) == 0.0

    def test_perfect_predictions(self):
        values = {"a": 1.0, "b": 2.0}
        assert mean_absolute_error(values, dict(values)) == 0.0


class TestCoverage:
    def test_counts_distinct_recommended_items(self):
        lists = [["a", "b"], ["b", "c"]]
        assert catalog_coverage(lists, 10) == pytest.approx(0.3)

    def test_caps_at_one(self):
        assert catalog_coverage([["a", "b", "c"]], 2) == 1.0

    def test_invalid_catalog_size(self):
        with pytest.raises(ValueError):
            catalog_coverage([], 0)


class TestRankCorrelation:
    def test_spearman_perfect_agreement(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"a": 10.0, "b": 20.0, "c": 30.0}
        assert spearman_rank_correlation(left, right) == pytest.approx(1.0)

    def test_spearman_perfect_disagreement(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        right = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert spearman_rank_correlation(left, right) == pytest.approx(-1.0)

    def test_spearman_handles_ties(self):
        left = {"a": 1.0, "b": 1.0, "c": 2.0}
        right = {"a": 1.0, "b": 2.0, "c": 3.0}
        value = spearman_rank_correlation(left, right)
        assert -1.0 <= value <= 1.0

    def test_spearman_insufficient_overlap(self):
        assert spearman_rank_correlation({"a": 1.0}, {"a": 1.0}) == 0.0

    def test_kendall_tau_agreement_and_disagreement(self):
        left = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert kendall_tau(left, {"a": 1.0, "b": 2.0, "c": 3.0}) == pytest.approx(1.0)
        assert kendall_tau(left, {"a": 3.0, "b": 2.0, "c": 1.0}) == pytest.approx(-1.0)

    def test_kendall_tau_insufficient_overlap(self):
        assert kendall_tau({"a": 1.0}, {"b": 2.0}) == 0.0
