"""Unit tests for the versioned shard map (`repro.core.shard_map`)."""

import pytest

from repro.core.shard_map import (
    SHARD_MIGRATING,
    SHARD_STEADY,
    ShardMap,
    split_membership,
)
from repro.errors import ShardMapError


def fresh_map():
    return ShardMap(["server-a", "server-b", "server-c"])


class TestConstruction:
    def test_from_list_assigns_dense_ids(self):
        shard_map = fresh_map()
        assert shard_map.num_shards == 3
        assert shard_map.shard_ids() == [0, 1, 2]
        assert shard_map.owner_of(0) == "server-a"
        assert shard_map.owner_of(2) == "server-c"
        assert shard_map.epoch == 1

    def test_from_mapping(self):
        shard_map = ShardMap({0: "x", 1: "y"})
        assert shard_map.owner_of(1) == "y"

    def test_rejects_empty(self):
        with pytest.raises(ShardMapError):
            ShardMap([])

    def test_rejects_sparse_ids(self):
        with pytest.raises(ShardMapError):
            ShardMap({0: "x", 2: "y"})

    def test_all_shards_start_steady(self):
        shard_map = fresh_map()
        assert all(shard_map.state_of(s) == SHARD_STEADY for s in shard_map.shard_ids())
        assert shard_map.migrating() == {}


class TestReads:
    def test_shards_of_and_owners(self):
        shard_map = ShardMap(["a", "b", "a"])
        assert shard_map.shards_of("a") == [0, 2]
        assert shard_map.shards_of("b") == [1]
        assert shard_map.shards_of("ghost") == []
        assert shard_map.owners() == ["a", "b"]

    def test_owner_of_unknown_shard_raises(self):
        with pytest.raises(ShardMapError):
            fresh_map().owner_of(99)

    def test_as_dict_snapshot(self):
        shard_map = fresh_map()
        snap = shard_map.as_dict()
        assert snap["epoch"] == 1
        assert snap["assignments"] == {0: "server-a", 1: "server-b", 2: "server-c"}
        assert snap["migrations"] == {}
        assert snap["splits"] == {}


class TestReassign:
    def test_bulk_reassign_bumps_epoch_once(self):
        shard_map = fresh_map()
        events = []
        shard_map.subscribe(lambda m, reason, shards: events.append((m.epoch, reason, shards)))
        shard_map.reassign([0, 2], "server-b", reason="promote")
        assert shard_map.owner_of(0) == "server-b"
        assert shard_map.owner_of(2) == "server-b"
        assert shard_map.epoch == 2
        assert events == [(2, "promote", (0, 2))]

    def test_reassign_nothing_is_a_noop(self):
        shard_map = fresh_map()
        shard_map.reassign([], "server-b")
        assert shard_map.epoch == 1

    def test_reassign_retargets_inflight_migration(self):
        # A crash mid-split promotes the child's owner away; the split
        # continues against the promoted server.
        shard_map = fresh_map()
        child = shard_map.begin_split(0, owner="server-b", source="server-a")
        shard_map.reassign([child], "server-c", reason="promote")
        migration = shard_map.migration_of(child)
        assert migration is not None
        assert migration.target == "server-c"
        assert shard_map.owner_of(child) == "server-c"
        # Commit must not flip ownership back to the stale target.
        shard_map.commit_migration(child)
        assert shard_map.owner_of(child) == "server-c"


class TestMigration:
    def test_handback_flips_owner_on_commit(self):
        shard_map = fresh_map()
        shard_map.begin_migration(1, kind="handback", target="server-c")
        assert shard_map.owner_of(1) == "server-b"  # unchanged until commit
        assert shard_map.state_of(1) == SHARD_MIGRATING
        shard_map.commit_migration(1)
        assert shard_map.owner_of(1) == "server-c"
        assert shard_map.state_of(1) == SHARD_STEADY
        assert shard_map.migrating() == {}

    def test_abort_keeps_current_owner(self):
        shard_map = fresh_map()
        shard_map.begin_migration(1, kind="handback", target="server-c")
        shard_map.abort_migration(1)
        assert shard_map.owner_of(1) == "server-b"
        assert shard_map.state_of(1) == SHARD_STEADY

    def test_double_begin_raises(self):
        shard_map = fresh_map()
        shard_map.begin_migration(1, kind="handback", target="server-c")
        with pytest.raises(ShardMapError):
            shard_map.begin_migration(1, kind="handback", target="server-a")

    def test_commit_without_begin_raises(self):
        with pytest.raises(ShardMapError):
            fresh_map().commit_migration(0)

    def test_abort_without_begin_raises(self):
        with pytest.raises(ShardMapError):
            fresh_map().abort_migration(0)

    def test_every_transition_bumps_epoch(self):
        shard_map = fresh_map()
        shard_map.begin_migration(0, kind="handback", target="server-b")
        assert shard_map.epoch == 2
        shard_map.commit_migration(0)
        assert shard_map.epoch == 3


class TestSplit:
    def test_split_appends_dense_child_owned_immediately(self):
        shard_map = fresh_map()
        child = shard_map.begin_split(1, owner="server-a", source="server-b")
        assert child == 3
        assert shard_map.num_shards == 4
        assert shard_map.shard_ids() == [0, 1, 2, 3]
        assert shard_map.owner_of(child) == "server-a"  # owned from the start
        assert shard_map.state_of(child) == SHARD_MIGRATING
        assert shard_map.splits_of(1) == (child,)
        assert shard_map.parent_of(child) == 1
        assert shard_map.parent_of(1) is None

    def test_split_commit_does_not_flip_owner(self):
        shard_map = fresh_map()
        child = shard_map.begin_split(1, owner="server-a", source="server-b")
        shard_map.commit_migration(child)
        assert shard_map.owner_of(child) == "server-a"
        assert shard_map.state_of(child) == SHARD_STEADY

    def test_route_follows_split_lineage(self):
        shard_map = fresh_map()
        child = shard_map.begin_split(1, owner="server-a", source="server-b")
        movers = [uid for uid in (f"user-{i}" for i in range(200))
                  if split_membership(uid, 1, 0)]
        stayers = [uid for uid in (f"user-{i}" for i in range(200))
                   if not split_membership(uid, 1, 0)]
        assert movers and stayers  # the hash actually cuts both ways
        for uid in movers[:20]:
            assert shard_map.route(uid, 1) == child
        for uid in stayers[:20]:
            assert shard_map.route(uid, 1) == 1
        # Shards that never split route to themselves.
        assert shard_map.route("anyone", 0) == 0

    def test_route_descends_recursive_splits(self):
        shard_map = fresh_map()
        child = shard_map.begin_split(1, owner="server-a", source="server-b")
        shard_map.commit_migration(child)
        grandchild = shard_map.begin_split(child, owner="server-c", source="server-a")
        uid = next(u for u in (f"user-{i}" for i in range(500))
                   if split_membership(u, 1, 0) and split_membership(u, child, 0))
        assert shard_map.route(uid, 1) == grandchild

    def test_split_membership_is_deterministic(self):
        assert split_membership("alice", 0, 0) == split_membership("alice", 0, 0)
        # Different split identities give independent cuts: at least one
        # consumer in a small population disagrees across them.
        pop = [f"user-{i}" for i in range(64)]
        assert any(
            split_membership(u, 0, 0) != split_membership(u, 1, 0) for u in pop
        )


class TestListeners:
    def test_listener_sees_reason_and_shards(self):
        shard_map = fresh_map()
        seen = []
        shard_map.subscribe(lambda m, reason, shards: seen.append((reason, shards)))
        child = shard_map.begin_split(0, owner="server-b", source="server-a")
        shard_map.commit_migration(child)
        shard_map.begin_migration(1, kind="handback", target="server-a")
        shard_map.abort_migration(1)
        assert seen == [
            ("split-begin", (0, child)),
            ("migration-commit", (child,)),
            ("migration-begin", (1,)),
            ("migration-abort", (1,)),
        ]
