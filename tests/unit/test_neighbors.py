"""Unit tests for the profile neighbor index (repro.core.neighbors).

The property suite (``tests/property/test_neighbor_index.py``) proves the
indexed search equals brute force; the tests here pin down the *mechanics*:
exact incremental invalidation through ProfileLearner hooks, the stale-cache
regression the hooks exist to prevent, discard-rule candidate pruning, and
cache reuse across queries.
"""

import pytest

from repro.core.neighbors import ProfileNeighborIndex, find_similar_users_indexed
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import InteractionKind
from repro.core.similarity import SimilarityConfig, find_similar_users

from tests.conftest import make_item


def build_profile(user_id, preferences, terms=None):
    profile = Profile(user_id)
    for category, value in preferences.items():
        profile.category(category).preference = value
    for category, term_weights in (terms or {}).items():
        for term, weight in term_weights.items():
            profile.category(category).terms.set(term, weight)
    return profile


def community():
    """Three consumers with overlapping tastes, keyed by user id."""
    return {
        "alice": build_profile("alice", {"books": 5.0}, {"books": {"novel": 1.0}}),
        "bob": build_profile("bob", {"books": 4.5}, {"books": {"novel": 0.8}}),
        "carol": build_profile(
            "carol", {"electronics": 6.0}, {"electronics": {"laptop": 1.0}}
        ),
    }


class TestIncrementalInvalidation:
    def test_learner_hook_invalidates_exactly_the_affected_consumer(self):
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        learner = ProfileLearner()
        index.attach_to(learner)
        entries_before = {name: index.cached_entry(name) for name in profiles}

        event = FeedbackEvent(
            "bob", make_item("item-x", category="books"), InteractionKind.BUY
        )
        learner.apply(profiles["bob"], event)

        assert index.dirty_users() == {"bob"}
        index.sync()
        assert index.dirty_users() == set()
        # Only bob's caches were rebuilt; alice and carol kept the same entry
        # objects, norms and vectors.
        assert index.cached_entry("alice") is entries_before["alice"]
        assert index.cached_entry("carol") is entries_before["carol"]
        assert index.cached_entry("bob") is not entries_before["bob"]
        assert index.cached_entry("bob").prefs["books"] > entries_before["bob"].prefs["books"]

    def test_stale_cache_regression_update_visible_in_next_query(self):
        """A feedback event must be reflected by the very next query."""
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        learner = ProfileLearner()
        index.attach_to(learner)
        config = SimilarityConfig()

        target = profiles["alice"]
        before = index.find_similar(target)

        # Carol suddenly develops alice's taste in books.
        for _ in range(5):
            learner.apply(
                profiles["carol"],
                FeedbackEvent(
                    "carol",
                    make_item("item-y", category="books", terms={"novel": 1.0}),
                    InteractionKind.BUY,
                ),
            )

        after = index.find_similar(target)
        brute = find_similar_users(target, profiles.values(), config)
        assert after == brute
        assert after != before
        assert "carol" in [user_id for user_id, _ in after]

    def test_version_stamp_catches_updates_without_hooks(self):
        """Provider-backed indexes self-heal even if no hook was registered."""
        profiles = community()
        index = ProfileNeighborIndex(provider=lambda: profiles.values())
        target = profiles["alice"]
        index.find_similar(target)  # warm caches

        learner = ProfileLearner()  # deliberately NOT attached
        learner.apply(
            profiles["carol"],
            FeedbackEvent(
                "carol",
                make_item("item-z", category="books", terms={"novel": 1.0}),
                InteractionKind.BUY,
            ),
        )
        assert index.dirty_users() == set()

        brute = find_similar_users(target, profiles.values(), SimilarityConfig())
        assert index.find_similar(target) == brute

    def test_explicit_invalidate_rebuilds_after_direct_mutation(self):
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        profiles["bob"].category("books").preference = 9.0
        index.invalidate("bob")
        assert index.dirty_users() == {"bob"}
        index.sync()
        assert index.cached_entry("bob").prefs["books"] == 9.0

    def test_invalidate_unknown_user_is_ignored(self):
        index = ProfileNeighborIndex(profiles=community().values())
        index.invalidate("nobody")
        assert index.dirty_users() == set()

    def test_remove_and_re_add(self):
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        target = profiles["alice"]
        assert "bob" in [user_id for user_id, _ in index.find_similar(target)]

        index.remove("bob")
        assert "bob" not in index
        assert "bob" not in [user_id for user_id, _ in index.find_similar(target)]

        index.add(profiles["bob"])
        assert "bob" in [user_id for user_id, _ in index.find_similar(target)]

    def test_queries_without_changes_rebuild_nothing(self):
        profiles = community()
        index = ProfileNeighborIndex(provider=lambda: profiles.values())
        index.find_similar(profiles["alice"])
        rebuilds = index.rebuilds
        index.find_similar(profiles["alice"])
        index.find_similar(profiles["bob"])
        assert index.rebuilds == rebuilds

    def test_provider_version_fast_path_skips_reconcile_but_stays_correct(self):
        profiles = community()
        version = {"n": 0}
        index = ProfileNeighborIndex(
            provider=lambda: profiles.values(),
            provider_version=lambda: version["n"],
        )
        learner = ProfileLearner()
        index.attach_to(learner)
        index.find_similar(profiles["alice"])  # full reconcile, stamp recorded

        # Unchanged stamp + no dirty consumers: sync is a no-op.
        assert index.sync() == 0

        # A hooked learner update rebuilds only that consumer.
        learner.apply(
            profiles["carol"],
            FeedbackEvent(
                "carol",
                make_item("item-n", category="books", terms={"novel": 1.0}),
                InteractionKind.BUY,
            ),
        )
        assert index.sync() == 1

        # A membership change (new registration) bumps the stamp and is
        # picked up by the next query even though no hook fired for it.
        profiles["erin"] = build_profile(
            "erin", {"books": 5.0}, {"books": {"novel": 1.0}}
        )
        version["n"] += 1
        neighbours = index.find_similar(profiles["alice"])
        assert "erin" in [user_id for user_id, _ in neighbours]
        brute = find_similar_users(
            profiles["alice"], profiles.values(), SimilarityConfig()
        )
        assert neighbours == brute


class TestCandidatePruning:
    def test_discard_rule_prunes_before_scoring(self):
        target = build_profile("me", {"books": 5.0}, {"books": {"novel": 1.0}})
        near = build_profile("near", {"books": 4.0}, {"books": {"novel": 1.0}})
        far = build_profile("far", {"books": 9.5}, {"books": {"novel": 1.0}})
        index = ProfileNeighborIndex(profiles=[target, near, far])

        config = SimilarityConfig(discard_tolerance=2.0)
        neighbours = index.find_similar(target, category="books", config=config)
        assert [user_id for user_id, _ in neighbours] == ["near"]

    def test_consumers_without_the_category_pass_when_target_is_near_zero(self):
        # Target preference 1.0, tolerance 3.0: consumers with no "books"
        # category at all (implicit value 0.0) must still be candidates.
        target = build_profile("me", {"books": 1.0}, {"books": {"novel": 1.0}})
        other = build_profile("other", {}, {"electronics": {"novel": 1.0}})
        index = ProfileNeighborIndex(profiles=[target, other])

        config = SimilarityConfig(discard_tolerance=3.0, min_similarity=0.0)
        brute = find_similar_users(target, [target, other], config, category="books")
        indexed = index.find_similar(target, category="books", config=config)
        assert indexed == brute
        assert [user_id for user_id, _ in indexed] == ["other"]

    def test_consumers_without_the_category_drop_when_target_is_far(self):
        target = build_profile("me", {"books": 8.0}, {"books": {"novel": 1.0}})
        other = build_profile("other", {}, {"electronics": {"novel": 1.0}})
        index = ProfileNeighborIndex(profiles=[target, other])

        config = SimilarityConfig(discard_tolerance=3.0, min_similarity=0.0)
        assert index.find_similar(target, category="books", config=config) == []

    def test_target_never_included_in_its_own_neighbours(self):
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        for name, profile in profiles.items():
            assert name not in [
                user_id for user_id, _ in index.find_similar(profile)
            ]

    def test_empty_index_returns_nothing(self):
        index = ProfileNeighborIndex()
        target = build_profile("me", {"books": 1.0})
        assert index.find_similar(target) == []


class TestHelperFunction:
    def test_transient_helper_matches_brute_force(self):
        profiles = community()
        config = SimilarityConfig()
        target = profiles["alice"]
        assert find_similar_users_indexed(
            target, profiles.values(), config
        ) == find_similar_users(target, profiles.values(), config)

    def test_helper_reuses_supplied_index(self):
        profiles = community()
        index = ProfileNeighborIndex(profiles=profiles.values())
        queries_before = index.queries
        find_similar_users_indexed(
            profiles["alice"], profiles.values(), index=index
        )
        assert index.queries == queries_before + 1
