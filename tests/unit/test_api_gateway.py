"""Unit coverage for the gateway API: envelopes, taxonomy, middleware chain.

The integration-level behaviour (crash-during-traffic failover, quorum
degradation, byte-stability) lives in
``tests/integration/test_gateway_api.py``; these tests pin the smaller
contracts: every operation returns the uniform envelope, the error taxonomy
maps :mod:`repro.errors` deterministically, the middleware chain composes in
the documented order, and the admission / deadline / retry middlewares do
what their knobs say on a small platform.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    FleetUnavailableError,
    HostUnreachableError,
    MessageTimeoutError,
    SessionError,
    TransactionError,
    TransferDroppedError,
    UnknownUserError,
)
from repro.api.envelope import (
    API_VERSION,
    ApiResponse,
    ApiStatus,
    classify_error,
)
from repro.api.middleware import ApiCall, Middleware, TokenBucket, build_chain
from repro.api.requests import (
    AdminStatsRequest,
    QueryRequest,
    RecommendationsRequest,
)
from repro.ecommerce.platform_builder import build_platform


def _keyword(platform) -> str:
    """A keyword guaranteed to hit the synthetic catalogue."""
    return next(iter(platform.catalog_view())).terms[0][0]


@pytest.fixture
def gateway_platform():
    platform = build_platform(
        num_marketplaces=2, num_sellers=2, items_per_seller=20, seed=3
    )
    return platform


class TestEnvelopeBasics:
    def test_every_operation_returns_the_uniform_envelope(self, gateway_platform):
        platform = gateway_platform
        gateway = platform.gateway()
        keyword = _keyword(platform)

        login = gateway.login("alice")
        query = gateway.query("alice", keyword)
        hit = query.result.hits[0]
        responses = {
            "register": gateway.register("bob"),
            "login": login,
            "query": query,
            "buy": gateway.buy("alice", hit.item, marketplace=hit.marketplace),
            "join_auction": gateway.join_auction(
                "alice", hit.item, max_price=hit.price * 1.5,
                marketplace=hit.marketplace,
            ),
            "negotiate": gateway.negotiate(
                "alice", hit.item, max_price=hit.price,
                marketplace=hit.marketplace,
            ),
            "rate": gateway.rate("alice", hit.item, 4.5),
            "recommendations": gateway.recommendations("alice", k=5),
            "weekly_hottest": gateway.weekly_hottest("alice", k=5),
            "cross_sell": gateway.cross_sell("alice", k=3),
            "find_similar": gateway.find_similar("alice"),
            "admin_stats": gateway.admin_stats(),
            "logout": gateway.logout("alice"),
        }
        for operation, response in responses.items():
            assert isinstance(response, ApiResponse)
            assert response.operation == operation
            assert response.status in ApiStatus.ALL
            assert response.ok, (operation, response.error)
            assert response.error is None
            assert response.result is not None
            assert response.api_version == API_VERSION
            assert response.latency_ms >= 0.0

    def test_request_ids_are_monotonic_per_gateway(self, gateway_platform):
        gateway = gateway_platform.gateway()
        first = gateway.admin_stats()
        second = gateway.admin_stats()
        assert second.request_id == first.request_id + 1

    def test_gateway_is_cached_per_platform(self, gateway_platform):
        assert gateway_platform.gateway() is gateway_platform.gateway()

    def test_unsupported_version_is_refused_not_guessed(self, gateway_platform):
        gateway = gateway_platform.gateway()
        response = gateway.execute(AdminStatsRequest(api_version="v999"))
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "unsupported-version"
        assert response.result is None

    def test_unknown_request_type_fails_cleanly(self, gateway_platform):
        gateway = gateway_platform.gateway()
        response = gateway.execute(object())
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "unknown-operation"

    def test_operation_on_never_logged_in_user_fails_with_unknown_user(
        self, gateway_platform
    ):
        gateway = gateway_platform.gateway()
        response = gateway.query("ghost", "anything")
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "unknown-user"
        assert not response.error.retryable

    def test_operation_after_logout_is_a_client_error(self, gateway_platform):
        gateway = gateway_platform.gateway()
        gateway.login("alice")
        gateway.logout("alice")
        response = gateway.recommendations("alice")
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "session"

    def test_logged_out_session_fails_fast_even_when_the_owner_is_down(self):
        """A semantic client error must never burn retries or trigger a
        failover just because the (irrelevant) owner happens to be down."""
        platform = build_platform(seed=3)
        gateway = platform.gateway()
        gateway.login("alice")
        gateway.logout("alice")
        platform.failures.crash_host(platform.buyer_server.name)
        response = gateway.recommendations("alice")
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "session"
        assert response.provenance.retries == 0

    def test_trade_failure_is_a_domain_outcome_not_an_envelope_error(
        self, gateway_platform
    ):
        """A lost negotiation is a successful API call whose trade failed."""
        platform = gateway_platform
        gateway = platform.gateway()
        gateway.login("alice")
        hit = gateway.query("alice", _keyword(platform)).result.hits[0]
        response = gateway.negotiate(
            "alice", hit.item, max_price=0.01, marketplace=hit.marketplace
        )
        assert response.ok
        assert response.error is None
        assert response.result.succeeded is False

    def test_happy_path_charges_nothing_extra_to_the_clock(self, gateway_platform):
        """Envelope timing reflects the operation's own simulated cost only."""
        platform = gateway_platform
        gateway = platform.gateway()
        gateway.login("alice")
        before = platform.now
        response = gateway.recommendations("alice", k=3)
        assert platform.now - before == pytest.approx(response.latency_ms)


class TestErrorTaxonomy:
    @pytest.mark.parametrize(
        "exc,code,retryable",
        [
            (UnknownUserError("x"), "unknown-user", False),
            (SessionError("x"), "session", False),
            (TransactionError("x"), "transaction", False),
            (FleetUnavailableError("x"), "fleet-unavailable", True),
            (HostUnreachableError("x"), "host-unreachable", True),
            (TransferDroppedError("x"), "transfer-dropped", True),
            (MessageTimeoutError("x"), "timeout", True),
        ],
    )
    def test_known_exceptions_map_to_stable_codes(self, exc, code, retryable):
        error = classify_error(exc)
        assert error.code == code
        assert error.retryable is retryable
        assert error.kind == type(exc).__name__

    def test_unknown_exceptions_map_to_internal(self):
        error = classify_error(ValueError("surprise"))
        assert error.code == "internal"
        assert not error.retryable


class TestRefusalAccounting:
    """Pre-dispatch refusals must not escape the api.* metrics."""

    def test_unsupported_version_refusal_is_counted(self, gateway_platform):
        platform = gateway_platform
        gateway = platform.gateway()
        before = platform.metrics.counter("api.requests").value
        gateway.execute(AdminStatsRequest(api_version="v999"))
        gateway.execute(object())
        metrics = platform.metrics
        assert metrics.counter("api.requests").value == before + 2
        assert metrics.counter("api.requests.admin_stats").value == 1.0
        assert metrics.counter("api.requests.unknown").value == 1.0
        assert metrics.counter("api.status.failed").value == 2.0
        assert metrics.timer("api.latency_ms").summary()["count"] == 2.0


class TestLogoutLiveness:
    def test_logout_is_never_served_from_a_crashed_server(self):
        """Logout both reads and mutates (BRA disposal): dead memory is off
        limits for it exactly like every other session operation."""
        platform = build_platform(seed=3)
        gateway = platform.gateway()
        gateway.login("alice")
        platform.failures.crash_host(platform.buyer_server.name)
        response = gateway.logout("alice")
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error.code == "host-unreachable"


class TestTokenBucket:
    def test_burst_then_rejection_then_refill(self):
        bucket = TokenBucket(capacity=2.0, refill_per_ms=0.5, last_refill_ms=0.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        # 2 ms at 0.5 tokens/ms restores one token.
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire(2.0)

    def test_refill_never_exceeds_capacity(self):
        bucket = TokenBucket(capacity=1.0, refill_per_ms=10.0, last_refill_ms=0.0)
        assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)


class TestMiddlewareChain:
    def test_chain_composes_in_listed_order(self):
        order = []

        class Recorder(Middleware):
            def __init__(self, tag):
                self.tag = tag

            def handle(self, call, next_handler):
                order.append(f"+{self.tag}")
                response = next_handler(call)
                order.append(f"-{self.tag}")
                return response

        def terminal(call):
            order.append("dispatch")
            return ApiResponse()

        handler = build_chain([Recorder("a"), Recorder("b")], terminal)
        handler(ApiCall(gateway=None, request=None, operation="x", request_id=1))
        assert order == ["+a", "+b", "dispatch", "-b", "-a"]

    def test_installed_chain_order_matches_documentation(self, gateway_platform):
        names = [mw.name for mw in gateway_platform.gateway().middlewares]
        assert names == ["metrics", "admission", "deadline", "retry", "queueing"]


class TestMetricsMiddleware:
    def test_requests_statuses_and_latency_are_counted(self, gateway_platform):
        platform = gateway_platform
        gateway = platform.gateway()
        gateway.login("alice")
        gateway.query("alice", _keyword(platform))
        gateway.query("ghost", "nope")  # failed
        metrics = platform.metrics
        assert metrics.counter("api.requests").value == 3.0
        assert metrics.counter("api.requests.query").value == 2.0
        assert metrics.counter("api.status.ok").value == 2.0
        assert metrics.counter("api.status.failed").value == 1.0
        assert metrics.timer("api.latency_ms").summary()["count"] == 3.0
        assert metrics.timer("api.latency_ms.query").summary()["count"] == 2.0


class TestAdmissionControl:
    def test_over_capacity_requests_are_rejected_and_counted(self):
        platform = build_platform(
            seed=3,
            api_admission_capacity=2,
            api_admission_refill_per_ms=1e-9,
        )
        gateway = platform.gateway()
        first = gateway.login("alice")
        second = gateway.recommendations("alice", k=3)
        third = gateway.recommendations("alice", k=3)
        assert first.ok and second.ok
        assert third.status == ApiStatus.REJECTED
        assert third.error.code == "admission-rejected"
        assert third.result is None
        metrics = platform.metrics
        assert metrics.counter("api.admission.rejected").value == 1.0
        assert metrics.counter("api.status.rejected").value == 1.0
        # Shed requests cost the platform nothing downstream.
        assert third.latency_ms == 0.0

    def test_tokens_refill_with_simulated_time(self):
        platform = build_platform(
            seed=3, api_admission_capacity=1, api_admission_refill_per_ms=0.1
        )
        gateway = platform.gateway()
        assert gateway.login("alice").ok  # spends the only token
        assert gateway.recommendations("alice").status == ApiStatus.REJECTED
        platform.scheduler.clock.advance_by(10.0)  # 10 ms * 0.1 = 1 token
        assert gateway.recommendations("alice").ok

    def test_disabled_by_default(self, gateway_platform):
        assert gateway_platform.gateway().admission_bucket is None


class TestDeadlines:
    def test_query_over_budget_returns_deadline_exceeded(self, gateway_platform):
        platform = gateway_platform
        gateway = platform.gateway()
        gateway.login("alice")
        response = gateway.query("alice", _keyword(platform), deadline_ms=0.001)
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error.code == "deadline-exceeded"
        assert response.result is None
        assert response.latency_ms > 0.001
        assert platform.metrics.counter("api.deadline_exceeded").value == 1.0

    def test_generous_deadline_passes_through(self, gateway_platform):
        platform = gateway_platform
        gateway = platform.gateway()
        gateway.login("alice")
        response = gateway.query("alice", _keyword(platform), deadline_ms=1e9)
        assert response.ok

    def test_platform_default_deadline_applies(self):
        platform = build_platform(seed=3, api_deadline_ms=0.001)
        gateway = platform.gateway()
        response = gateway.login("alice")
        # Login itself is cheap but the query pays marketplace round trips.
        assert response.ok
        over = gateway.query("alice", _keyword(platform))
        assert over.status == ApiStatus.UNAVAILABLE
        assert over.error.code == "deadline-exceeded"


class TestRetries:
    def test_crashed_single_server_exhausts_retries_unavailable(self):
        platform = build_platform(seed=3)
        gateway = platform.gateway()
        gateway.login("alice")
        clock_before = platform.now
        platform.failures.crash_host(platform.buyer_server.name)
        response = gateway.recommendations("alice", k=3)
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error is not None and response.error.retryable
        assert response.provenance.retries == platform.config.api_max_retries
        assert platform.metrics.counter("api.retries").value == float(
            platform.config.api_max_retries
        )
        # Exponential backoff was charged to the simulated clock: 25 + 50 ms.
        assert platform.now - clock_before == pytest.approx(75.0)

    def test_semantic_errors_are_never_retried(self, gateway_platform):
        gateway = gateway_platform.gateway()
        response = gateway.query("ghost", "x")
        assert response.provenance.retries == 0
        assert gateway_platform.metrics.counter("api.retries").value == 0.0

    def test_retry_respects_the_deadline_budget(self):
        platform = build_platform(seed=3, api_retry_backoff_ms=50.0)
        gateway = platform.gateway()
        gateway.login("alice")
        platform.failures.crash_host(platform.buyer_server.name)
        # Budget too small for even one 50 ms backoff: a single attempt runs.
        response = gateway.recommendations("alice", k=3, deadline_ms=10.0)
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.provenance.retries == 0
