"""Scheduler-driven recommendation refresh (single server and fleet).

The periodic batch refresh used to be polled by scenario loops through
``maybe_refresh_recommendations``; it is now a real scheduled platform event
(:meth:`BuyerAgentServer.start_periodic_refresh`).  These tests pin down the
contract: the event fires at the configured simulated interval, re-arms
itself, survives a server failure/recovery cycle, and — in fleet mode —
never double-refreshes a consumer that migrated shards mid-interval.
"""

import pytest

from repro.errors import ECommerceError
from repro.ecommerce.platform_builder import build_platform


def _refresh_events(platform):
    return platform.event_log.by_category("recommendation.scheduled-refresh")


def _skip_events(platform):
    return platform.event_log.by_category("recommendation.refresh-skipped")


class TestSingleServerScheduledRefresh:
    def test_fires_at_interval_and_rearms(self):
        platform = build_platform(seed=1)
        for name in ("ann", "bob", "cleo"):
            platform.login(name).logout()
        start = platform.now

        task = platform.buyer_server.start_periodic_refresh(500.0, k=5)
        platform.scheduler.run_until(start + 2250.0)

        assert task.fires == 4
        assert platform.buyer_server.batch_refreshes == 4
        events = _refresh_events(platform)
        assert [event.timestamp for event in events] == pytest.approx(
            [start + 500.0, start + 1000.0, start + 1500.0, start + 2000.0]
        )
        # Every registered consumer was refreshed and is served from cache.
        assert events[-1].payload["user_ids"] == ["ann", "bob", "cleo"]
        for name in ("ann", "bob", "cleo"):
            assert platform.buyer_server.recommendations.cached_recommendations(
                name
            ) is not None

    def test_stop_cancels_and_double_start_rejected(self):
        platform = build_platform(seed=1)
        platform.login("ann").logout()
        start = platform.now
        platform.buyer_server.start_periodic_refresh(100.0)
        with pytest.raises(ECommerceError):
            platform.buyer_server.start_periodic_refresh(100.0)
        platform.scheduler.run_until(start + 250.0)
        platform.buyer_server.stop_periodic_refresh()
        platform.scheduler.run_until(start + 1000.0)
        assert platform.buyer_server.batch_refreshes == 2
        assert not platform.buyer_server.refresh_scheduled
        # A stopped refresh can be re-armed.
        platform.buyer_server.start_periodic_refresh(100.0)
        assert platform.buyer_server.refresh_scheduled

    def test_non_positive_interval_rejected(self):
        platform = build_platform(seed=1)
        with pytest.raises(ECommerceError):
            platform.buyer_server.start_periodic_refresh(0.0)
        with pytest.raises(ECommerceError):
            platform.buyer_server.start_periodic_refresh(-10.0)

    def test_survives_failure_and_recovery_cycle(self):
        """Ticks during the outage are skipped (and recorded), not fatal; the
        recurrence stays armed and refreshes resume after recovery."""
        platform = build_platform(seed=1)
        platform.login("ann").logout()
        server = platform.buyer_server
        start = platform.now

        server.start_periodic_refresh(500.0, k=5)
        platform.scheduler.run_until(start + 750.0)       # one refresh at +500
        assert server.batch_refreshes == 1

        platform.failures.crash_host(server.context.host.name)
        platform.scheduler.run_until(start + 1750.0)      # +1000, +1500 skipped
        assert server.batch_refreshes == 1
        assert server.refresh_skips == 2
        skipped = _skip_events(platform)
        assert len(skipped) == 2
        assert skipped[0].payload["reason"] == "host-down"

        platform.failures.recover_host(server.context.host.name)
        platform.scheduler.run_until(start + 2750.0)      # +2000, +2500 refresh
        assert server.batch_refreshes == 3
        assert server.refresh_skips == 2


class TestFleetScheduledRefresh:
    def _fleet_platform(self):
        platform = build_platform(seed=7, num_buyer_servers=3)
        for index in range(9):
            platform.login(f"user-{index}").logout()
        return platform

    def test_each_consumer_refreshed_exactly_once_per_tick(self):
        platform = self._fleet_platform()
        start = platform.now
        platform.fleet.start_periodic_refresh(400.0, k=5)
        platform.scheduler.run_until(start + 500.0)

        events = _refresh_events(platform)
        assert len(events) == 3  # one per live server for the single tick
        refreshed = [uid for event in events for uid in event.payload["user_ids"]]
        assert sorted(refreshed) == sorted(set(refreshed))
        assert sorted(refreshed) == [f"user-{index}" for index in range(9)]

    def test_migrated_consumer_not_double_refreshed(self):
        """A consumer that changes shards between two ticks is refreshed once
        per tick — by its old owner before, by its new owner after, never by
        both within one tick."""
        platform = self._fleet_platform()
        fleet = platform.fleet
        start = platform.now
        fleet.start_periodic_refresh(400.0, k=5)
        platform.scheduler.run_until(start + 500.0)  # tick 1

        mover = "user-0"
        source = fleet.shard_of(mover)
        target = (source + 1) % fleet.num_shards
        fleet.migrate_consumer(mover, target)

        platform.scheduler.run_until(start + 900.0)  # tick 2
        events = _refresh_events(platform)
        tick2 = [e for e in events if e.timestamp > start + 500.0]
        owners = [
            e.source for e in tick2 if mover in e.payload["user_ids"]
        ]
        assert owners == [fleet.servers[target].name]
        # Across the whole tick the mover appears exactly once.
        refreshed = [uid for e in tick2 for uid in e.payload["user_ids"]]
        assert refreshed.count(mover) == 1
        assert sorted(refreshed) == [f"user-{index}" for index in range(9)]

    def test_failed_server_drained_and_refresh_flows_around_it(self):
        platform = self._fleet_platform()
        fleet = platform.fleet
        start = platform.now
        fleet.start_periodic_refresh(400.0, k=5)

        victim = 1
        victim_consumers = fleet.consumers_of(victim)
        platform.failures.crash_host(fleet.servers[victim].context.host.name)
        moved = fleet.handle_server_failure(victim)
        assert moved == len(victim_consumers)
        assert fleet.shard_sizes()[victim] == 0

        platform.scheduler.run_until(start + 500.0)
        events = _refresh_events(platform)
        assert len(events) == 2  # the crashed server skipped its slice
        refreshed = sorted(
            uid for event in events for uid in event.payload["user_ids"]
        )
        assert refreshed == [f"user-{index}" for index in range(9)]
        assert fleet.servers[victim].refresh_skips == 1
