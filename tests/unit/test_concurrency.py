"""Unit tests for the concurrent-session layer (futures, queues, scheduler)."""

import pytest

from repro.errors import ApiCallFailedError, ClockError, FuturePendingError
from repro.api.concurrency import ApiFuture, ServerQueues, SessionScheduler
from repro.api.envelope import ApiError, ApiStatus
from repro.api.requests import LoginRequest, QueryRequest
from repro.ecommerce.platform_builder import build_platform


@pytest.fixture
def platform():
    return build_platform(seed=7, num_buyer_servers=3, replication_factor=1)


class TestApiFuture:
    def test_unresolved_future_raises_instead_of_blocking(self):
        future = ApiFuture(request=object(), submitted_at_ms=5.0)
        assert not future.done
        with pytest.raises(FuturePendingError):
            future.response
        with pytest.raises(FuturePendingError):
            future.result()

    def test_resolution_runs_callbacks_and_exposes_response(self):
        future = ApiFuture(request=object(), submitted_at_ms=5.0)
        seen = []
        future.add_done_callback(seen.append)

        class _Response:
            status = ApiStatus.OK
            result = "payload"
            failed = False

        future._resolve(_Response(), finished_at_ms=9.0)
        assert future.done
        assert future.finished_at_ms == 9.0
        assert future.result() == "payload"
        assert seen == [future]

    def test_failed_future_result_raises_typed_error(self):
        """Regression: ``result()`` used to silently return ``None`` for a
        failed envelope — the futures convention is that a failed future
        *raises*, carrying the structured error."""
        future = ApiFuture(request=LoginRequest("ghost"), submitted_at_ms=1.0)

        class _Failed:
            status = ApiStatus.FAILED
            result = None
            failed = True
            error = ApiError(
                code="unknown-user",
                kind="UnknownUserError",
                message="consumer 'ghost' is not registered",
                retryable=False,
            )

        future._resolve(_Failed(), finished_at_ms=2.0)
        with pytest.raises(ApiCallFailedError) as excinfo:
            future.result()
        assert excinfo.value.error.code == "unknown-user"
        assert "unknown-user" in str(excinfo.value)
        # Envelope inspection stays exception-free: .response is the
        # blessed path for callers that branch on the taxonomy.
        assert future.response.status == ApiStatus.FAILED

    def test_failed_login_future_raises_end_to_end(self, platform):
        """The failed-login path through the real scheduler: an unknown
        user with ``register=False`` resolves a failed envelope, and
        ``result()`` raises instead of handing back ``None``."""
        gateway = platform.gateway()
        future = gateway.submit(LoginRequest("never-registered", register=False))
        gateway.sessions.run_until_idle()
        assert future.done and future.response.failed
        with pytest.raises(ApiCallFailedError) as excinfo:
            future.result()
        assert excinfo.value.error is future.response.error

    def test_callback_added_after_resolution_fires_immediately(self):
        future = ApiFuture(request=object(), submitted_at_ms=0.0)

        class _Response:
            status = ApiStatus.OK
            result = None
            failed = False

        future._resolve(_Response(), finished_at_ms=1.0)
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]


class TestServerQueues:
    def test_idle_server_serves_at_arrival(self):
        queues = ServerQueues()
        assert queues.wait_for("s1", 50.0) == 50.0

    def test_busy_server_queues_the_arrival(self):
        queues = ServerQueues()
        queues.occupy("s1", started_ms=50.0, finished_ms=80.0)
        assert queues.wait_for("s1", 60.0) == 80.0
        assert queues.wait_for("s1", 90.0) == 90.0  # already free again

    def test_queues_are_per_server(self):
        queues = ServerQueues()
        queues.occupy("s1", 0.0, 100.0)
        assert queues.wait_for("s2", 10.0) == 10.0

    def test_served_counts_and_snapshot(self):
        queues = ServerQueues()
        queues.occupy("s1", 0.0, 10.0)
        queues.occupy("s1", 10.0, 25.0)
        assert queues.served("s1") == 2
        assert queues.served("s2") == 0
        assert queues.snapshot() == {"s1": 25.0}
        assert queues.busy_until("s1") == 25.0

    def test_busy_and_wait_accounting(self):
        queues = ServerQueues()
        queues.occupy("s1", 0.0, 10.0)
        queues.occupy("s1", 12.0, 27.0)
        queues.record_wait("s1", 4.0)
        queues.record_wait("s1", 6.0)
        queues.record_wait("s1", 0.0)  # zero waits accrue nothing
        assert queues.busy_ms("s1") == 25.0
        assert queues.queued_ms("s1") == 10.0
        assert queues.busy_ms("s2") == 0.0
        stats = queues.stats()
        assert stats["s1"] == {
            "busy_until": 27.0,
            "busy_ms": 25.0,
            "queued_ms": 10.0,
            "served": 2.0,
        }


class TestSessionScheduler:
    def test_lazy_construction_and_shared_instance(self, platform):
        gateway = platform.gateway()
        assert gateway._sessions is None
        scheduler = gateway.sessions
        assert scheduler is gateway.sessions

    def test_horizon_anchors_at_platform_clock(self, platform):
        gateway = platform.gateway()
        assert gateway.sessions.horizon == platform.scheduler.clock.now

    def test_negative_submit_time_rejected(self, platform):
        with pytest.raises(ClockError):
            platform.gateway().submit(LoginRequest("u"), at_ms=-1.0)

    def test_past_arrivals_clamp_to_horizon(self, platform):
        gateway = platform.gateway()
        scheduler = gateway.sessions
        future = gateway.submit(LoginRequest("u"), at_ms=0.0)  # past: clock is warm
        assert future.submitted_at_ms == scheduler.horizon

    def test_processes_in_virtual_arrival_order(self, platform):
        gateway = platform.gateway()
        scheduler = gateway.sessions
        base = scheduler.horizon
        late = gateway.submit(LoginRequest("late-user"), at_ms=base + 500.0)
        early = gateway.submit(LoginRequest("early-user"), at_ms=base + 100.0)
        assert scheduler.pending == 2
        scheduler.run_until_idle()
        assert scheduler.pending == 0
        assert early.response.request_id < late.response.request_id
        assert early.response.started_at_ms == base + 100.0
        assert late.response.started_at_ms == base + 500.0

    def test_step_and_counters_and_metrics(self, platform):
        gateway = platform.gateway()
        scheduler = gateway.sessions
        gateway.submit(LoginRequest("u1"))
        gateway.submit(LoginRequest("u2"))
        assert scheduler.submitted == 2
        assert scheduler.step()
        assert scheduler.completed == 1
        scheduler.run_until_idle()
        assert not scheduler.step()
        metrics = platform.metrics
        assert metrics.counter("api.sessions.submitted").value == 2
        assert metrics.counter("api.sessions.completed").value == 2

    def test_run_until_idle_event_guard(self, platform):
        gateway = platform.gateway()
        scheduler = gateway.sessions

        def resubmit(future):
            gateway.submit(LoginRequest("u"), at_ms=future.finished_at_ms).add_done_callback(
                resubmit
            )

        gateway.submit(LoginRequest("u")).add_done_callback(resubmit)
        with pytest.raises(ClockError):
            scheduler.run_until_idle(max_events=25)

    def test_session_id_label_carried_on_future(self, platform):
        future = platform.gateway().submit(LoginRequest("u"), session_id="s-42")
        assert future.session_id == "s-42"

    def test_overlapping_sessions_queue_per_server(self, platform):
        """Two arrivals routed to the same server at the same instant: the
        second waits out the first's service time on its own clock."""
        gateway = platform.gateway()
        scheduler = gateway.sessions
        users = [f"user-{i}" for i in range(8)]
        for user in users:
            gateway.submit(LoginRequest(user), at_ms=scheduler.horizon)
        scheduler.run_until_idle()
        waits = platform.metrics.timer("api.queue_wait_ms").summary()
        assert waits["count"] > 0
        assert waits["max"] > 0.0

    def test_sequential_execute_never_touches_queues(self, platform):
        gateway = platform.gateway()
        gateway.login("solo")
        gateway.query("solo", "laptop")
        assert platform.metrics.timer("api.queue_wait_ms").summary()["count"] == 0
        assert gateway._sessions is None  # lazy layer never constructed

    def test_session_backoff_does_not_advance_global_clock(self, platform):
        """The tentpole bug: one session's retry backoff used to advance the
        shared clock under every other session.  On the submit path the
        backoff is charged to the session's own virtual clock; the global
        clock only accrues real (transport) work."""
        gateway = platform.gateway()
        scheduler = gateway.sessions
        # Crash every server so a login retries and backs off to exhaustion.
        for server in platform.buyer_servers:
            platform.failures.crash_host(server.name)
        before = platform.scheduler.clock.now
        future = gateway.submit(LoginRequest("nobody-home"))
        scheduler.run_until_idle()
        after = platform.scheduler.clock.now
        response = future.response
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.provenance.retries > 0
        # The envelope's own (virtual) time shows the backoff spend...
        assert response.finished_at_ms - response.started_at_ms > 0.0
        # ...but the shared platform clock never moved: the routing check
        # fails pre-dispatch, so no transport work was done at all.
        assert after == before
