"""Unit tests for the hierarchical consumer profile (Figure 4.4)."""

import pytest

from repro.errors import ProfileError
from repro.core.profile import Category, Profile, SubCategory, TermVector


class TestTermVector:
    def test_set_get_and_contains(self):
        vector = TermVector({"novel": 0.5})
        vector.set("thriller", 0.3)
        assert vector.get("novel") == 0.5
        assert "thriller" in vector
        assert vector.get("missing") == 0.0

    def test_zero_weight_removes_term(self):
        vector = TermVector({"novel": 0.5})
        vector.set("novel", 0.0)
        assert "novel" not in vector
        assert len(vector) == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ProfileError):
            TermVector({"x": -0.1})

    def test_empty_term_rejected(self):
        with pytest.raises(ProfileError):
            TermVector().set("", 0.5)

    def test_add_floors_at_zero(self):
        vector = TermVector({"x": 0.2})
        assert vector.add("x", -0.5) == 0.0
        assert "x" not in vector

    def test_decay_scales_all_weights(self):
        vector = TermVector({"a": 1.0, "b": 0.5})
        vector.decay(0.5)
        assert vector.get("a") == pytest.approx(0.5)
        assert vector.get("b") == pytest.approx(0.25)

    def test_decay_factor_validated(self):
        with pytest.raises(ProfileError):
            TermVector().decay(0.0)
        with pytest.raises(ProfileError):
            TermVector().decay(1.5)

    def test_prune_removes_small_weights(self):
        vector = TermVector({"a": 0.001, "b": 0.5})
        removed = vector.prune(0.01)
        assert removed == 1
        assert "a" not in vector and "b" in vector

    def test_top_terms_deterministic_on_ties(self):
        vector = TermVector({"b": 0.5, "a": 0.5, "c": 0.9})
        assert vector.top_terms(2) == [("c", 0.9), ("a", 0.5)]

    def test_dot_and_cosine(self):
        left = TermVector({"a": 1.0, "b": 2.0})
        right = TermVector({"a": 3.0})
        assert left.dot(right) == pytest.approx(3.0)
        assert 0.0 < left.cosine(right) < 1.0
        assert TermVector().cosine(left) == 0.0

    def test_cosine_of_identical_vectors_is_one(self):
        vector = TermVector({"a": 0.4, "b": 0.7})
        assert vector.cosine(vector.copy()) == pytest.approx(1.0)

    def test_merged_with_weights_other_vector(self):
        merged = TermVector({"a": 1.0}).merged_with(TermVector({"a": 1.0, "b": 2.0}), 0.5)
        assert merged.get("a") == pytest.approx(1.5)
        assert merged.get("b") == pytest.approx(1.0)

    def test_norm_and_total(self):
        vector = TermVector({"a": 3.0, "b": 4.0})
        assert vector.norm() == pytest.approx(5.0)
        assert vector.total() == pytest.approx(7.0)


class TestCategoryStructures:
    def test_subcategory_validation(self):
        with pytest.raises(ProfileError):
            SubCategory(name="")
        with pytest.raises(ProfileError):
            SubCategory(name="x", preference=-1.0)

    def test_category_subcategory_create_and_lookup(self):
        category = Category(name="books")
        sub = category.subcategory("fiction")
        assert sub is category.subcategory("fiction")
        with pytest.raises(ProfileError):
            category.subcategory("missing", create=False)

    def test_flattened_terms_merges_subcategories(self):
        category = Category(name="books")
        category.terms.set("reading", 1.0)
        category.subcategory("fiction").terms.set("novel", 0.5)
        flattened = category.flattened_terms()
        assert flattened.get("reading") == 1.0
        assert flattened.get("novel") == 0.5


class TestProfile:
    def test_requires_user_id(self):
        with pytest.raises(ProfileError):
            Profile("")

    def test_category_creation_and_lookup(self):
        profile = Profile("alice")
        category = profile.category("books")
        assert profile.has_category("books")
        assert category is profile.category("books")
        with pytest.raises(ProfileError):
            profile.category("missing", create=False)
        with pytest.raises(ProfileError):
            profile.category("")

    def test_is_empty_until_signal_arrives(self):
        profile = Profile("alice")
        assert profile.is_empty()
        profile.category("books")
        assert profile.is_empty()  # structure alone is not signal
        profile.category("books").preference = 1.0
        assert not profile.is_empty()

    def test_preference_vector_and_top_categories(self):
        profile = Profile("alice")
        profile.category("books").preference = 3.0
        profile.category("fashion").preference = 1.0
        profile.category("groceries").preference = 3.0
        assert profile.preference_vector()["books"] == 3.0
        top = profile.top_categories(2)
        assert top == [("books", 3.0), ("groceries", 3.0)]

    def test_flattened_terms_across_categories(self):
        profile = Profile("alice")
        profile.category("books").terms.set("novel", 1.0)
        profile.category("fashion").subcategory("shoes").terms.set("boots", 0.5)
        flattened = profile.flattened_terms()
        assert flattened.get("novel") == 1.0
        assert flattened.get("boots") == 0.5

    def test_roundtrip_to_dict_and_back(self):
        profile = Profile("alice")
        profile.updated_at = 42.0
        profile.feedback_events = 3
        books = profile.category("books")
        books.preference = 2.5
        books.terms.set("novel", 0.8)
        books.subcategory("fiction").terms.set("mystery", 0.4)
        books.subcategory("fiction").preference = 1.5

        restored = Profile.from_dict(profile.to_dict())
        assert restored.user_id == "alice"
        assert restored.updated_at == 42.0
        assert restored.feedback_events == 3
        assert restored.category("books").preference == 2.5
        assert restored.category("books").terms.get("novel") == 0.8
        assert restored.category("books").subcategory("fiction").terms.get("mystery") == 0.4

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(ProfileError):
            Profile.from_dict({"no_user_id": True})

    def test_copy_is_independent(self):
        profile = Profile("alice")
        profile.category("books").preference = 1.0
        duplicate = profile.copy()
        duplicate.category("books").preference = 9.0
        assert profile.category("books").preference == 1.0

    def test_len_counts_categories(self):
        profile = Profile("alice")
        profile.category("books")
        profile.category("fashion")
        assert len(profile) == 2
        assert profile.category_names() == ["books", "fashion"]
