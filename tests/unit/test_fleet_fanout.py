"""Fleet fan-out accounting: max-of-shards clock charging and degraded mode.

PR 2's fleet visited shards sequentially and charged the simulated network
nothing for the fan-out; these tests pin the new contract: all shard RPCs are
dispatched at once, the clock pays ``max`` of the per-shard round trips plus
the merge cost (never the sum), per-shard timings land in platform metrics,
and shards that cannot answer are *reported* — not silently skipped.
"""

import itertools

import pytest

from repro.core.profile import Profile
from repro.core.sharding import ShardedNeighborIndex, merge_topk
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.ecommerce.platform_builder import build_platform


def _query_keyword(platform):
    return next(iter(platform.catalog_view())).terms[0][0]


def _warmed_fleet_platform(num_buyer_servers=3, seed=11):
    """A fleet platform where several consumers have learned profiles."""
    platform = build_platform(seed=seed, num_buyer_servers=num_buyer_servers)
    keyword = _query_keyword(platform)
    for index in range(8):
        session = platform.login(f"consumer-{index}")
        session.query(keyword)
        session.logout()
    return platform


class TestMergeTopkToleratesNone:
    def test_none_entries_are_skipped(self):
        ranked = [[("a", 0.9), ("b", 0.5)], None, [("c", 0.7)]]
        assert merge_topk(ranked, 2) == [("a", 0.9), ("c", 0.7)]

    def test_all_none_merges_empty(self):
        assert merge_topk([None, None], 5) == []


def _tied_profile(user_id, preference=3.0, term_weight=1.5):
    """Profiles that are exact clones except for their id: guaranteed score ties."""
    profile = Profile(user_id)
    profile.category("books").preference = preference
    profile.category("books").terms.set("fantasy", term_weight)
    return profile


class TestMergeTopkTieBreaking:
    """Regression for the tie-break satellite: equal-score candidates must
    order deterministically by user id, independent of shard count and of
    the order the per-shard responses arrive in."""

    def test_ties_order_by_user_id_for_every_arrival_order(self):
        lists = [
            [("delta", 0.5), ("alpha", 0.25)],
            [("bravo", 0.5), ("echo", 0.25)],
            [("charlie", 0.5)],
        ]
        expected = [("bravo", 0.5), ("charlie", 0.5), ("delta", 0.5), ("alpha", 0.25)]
        for permutation in itertools.permutations(lists):
            assert merge_topk(list(permutation), 4) == expected

    def test_tie_at_the_topk_boundary_keeps_the_smallest_ids(self):
        lists = [[("zed", 0.5)], [("amy", 0.5)], [("moe", 0.5)]]
        for permutation in itertools.permutations(lists):
            assert merge_topk(list(permutation), 2) == [("amy", 0.5), ("moe", 0.5)]

    def test_duplicate_user_across_lists_is_scored_once_with_its_best_score(self):
        """A stale replica answering for an unreachable shard can report a
        consumer their new owner also reported: the duplicate must collapse
        instead of occupying two top-k slots."""
        lists = [
            [("ann", 0.9), ("bob", 0.4)],
            [("ann", 0.7), ("cat", 0.6)],  # stale copy of ann, lower score
        ]
        merged = merge_topk(lists, 3)
        assert merged == [("ann", 0.9), ("cat", 0.6), ("bob", 0.4)]
        assert merge_topk(list(reversed(lists)), 3) == merged

    @pytest.mark.parametrize("num_shards", range(1, 9))
    def test_sharded_queries_with_deliberate_ties_match_brute_force(self, num_shards):
        """Shard counts 1-8 over a population full of exact clones: the
        sharded result must equal brute force byte for byte even though
        every clone ties."""
        config = SimilarityConfig(top_k=6)
        # Three tie groups of five clones each; ids interleaved so shard
        # routing scatters each group across shards.
        profiles = [
            _tied_profile(f"user-{group}-{index}", preference=2.0 + group)
            for index in range(5)
            for group in range(3)
        ]
        target = _tied_profile("target", preference=3.0)
        index = ShardedNeighborIndex(
            profiles=profiles, config=config, num_shards=num_shards
        )
        brute = find_similar_users(target, profiles, config)
        assert index.find_similar(target, config=config) == brute


class TestClockAccounting:
    def test_charged_latency_is_max_of_shards_plus_merge_not_sum(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        owner = fleet.server_for("consumer-0")
        peers = [server for server in fleet.servers if server is not owner]
        # Distinct, asymmetric link latencies so max != mean != sum.
        for latency, peer in zip((10.0, 40.0), peers):
            platform.network.set_latency(owner.name, peer.name, latency)
            platform.network.set_latency(peer.name, owner.name, latency)

        before = platform.now
        result = fleet.query_similar("consumer-0")
        charged = platform.now - before

        assert charged == pytest.approx(result.latency_ms)
        assert len(result.shard_latencies_ms) == len(fleet.servers)
        slowest = max(result.shard_latencies_ms.values())
        assert result.latency_ms == pytest.approx(slowest + result.merge_ms)
        # The slowest round trip rides on the 40ms links (2 x 40 + transfer).
        assert slowest >= 80.0
        # Emphatically NOT the sequential sum of all shard round trips.
        assert charged < sum(result.shard_latencies_ms.values())

    def test_per_shard_timings_are_in_platform_metrics(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        result = fleet.query_similar("consumer-0")
        for server in fleet.servers:
            timer = platform.metrics.timer(
                f"fleet.fanout.shard.{server.name}.latency_ms"
            )
            assert timer.latest == pytest.approx(
                result.shard_latencies_ms[server.name]
            )
        total = platform.metrics.timer("fleet.fanout.latency_ms")
        assert total.latest == pytest.approx(result.latency_ms)
        assert platform.metrics.counter("fleet.fanout.queries").value == 1.0

    def test_fanout_event_records_per_shard_latencies(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        result = fleet.query_similar("consumer-0")
        payload = platform.event_log.last_payload("fleet.fanout-query")
        assert payload is not None
        assert payload["user_id"] == "consumer-0"
        assert payload["shard_latencies"] == result.shard_latencies_ms
        assert payload["unreachable"] == []


class TestDegradedMode:
    def test_partitioned_shard_is_reported_not_silently_skipped(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        owner = fleet.server_for("consumer-0")
        peer = next(server for server in fleet.servers if server is not owner)
        full = fleet.query_similar("consumer-0")
        assert not full.degraded

        platform.failures.partition([owner.name], [peer.name])
        result = fleet.query_similar("consumer-0")

        assert result.degraded
        assert result.unreachable_count == 1
        assert result.unreachable_shards == (peer.name,)
        # The merge ran over the reachable community only: no consumer owned
        # by the partitioned server can appear in the answer.
        partitioned_users = set(peer.user_db.user_ids)
        assert not partitioned_users & {uid for uid, _ in result.neighbors}
        assert (
            platform.metrics.counter("fleet.fanout.unreachable_shards").value == 1.0
        )

        platform.failures.heal()
        healed = fleet.query_similar("consumer-0")
        assert not healed.degraded
        assert healed.neighbors == full.neighbors

    def test_crashed_shard_is_reported_unreachable(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        owner = fleet.server_for("consumer-0")
        peer = next(server for server in fleet.servers if server is not owner)
        platform.failures.crash_host(peer.name)

        result = fleet.query_similar("consumer-0")
        assert result.degraded
        assert peer.name in result.unreachable_shards
        assert peer.name not in result.shard_latencies_ms

    def test_cut_response_link_counts_as_timeout(self):
        """A shard whose response leg is down did the work but never answered."""
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        owner = fleet.server_for("consumer-0")
        peer = next(server for server in fleet.servers if server is not owner)
        platform.network.cut_link(peer.name, owner.name, both_ways=False)

        result = fleet.query_similar("consumer-0")
        assert result.unreachable_shards == (peer.name,)

    def test_degraded_query_never_raises_even_with_all_peers_gone(self):
        platform = _warmed_fleet_platform()
        fleet = platform.fleet
        owner = fleet.server_for("consumer-0")
        for server in fleet.servers:
            if server is not owner:
                platform.failures.crash_host(server.name)
        result = fleet.query_similar("consumer-0")
        assert result.unreachable_count == len(fleet.servers) - 1
        # The owner's own shard still answers.
        assert owner.name in result.shard_latencies_ms


def _warmed_replicated_platform(hedge=None, seed=11):
    """A replicated fleet platform with learned profiles, hedging optional."""
    platform = build_platform(
        seed=seed,
        num_buyer_servers=3,
        replication_factor=1,
        fleet_hedge_delay_percentile=hedge,
    )
    keyword = _query_keyword(platform)
    for index in range(8):
        session = platform.login(f"consumer-{index}")
        session.query(keyword)
        session.logout()
    return platform


def _slow_peer(platform, latency=40.0):
    """Make one non-owner shard's links slow; returns (owner, slow peer)."""
    fleet = platform.fleet
    owner = fleet.server_for("consumer-0")
    peer = next(server for server in fleet.servers if server is not owner)
    platform.network.set_latency(owner.name, peer.name, latency)
    platform.network.set_latency(peer.name, owner.name, latency)
    return owner, peer


class TestHedgedFanout:
    """Tail-at-scale hedging: the slowest shard races its freshest replica.

    The contract: ``None`` never hedges (byte-identical to the unhedged
    fan-out), ``p=1.0`` arms the machinery but can never fire, and a
    winning hedge charges the clock ``min(primary, delay + hedge)`` while
    keeping the answer exact when the replica is caught up.
    """

    def test_hedge_beats_a_slow_shard(self):
        baseline_platform = _warmed_replicated_platform(hedge=None)
        _slow_peer(baseline_platform)
        baseline = baseline_platform.fleet.query_similar("consumer-0")

        platform = _warmed_replicated_platform(hedge=0.5)
        _owner, peer = _slow_peer(platform)
        result = platform.fleet.query_similar("consumer-0")

        assert result.hedged_shards == (peer.name,)
        assert result.hedge_won_shards == (peer.name,)
        # The slow shard was charged delay + hedge instead of its own RTT.
        assert result.shard_latencies_ms[peer.name] < (
            baseline.shard_latencies_ms[peer.name]
        )
        assert result.latency_ms < baseline.latency_ms
        # Synchronous replication keeps the replica caught up, so the
        # hedged answer is exact — same neighbors, nothing degraded.
        assert result.neighbors == baseline.neighbors
        assert not result.degraded
        metrics = platform.metrics
        assert metrics.counter("fleet.fanout.hedges").value == 1
        assert metrics.counter("fleet.fanout.hedge_wins").value == 1

    def test_clock_charged_min_of_primary_and_hedge(self):
        platform = _warmed_replicated_platform(hedge=0.5)
        _slow_peer(platform)
        before = platform.now
        result = platform.fleet.query_similar("consumer-0")
        charged = platform.now - before
        assert charged == pytest.approx(result.latency_ms)
        assert result.latency_ms == pytest.approx(
            max(result.shard_latencies_ms.values()) + result.merge_ms
        )

    def test_percentile_one_arms_but_never_fires(self):
        off = _warmed_replicated_platform(hedge=None)
        _slow_peer(off)
        armed = _warmed_replicated_platform(hedge=1.0)
        _slow_peer(armed)

        result_off = off.fleet.query_similar("consumer-0")
        result_armed = armed.fleet.query_similar("consumer-0")

        assert result_armed.hedged_shards == ()
        assert result_armed.hedge_won_shards == ()
        # No latency can exceed the max-latency delay, so the armed fleet
        # behaves byte-identically to the disabled one.
        assert repr(result_armed) == repr(result_off)
        assert armed.metrics.counter("fleet.fanout.hedges").value == 0

    def test_losing_hedge_changes_nothing_but_the_provenance(self):
        """A hedge whose replica round trip cannot beat the primary loses:
        launched (counted, reported) but the primary answer stands."""
        def configure(platform):
            fleet = platform.fleet
            owner = fleet.server_for("consumer-0")
            # The peer whose replica holder is NOT the owner, so the hedge
            # has to cross a (similarly slow) real link and lose the race.
            peer = next(
                server
                for server in fleet.servers
                if server is not owner
                and fleet._replica_holders(server)
                and fleet._replica_holders(server)[0][0] is not owner
            )
            other = next(
                server
                for server in fleet.servers
                if server is not owner and server is not peer
            )
            for a, b, latency in (
                (owner, peer, 22.0),
                (owner, other, 20.0),
            ):
                platform.network.set_latency(a.name, b.name, latency)
                platform.network.set_latency(b.name, a.name, latency)
            return peer

        baseline_platform = _warmed_replicated_platform(hedge=None)
        configure(baseline_platform)
        baseline = baseline_platform.fleet.query_similar("consumer-0")

        platform = _warmed_replicated_platform(hedge=0.5)
        peer = configure(platform)
        result = platform.fleet.query_similar("consumer-0")

        assert result.hedged_shards == (peer.name,)
        assert result.hedge_won_shards == ()
        assert result.shard_latencies_ms == baseline.shard_latencies_ms
        assert result.latency_ms == pytest.approx(baseline.latency_ms)
        assert result.neighbors == baseline.neighbors
        metrics = platform.metrics
        assert metrics.counter("fleet.fanout.hedges").value == 1
        assert metrics.counter("fleet.fanout.hedge_wins").value == 0

    def test_event_payload_carries_hedge_fields_only_when_armed(self):
        off = _warmed_replicated_platform(hedge=None)
        off.fleet.query_similar("consumer-0")
        payload = off.event_log.last_payload("fleet.fanout-query")
        assert "hedged" not in payload and "hedge_won" not in payload

        platform = _warmed_replicated_platform(hedge=0.5)
        _owner, peer = _slow_peer(platform)
        platform.fleet.query_similar("consumer-0")
        payload = platform.event_log.last_payload("fleet.fanout-query")
        assert payload["hedged"] == [peer.name]
        assert payload["hedge_won"] == [peer.name]

    def test_gateway_provenance_reports_hedging(self):
        platform = _warmed_replicated_platform(hedge=0.5)
        _owner, peer = _slow_peer(platform)
        response = platform.gateway().find_similar("consumer-0")
        assert response.ok
        assert response.provenance.hedged_shards == (peer.name,)
        assert response.provenance.hedge_won_shards == (peer.name,)
        # Hedging alone never degrades the envelope.
        assert response.status == "ok"

    def test_no_replica_means_no_hedge(self):
        platform = build_platform(
            seed=11, num_buyer_servers=3, replication_factor=0,
            fleet_hedge_delay_percentile=0.5,
        )
        keyword = _query_keyword(platform)
        for index in range(4):
            session = platform.login(f"consumer-{index}")
            session.query(keyword)
            session.logout()
        _slow_peer(platform)
        result = platform.fleet.query_similar("consumer-0")
        assert result.hedged_shards == ()
        assert platform.metrics.counter("fleet.fanout.hedges").value == 0
