"""Unit tests for the Figure 4.5 profile learning rule."""

import pytest

from repro.errors import ProfileError
from repro.core.profile import Profile
from repro.core.profile_learning import (
    FEEDBACK_QUALITY,
    FeedbackEvent,
    LearningConfig,
    ProfileLearner,
)
from repro.core.ratings import InteractionKind

from tests.conftest import make_item


def buy_event(user="alice", item=None, **kwargs):
    return FeedbackEvent(
        user_id=user, item=item or make_item(), kind=InteractionKind.BUY, **kwargs
    )


class TestLearningConfig:
    def test_defaults_valid(self):
        LearningConfig().validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("learning_rate", 0.0),
            ("learning_rate", 1.5),
            ("preference_rate", 0.0),
            ("decay_factor", 0.0),
            ("decay_factor", 1.2),
            ("max_preference", 0.0),
            ("prune_below", -0.1),
        ],
    )
    def test_invalid_config_rejected(self, field, value):
        config = LearningConfig()
        setattr(config, field, value)
        with pytest.raises(ProfileError):
            config.validate()


class TestFeedbackQuality:
    def test_buy_is_strongest(self):
        assert FEEDBACK_QUALITY[InteractionKind.BUY] == max(FEEDBACK_QUALITY.values())

    def test_query_is_weakest_behaviour(self):
        behavioural = {
            kind: value for kind, value in FEEDBACK_QUALITY.items()
            if kind is not InteractionKind.RATE
        }
        assert FEEDBACK_QUALITY[InteractionKind.QUERY] == min(behavioural.values())

    def test_explicit_rating_scales_quality(self):
        low = FeedbackEvent("u", make_item(), InteractionKind.RATE, rating=1.0)
        high = FeedbackEvent("u", make_item(), InteractionKind.RATE, rating=5.0)
        assert high.quality() > low.quality()
        assert high.quality() == pytest.approx(FEEDBACK_QUALITY[InteractionKind.RATE])

    def test_rating_clamped_to_range(self):
        event = FeedbackEvent("u", make_item(), InteractionKind.RATE, rating=99.0)
        assert event.quality() <= FEEDBACK_QUALITY[InteractionKind.RATE]


class TestProfileLearner:
    def test_single_event_updates_terms_and_preference(self):
        learner = ProfileLearner(LearningConfig(learning_rate=0.5, preference_rate=0.5))
        profile = Profile("alice")
        item = make_item(terms={"novel": 0.8})
        learner.apply(profile, buy_event(item=item))

        category = profile.category("books", create=False)
        # W = 0 + alpha(0.5) * w_ji(0.8) * quality(1.0) = 0.4
        assert category.terms.get("novel") == pytest.approx(0.4)
        assert category.preference == pytest.approx(0.5)
        assert profile.feedback_events == 1

    def test_update_formula_matches_paper(self):
        alpha = 0.3
        learner = ProfileLearner(LearningConfig(learning_rate=alpha))
        profile = Profile("alice")
        item = make_item(terms={"novel": 0.6, "classic": 0.2})
        learner.apply(profile, buy_event(item=item))
        learner.apply(
            profile,
            FeedbackEvent("alice", item, InteractionKind.QUERY),
        )
        quality_buy = FEEDBACK_QUALITY[InteractionKind.BUY]
        quality_query = FEEDBACK_QUALITY[InteractionKind.QUERY]
        expected = alpha * 0.6 * quality_buy + alpha * 0.6 * quality_query
        assert profile.category("books").terms.get("novel") == pytest.approx(expected)

    def test_subcategory_also_learns(self):
        learner = ProfileLearner()
        profile = Profile("alice")
        learner.apply(profile, buy_event(item=make_item(subcategory="fiction")))
        sub = profile.category("books").subcategory("fiction", create=False)
        assert sub.terms.get("novel") > 0
        assert sub.preference > 0

    def test_item_without_subcategory(self):
        learner = ProfileLearner()
        profile = Profile("alice")
        item = make_item(item_id="plain", subcategory="")
        learner.apply(profile, buy_event(item=item))
        assert profile.category("books").subcategories == {}

    def test_stronger_feedback_teaches_more(self):
        item = make_item()
        weak = ProfileLearner().build_profile(
            "alice", [FeedbackEvent("alice", item, InteractionKind.QUERY)]
        )
        strong = ProfileLearner().build_profile(
            "alice", [FeedbackEvent("alice", item, InteractionKind.BUY)]
        )
        assert (
            strong.category("books").terms.get("novel")
            > weak.category("books").terms.get("novel")
        )

    def test_preference_capped_at_max(self):
        learner = ProfileLearner(LearningConfig(max_preference=2.0, preference_rate=1.0))
        profile = Profile("alice")
        for _ in range(10):
            learner.apply(profile, buy_event())
        assert profile.category("books").preference == 2.0

    def test_decay_ages_old_interests(self):
        learner = ProfileLearner(LearningConfig(decay_factor=0.5))
        profile = Profile("alice")
        old_item = make_item(item_id="old", terms={"classic": 1.0})
        new_item = make_item(item_id="new", terms={"thriller": 1.0})
        learner.apply(profile, buy_event(item=old_item))
        weight_before = profile.category("books").terms.get("classic")
        learner.apply(profile, buy_event(item=new_item))
        assert profile.category("books").terms.get("classic") < weight_before

    def test_user_mismatch_rejected(self):
        learner = ProfileLearner()
        with pytest.raises(ProfileError):
            learner.apply(Profile("bob"), buy_event(user="alice"))

    def test_apply_all_and_build_profile(self):
        events = [buy_event(item=make_item(item_id=f"i{i}")) for i in range(5)]
        learner = ProfileLearner()
        profile = learner.build_profile("alice", events)
        assert profile.feedback_events == 5
        assert learner.events_applied == 5

    def test_timestamps_track_latest(self):
        learner = ProfileLearner()
        profile = Profile("alice")
        learner.apply(profile, buy_event(timestamp=10.0))
        learner.apply(profile, buy_event(timestamp=5.0))
        assert profile.updated_at == 10.0

    def test_learning_rate_controls_speed(self):
        item = make_item()
        slow = ProfileLearner(LearningConfig(learning_rate=0.1)).build_profile(
            "alice", [buy_event(item=item)]
        )
        fast = ProfileLearner(LearningConfig(learning_rate=0.9)).build_profile(
            "alice", [buy_event(item=item)]
        )
        assert (
            fast.category("books").terms.get("novel")
            > slow.category("books").terms.get("novel")
        )
