"""Unit tests for merchandise items and the observational ratings store."""

import pytest

from repro.errors import CatalogError, RecommendationError
from repro.core.items import Item, ItemCatalogView
from repro.core.ratings import IMPLICIT_WEIGHTS, Interaction, InteractionKind, RatingsStore

from tests.conftest import make_item


class TestItem:
    def test_build_sorts_terms(self):
        item = Item.build("i1", "Thing", "books", terms={"b": 0.2, "a": 0.4})
        assert item.terms == (("a", 0.4), ("b", 0.2))
        assert item.term_weights == {"a": 0.4, "b": 0.2}

    def test_empty_id_rejected(self):
        with pytest.raises(CatalogError):
            Item.build("", "Thing", "books")

    def test_negative_price_rejected(self):
        with pytest.raises(CatalogError):
            Item.build("i1", "Thing", "books", price=-1.0)

    def test_negative_term_weight_rejected(self):
        with pytest.raises(CatalogError):
            Item.build("i1", "Thing", "books", terms={"x": -0.5})

    @pytest.mark.parametrize(
        "keyword, expected",
        [
            ("books", True),        # category
            ("fiction", True),      # subcategory
            ("novel", True),        # term
            ("Test", True),         # part of the name
            ("electronics", False),
            ("", False),
        ],
    )
    def test_matches_keyword(self, keyword, expected):
        assert make_item().matches_keyword(keyword) is expected


class TestItemCatalogView:
    def test_duplicate_item_rejected(self):
        item = make_item("dup")
        with pytest.raises(CatalogError):
            ItemCatalogView([item, item])

    def test_lookup_and_contains(self):
        view = ItemCatalogView([make_item("a"), make_item("b")])
        assert "a" in view and "missing" not in view
        assert view.get("a").item_id == "a"
        with pytest.raises(CatalogError):
            view.get("missing")

    def test_in_category_and_categories(self):
        view = ItemCatalogView([
            make_item("a", category="books"),
            make_item("b", category="electronics", terms={"laptop": 1.0}),
        ])
        assert [item.item_id for item in view.in_category("books")] == ["a"]
        assert view.categories() == ["books", "electronics"]

    def test_search_by_term(self):
        view = ItemCatalogView([
            make_item("a", terms={"novel": 1.0}),
            make_item("b", terms={"laptop": 1.0}, category="electronics"),
        ])
        assert [item.item_id for item in view.search("laptop")] == ["b"]

    def test_len_iter_and_item_ids(self, catalog_view, sample_items):
        assert len(catalog_view) == len(sample_items)
        assert sorted(item.item_id for item in catalog_view) == catalog_view.item_ids


class TestInteraction:
    def test_implicit_weights_ordering(self):
        assert (
            IMPLICIT_WEIGHTS[InteractionKind.BUY]
            > IMPLICIT_WEIGHTS[InteractionKind.AUCTION_BID]
            > IMPLICIT_WEIGHTS[InteractionKind.QUERY]
        )

    def test_explicit_rating_uses_value(self):
        interaction = Interaction("u", "i", InteractionKind.RATE, value=4.5)
        assert interaction.implicit_value() == 4.5

    def test_buy_uses_table_weight(self):
        interaction = Interaction("u", "i", InteractionKind.BUY)
        assert interaction.implicit_value() == IMPLICIT_WEIGHTS[InteractionKind.BUY]


class TestRatingsStore:
    def test_add_accumulates_values(self):
        store = RatingsStore()
        store.add(Interaction("u", "i", InteractionKind.QUERY))
        value = store.add(Interaction("u", "i", InteractionKind.BUY))
        assert value == pytest.approx(6.0)
        assert store.value("u", "i") == pytest.approx(6.0)

    def test_value_capped_at_max(self):
        store = RatingsStore(max_value=8.0)
        for _ in range(5):
            store.add(Interaction("u", "i", InteractionKind.BUY))
        assert store.value("u", "i") == 8.0

    def test_invalid_max_value(self):
        with pytest.raises(RecommendationError):
            RatingsStore(max_value=0)

    def test_missing_user_or_item_rejected(self):
        store = RatingsStore()
        with pytest.raises(RecommendationError):
            store.add(Interaction("", "i", InteractionKind.BUY))
        with pytest.raises(RecommendationError):
            store.add(Interaction("u", "", InteractionKind.BUY))

    def test_users_items_and_vectors(self):
        store = RatingsStore()
        store.add(Interaction("u1", "a", InteractionKind.BUY))
        store.add(Interaction("u1", "b", InteractionKind.QUERY))
        store.add(Interaction("u2", "a", InteractionKind.VIEW))
        assert store.users == ["u1", "u2"]
        assert store.items == ["a", "b"]
        assert store.items_of("u1") == ["a", "b"]
        assert store.users_of("a") == ["u1", "u2"]
        vector = store.user_vector("u1")
        vector["a"] = 0.0
        assert store.value("u1", "a") > 0  # copy, not the live dict

    def test_unknown_user_vector_is_empty(self):
        assert RatingsStore().user_vector("ghost") == {}

    def test_purchase_counters(self):
        store = RatingsStore()
        store.add(Interaction("u1", "a", InteractionKind.BUY, timestamp=10.0))
        store.add(Interaction("u2", "a", InteractionKind.BUY, timestamp=20.0))
        store.add(Interaction("u1", "b", InteractionKind.QUERY, timestamp=30.0))
        assert store.purchase_count("a") == 2
        assert store.purchase_count("b") == 0
        assert store.purchases() == {"a": 2}

    def test_purchases_between_window(self):
        store = RatingsStore()
        store.add(Interaction("u1", "a", InteractionKind.BUY, timestamp=10.0))
        store.add(Interaction("u2", "a", InteractionKind.BUY, timestamp=200.0))
        assert store.purchases_between(0.0, 100.0) == {"a": 1}

    def test_co_purchases(self):
        store = RatingsStore()
        for user, item in [("u1", "a"), ("u1", "b"), ("u2", "a"), ("u2", "b"), ("u3", "a")]:
            store.add(Interaction(user, item, InteractionKind.BUY))
        assert store.co_purchases() == {("a", "b"): 2}

    def test_interactions_of_and_last_timestamp(self):
        store = RatingsStore()
        store.add(Interaction("u1", "a", InteractionKind.QUERY, timestamp=5.0))
        store.add(Interaction("u1", "a", InteractionKind.BUY, timestamp=9.0))
        assert len(store.interactions_of("u1")) == 2
        assert store.last_interaction_at("u1", "a") == 9.0
        assert store.last_interaction_at("u1", "zzz") is None

    def test_density_and_sparsity(self):
        store = RatingsStore()
        assert store.density() == 0.0
        store.add(Interaction("u1", "a", InteractionKind.BUY))
        store.add(Interaction("u2", "b", InteractionKind.BUY))
        # 2 users x 2 items, 2 cells filled -> density 0.5
        assert store.density() == pytest.approx(0.5)
        assert store.sparsity() == pytest.approx(0.5)
