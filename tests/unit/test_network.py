"""Unit tests for the simulated network."""

import pytest

from repro.errors import (
    HostUnreachableError,
    LinkDownError,
    NetworkError,
    TransferDroppedError,
)
from repro.platform.network import NetworkConfig, SimulatedNetwork


@pytest.fixture
def net():
    network = SimulatedNetwork(NetworkConfig(base_latency_ms=5.0, seed=1))
    for name in ("a", "b", "c"):
        network.register_host(name)
    return network


class TestNetworkConfig:
    def test_defaults_are_valid(self):
        NetworkConfig().validate()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("base_latency_ms", -1.0),
            ("local_latency_ms", -0.1),
            ("bandwidth_kb_per_ms", 0.0),
            ("jitter_ms", -2.0),
            ("loss_probability", 1.0),
            ("loss_probability", -0.2),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        config = NetworkConfig()
        setattr(config, field, value)
        with pytest.raises(NetworkError):
            config.validate()


class TestTopology:
    def test_register_host_is_idempotent(self, net):
        net.register_host("a")
        assert net.hosts == ["a", "b", "c"]

    def test_links_created_between_all_pairs(self, net):
        assert net.link("a", "b").latency_ms == 5.0
        assert net.link("b", "a").latency_ms == 5.0

    def test_loopback_uses_local_latency(self, net):
        assert net.link("a", "a").latency_ms == pytest.approx(0.05)

    def test_link_with_unknown_host_rejected(self, net):
        with pytest.raises(HostUnreachableError):
            net.link("a", "nowhere")

    def test_set_latency_overrides_one_direction(self, net):
        net.set_latency("a", "b", 42.0)
        assert net.link("a", "b").latency_ms == 42.0
        assert net.link("b", "a").latency_ms == 5.0

    def test_set_negative_latency_rejected(self, net):
        with pytest.raises(NetworkError):
            net.set_latency("a", "b", -1.0)


class TestTransfers:
    def test_base_latency_charged(self, net):
        outcome = net.transfer_latency("a", "b", payload_bytes=0)
        assert outcome.latency_ms == pytest.approx(5.0)

    def test_payload_adds_serialization_time(self, net):
        small = net.transfer_latency("a", "b", payload_bytes=0).latency_ms
        large = net.transfer_latency("a", "b", payload_bytes=1024 * 100).latency_ms
        assert large > small

    def test_unknown_hosts_rejected(self, net):
        with pytest.raises(HostUnreachableError):
            net.transfer_latency("a", "nowhere")
        with pytest.raises(HostUnreachableError):
            net.transfer_latency("nowhere", "a")

    def test_counters_accumulate(self, net):
        net.transfer_latency("a", "b", payload_bytes=100)
        net.transfer_latency("a", "c", payload_bytes=200)
        assert net.total_transfers == 2
        assert net.total_bytes == 300
        assert net.stats()["total_transfers"] == 2.0

    def test_negative_payload_clamped(self, net):
        outcome = net.transfer_latency("a", "b", payload_bytes=-50)
        assert outcome.bytes_moved == 0

    def test_jitter_stays_within_bound(self):
        network = SimulatedNetwork(NetworkConfig(base_latency_ms=5.0, jitter_ms=2.0, seed=3))
        network.register_host("a")
        network.register_host("b")
        for _ in range(50):
            latency = network.transfer_latency("a", "b").latency_ms
            assert 5.0 <= latency <= 7.0

    def test_deterministic_given_seed(self):
        def run(seed):
            network = SimulatedNetwork(NetworkConfig(jitter_ms=3.0, seed=seed))
            network.register_host("a")
            network.register_host("b")
            return [network.transfer_latency("a", "b").latency_ms for _ in range(10)]

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestFailures:
    def test_cut_link_blocks_both_directions(self, net):
        net.cut_link("a", "b")
        with pytest.raises(LinkDownError):
            net.transfer_latency("a", "b")
        with pytest.raises(LinkDownError):
            net.transfer_latency("b", "a")

    def test_cut_link_one_way(self, net):
        net.cut_link("a", "b", both_ways=False)
        with pytest.raises(LinkDownError):
            net.transfer_latency("a", "b")
        net.transfer_latency("b", "a")

    def test_restore_link(self, net):
        net.cut_link("a", "b")
        net.restore_link("a", "b")
        net.transfer_latency("a", "b")

    def test_host_down_blocks_transfers(self, net):
        net.take_host_down("b")
        with pytest.raises(HostUnreachableError):
            net.transfer_latency("a", "b")
        with pytest.raises(HostUnreachableError):
            net.transfer_latency("b", "a")
        assert not net.is_host_up("b")

    def test_bring_host_up(self, net):
        net.take_host_down("b")
        net.bring_host_up("b")
        net.transfer_latency("a", "b")

    def test_partition_blocks_cross_group_traffic(self, net):
        net.partition(["a"], ["b", "c"])
        with pytest.raises(HostUnreachableError):
            net.transfer_latency("a", "b")
        net.transfer_latency("b", "c")

    def test_heal_partitions(self, net):
        net.partition(["a"], ["b"])
        net.heal_partitions()
        net.transfer_latency("a", "b")

    def test_overlapping_partition_rejected(self, net):
        with pytest.raises(NetworkError):
            net.partition(["a", "b"], ["b", "c"])

    def test_loss_model_drops_and_counts(self):
        network = SimulatedNetwork(NetworkConfig(loss_probability=0.5, seed=11))
        network.register_host("a")
        network.register_host("b")
        drops = 0
        for _ in range(100):
            try:
                network.transfer_latency("a", "b")
            except TransferDroppedError:
                drops += 1
        assert drops > 0
        assert network.dropped_transfers == drops
