"""Unit tests for the merchandise catalogue and transaction records."""

import pytest

from repro.errors import CatalogError, TransactionError
from repro.ecommerce.catalog import Listing, MerchandiseCatalog
from repro.ecommerce.transactions import TransactionKind, TransactionRecord

from tests.conftest import make_item


class TestListing:
    def test_default_reserve_is_seventy_percent(self):
        listing = Listing(item=make_item(price=100.0), stock=1)
        assert listing.reserve_price == pytest.approx(70.0)

    def test_explicit_reserve_respected(self):
        listing = Listing(item=make_item(price=100.0), stock=1, reserve_price=50.0)
        assert listing.reserve_price == 50.0

    def test_negative_stock_rejected(self):
        with pytest.raises(CatalogError):
            Listing(item=make_item(), stock=-1)

    def test_negative_reserve_rejected(self):
        with pytest.raises(CatalogError):
            Listing(item=make_item(), stock=1, reserve_price=-5.0)

    def test_available_tracks_stock(self):
        listing = Listing(item=make_item(), stock=0)
        assert not listing.available


class TestMerchandiseCatalog:
    def test_list_item_and_lookup(self):
        catalog = MerchandiseCatalog(owner="seller-1")
        catalog.list_item(make_item("a"), stock=3)
        assert "a" in catalog
        assert catalog.item("a").item_id == "a"
        assert catalog.listing("a").stock == 3
        assert len(catalog) == 1

    def test_listing_same_item_adds_stock(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=2)
        catalog.list_item(make_item("a"), stock=3)
        assert catalog.listing("a").stock == 5
        assert len(catalog) == 1

    def test_unknown_item_raises(self):
        catalog = MerchandiseCatalog()
        with pytest.raises(CatalogError):
            catalog.listing("ghost")
        with pytest.raises(CatalogError):
            catalog.remove_item("ghost")

    def test_remove_item(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"))
        catalog.remove_item("a")
        assert "a" not in catalog

    def test_search_matches_keyword_and_respects_stock(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a", terms={"novel": 1.0}), stock=1)
        catalog.list_item(make_item("b", terms={"novel": 1.0}), stock=0)
        in_stock = catalog.search("novel")
        assert [listing.item.item_id for listing in in_stock] == ["a"]
        everything = catalog.search("novel", in_stock_only=False)
        assert len(everything) == 2

    def test_in_category(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a", category="books"), stock=1)
        catalog.list_item(make_item("b", category="fashion", terms={"shirt": 1.0}), stock=1)
        assert [l.item.item_id for l in catalog.in_category("books")] == ["a"]

    def test_sell_decrements_stock_and_counts(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=2)
        catalog.sell("a")
        assert catalog.listing("a").stock == 1
        assert catalog.listing("a").sold == 1
        assert catalog.total_sold() == 1

    def test_sell_out_of_stock_rejected(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=1)
        catalog.sell("a")
        with pytest.raises(TransactionError):
            catalog.sell("a")

    def test_sell_invalid_quantity(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=5)
        with pytest.raises(TransactionError):
            catalog.sell("a", quantity=0)
        with pytest.raises(TransactionError):
            catalog.sell("a", quantity=10)

    def test_restock(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=1)
        catalog.restock("a", 4)
        assert catalog.listing("a").stock == 5
        with pytest.raises(CatalogError):
            catalog.restock("a", 0)

    def test_view_is_read_only_snapshot(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=1)
        view = catalog.view()
        assert "a" in view
        catalog.list_item(make_item("b", terms={"x": 0.1}), stock=1)
        assert "b" not in view  # the view was taken before b was listed

    def test_total_stock(self):
        catalog = MerchandiseCatalog()
        catalog.list_item(make_item("a"), stock=2)
        catalog.list_item(make_item("b", terms={"x": 0.1}), stock=3)
        assert catalog.total_stock() == 5


class TestTransactionRecord:
    def test_create_assigns_unique_ids(self):
        first = TransactionRecord.create(
            "alice", "a", "marketplace-1", TransactionKind.DIRECT_PURCHASE,
            price=10.0, list_price=10.0, timestamp=1.0,
        )
        second = TransactionRecord.create(
            "alice", "a", "marketplace-1", TransactionKind.DIRECT_PURCHASE,
            price=10.0, list_price=10.0, timestamp=2.0,
        )
        assert first.transaction_id != second.transaction_id

    def test_negative_price_rejected(self):
        with pytest.raises(TransactionError):
            TransactionRecord.create(
                "alice", "a", "m", TransactionKind.DIRECT_PURCHASE,
                price=-1.0, list_price=10.0, timestamp=0.0,
            )

    def test_savings_computed(self):
        record = TransactionRecord.create(
            "alice", "a", "m", TransactionKind.NEGOTIATED_PURCHASE,
            price=8.0, list_price=10.0, timestamp=0.0,
        )
        assert record.savings == pytest.approx(2.0)

    def test_savings_never_negative(self):
        record = TransactionRecord.create(
            "alice", "a", "m", TransactionKind.AUCTION_WIN,
            price=12.0, list_price=10.0, timestamp=0.0,
        )
        assert record.savings == 0.0

    def test_to_dict_roundtrip_fields(self):
        record = TransactionRecord.create(
            "alice", "a", "m", TransactionKind.AUCTION_WIN,
            price=12.0, list_price=10.0, timestamp=5.0, seller="s",
        )
        payload = record.to_dict()
        assert payload["user_id"] == "alice"
        assert payload["kind"] == "auction-win"
        assert payload["timestamp"] == 5.0
