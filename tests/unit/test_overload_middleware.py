"""Overload-correct middleware: deadline-aware queue drops + admission classes.

Two behaviours keep the gateway honest once thousands of sessions overlap:

- A request whose queue wait already overran its deadline is shed *in
  queue* (``api.queue_dropped``): the server is never occupied, no
  transport time is spent, and the envelope is the same
  ``unavailable``/``deadline-exceeded`` the dispatch path would produce.
- Admission classes give operation groups their own weighted token
  buckets, so a burst of cheap reads sheds in the read class while writes
  keep drawing from their own — shedding that knows what it sheds.
"""

import pytest

from repro.errors import ECommerceError
from repro.api.envelope import ApiStatus
from repro.api.middleware import TokenBucket
from repro.api.requests import LoginRequest
from repro.ecommerce.platform_builder import PlatformConfig, build_platform


def _query_keyword(platform):
    return next(iter(platform.catalog_view())).terms[0][0]


class TestTokenBucketCost:
    def test_cost_weighted_acquire(self):
        bucket = TokenBucket(capacity=3.0, refill_per_ms=0.0001)
        assert bucket.try_acquire(0.0, cost=2.0)
        assert bucket.tokens == pytest.approx(1.0)
        assert not bucket.try_acquire(0.0, cost=2.0)  # 1 token < cost 2
        assert bucket.try_acquire(0.0)  # default cost 1 still fits
        assert not bucket.try_acquire(0.0)

    def test_default_cost_matches_legacy_behaviour(self):
        legacy = TokenBucket(capacity=2.0, refill_per_ms=0.5)
        weighted = TokenBucket(capacity=2.0, refill_per_ms=0.5)
        for now in (0.0, 1.0, 1.5, 4.0):
            assert legacy.try_acquire(now) == weighted.try_acquire(now, cost=1.0)
            assert legacy.tokens == weighted.tokens


class TestDeadlineAwareQueueDrops:
    def _gateway_with_blocked_server(self, deadline_ms=50.0, **overrides):
        platform = build_platform(
            seed=7,
            num_buyer_servers=3,
            replication_factor=1,
            api_deadline_ms=deadline_ms,
            **overrides,
        )
        gateway = platform.gateway()
        scheduler = gateway.sessions
        user = "queued-user"
        server = platform.buyer_server_for(user).name
        # Park the target server busy far past any deadline window.
        base = scheduler.horizon
        scheduler.queues.occupy(server, base, base + 10_000.0)
        return platform, gateway, scheduler, user, server

    def test_over_budget_queued_request_sheds_without_occupying(self):
        platform, gateway, scheduler, user, server = (
            self._gateway_with_blocked_server()
        )
        busy_before = scheduler.queues.busy_until(server)
        served_before = scheduler.queues.served(server)

        future = gateway.submit(LoginRequest(user))
        scheduler.run_until_idle()
        response = future.response

        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error.code == "deadline-exceeded"
        assert response.error.kind == "QueueDeadline"
        assert not response.error.retryable
        # The server was never occupied and never served the attempt: the
        # whole point of dropping in queue is that doomed work frees the
        # server for the next session instead of lengthening its backlog.
        assert scheduler.queues.busy_until(server) == busy_before
        assert scheduler.queues.served(server) == served_before
        assert platform.metrics.counter("api.queue_dropped").value == 1
        assert platform.metrics.counter("api.queue_dropped.login").value == 1

    def test_drop_spends_exactly_the_remaining_budget(self):
        _platform, gateway, scheduler, user, _server = (
            self._gateway_with_blocked_server(deadline_ms=75.0)
        )
        future = gateway.submit(LoginRequest(user))
        scheduler.run_until_idle()
        # The session waits out its budget — the client-perceived latency of
        # a timeout — and not a millisecond of the 10s backlog beyond it.
        assert future.finished_at_ms - future.submitted_at_ms == pytest.approx(75.0)

    def test_drop_keeps_dispatched_work_timers_clean(self):
        platform, gateway, scheduler, user, _server = (
            self._gateway_with_blocked_server()
        )
        gateway.submit(LoginRequest(user))
        scheduler.run_until_idle()
        # api.queue_wait_ms samples cover *dispatched* attempts only; the
        # deadline middleware's own counter stays at zero because the work
        # never ran long — it never ran at all.
        assert platform.metrics.timer("api.queue_wait_ms").summary()["count"] == 0
        assert platform.metrics.counter("api.deadline_exceeded").value == 0

    def test_within_budget_queue_wait_still_dispatches(self):
        platform = build_platform(
            seed=7, num_buyer_servers=3, replication_factor=1,
            api_deadline_ms=10_000.0,
        )
        gateway = platform.gateway()
        scheduler = gateway.sessions
        user = "queued-user"
        server = platform.buyer_server_for(user).name
        base = scheduler.horizon
        scheduler.queues.occupy(server, base, base + 40.0)

        future = gateway.submit(LoginRequest(user))
        scheduler.run_until_idle()

        assert future.response.ok
        assert platform.metrics.counter("api.queue_dropped").value == 0
        waits = platform.metrics.timer("api.queue_wait_ms").summary()
        assert waits["count"] == 1 and waits["max"] == pytest.approx(40.0)

    def test_no_deadline_means_no_drops(self):
        platform = build_platform(seed=7, num_buyer_servers=3,
                                  replication_factor=1)
        gateway = platform.gateway()
        scheduler = gateway.sessions
        user = "queued-user"
        server = platform.buyer_server_for(user).name
        base = scheduler.horizon
        scheduler.queues.occupy(server, base, base + 10_000.0)

        future = gateway.submit(LoginRequest(user))
        scheduler.run_until_idle()

        # Without a budget the request simply waits its (long) turn — the
        # drop branch is unreachable on the default path.
        assert future.response.ok
        assert platform.metrics.counter("api.queue_dropped").value == 0


class TestAdmissionClasses:
    READ_HEAVY = {
        "read": {"operations": ["query"], "capacity": 2,
                 "refill_per_ms": 0.000001},
        "write": {"operations": ["rate", "buy"], "capacity": 50,
                  "refill_per_ms": 1.0},
    }

    def _classed_platform(self, classes=None, **overrides):
        return build_platform(
            seed=7,
            num_buyer_servers=3,
            replication_factor=1,
            api_admission_classes=classes or self.READ_HEAVY,
            **overrides,
        )

    def test_writes_survive_a_burst_that_sheds_reads(self):
        platform = self._classed_platform()
        gateway = platform.gateway()
        keyword = _query_keyword(platform)
        assert gateway.login("shopper").ok  # unclassed, no default bucket
        first = gateway.query("shopper", keyword)
        assert first.ok
        hit = first.result.hits[0]

        reads = [gateway.query("shopper", keyword) for _ in range(5)]
        shed = [r for r in reads if r.status == ApiStatus.REJECTED]
        assert shed, "the read class should exhaust under the burst"

        writes = [gateway.rate("shopper", hit.item, 4.0) for _ in range(4)]
        assert all(w.ok for w in writes), [
            (w.status, w.error) for w in writes
        ]
        metrics = platform.metrics
        assert metrics.counter("api.admission.rejected.read").value == len(shed)
        assert metrics.counter("api.admission.rejected.write").value == 0
        assert metrics.counter("api.admission.rejected").value == len(shed)

    def test_class_rejection_names_the_class(self):
        platform = self._classed_platform()
        gateway = platform.gateway()
        keyword = _query_keyword(platform)
        gateway.login("shopper")
        responses = [gateway.query("shopper", keyword) for _ in range(4)]
        rejected = next(
            r for r in responses if r.status == ApiStatus.REJECTED
        )
        assert rejected.error.code == "admission-rejected"
        assert "'read'" in rejected.error.message

    def test_unclassed_operations_use_the_default_bucket(self):
        platform = self._classed_platform(
            api_admission_capacity=1, api_admission_refill_per_ms=0.000001,
        )
        gateway = platform.gateway()
        keyword = _query_keyword(platform)
        assert gateway.login("shopper").ok  # takes the single default token
        second = gateway.login("other-shopper")
        assert second.status == ApiStatus.REJECTED
        assert "'read'" not in second.error.message  # default-bucket message
        # The classed operation still has its own tokens.
        assert gateway.query("shopper", keyword).ok

    def test_class_cost_weights_the_bucket(self):
        platform = self._classed_platform(
            classes={
                "costly": {"operations": ["query"], "capacity": 3,
                           "refill_per_ms": 0.000001, "cost": 2.0},
            }
        )
        gateway = platform.gateway()
        keyword = _query_keyword(platform)
        gateway.login("shopper")
        first = gateway.query("shopper", keyword)  # 3 -> 1 token
        second = gateway.query("shopper", keyword)  # 1 < cost 2: shed
        assert first.ok
        assert second.status == ApiStatus.REJECTED

    def test_class_buckets_visible_on_gateway(self):
        platform = self._classed_platform()
        gateway = platform.gateway()
        assert set(gateway.admission_class_buckets) == {"read", "write"}
        assert gateway.admission_class_buckets["read"].capacity == 2.0


class TestConfigValidation:
    def _config(self, **overrides):
        config = PlatformConfig(**overrides)
        config.validate()
        return config

    def test_valid_classes_pass(self):
        self._config(api_admission_classes={
            "read": {"operations": ["query"], "capacity": 5,
                     "refill_per_ms": 0.1},
        })

    def test_duplicate_operation_across_classes_rejected(self):
        with pytest.raises(ECommerceError, match="claimed by both"):
            self._config(api_admission_classes={
                "a": {"operations": ["query"], "capacity": 5,
                      "refill_per_ms": 0.1},
                "b": {"operations": ["query"], "capacity": 5,
                      "refill_per_ms": 0.1},
            })

    def test_empty_operations_rejected(self):
        with pytest.raises(ECommerceError, match="names no operations"):
            self._config(api_admission_classes={
                "a": {"operations": [], "capacity": 5, "refill_per_ms": 0.1},
            })

    def test_nonpositive_capacity_refill_cost_rejected(self):
        for bad in (
            {"operations": ["query"], "capacity": 0, "refill_per_ms": 0.1},
            {"operations": ["query"], "capacity": 5, "refill_per_ms": 0},
            {"operations": ["query"], "capacity": 5, "refill_per_ms": 0.1,
             "cost": 0},
        ):
            with pytest.raises(ECommerceError):
                self._config(api_admission_classes={"a": bad})

    def test_non_dict_spec_rejected(self):
        with pytest.raises(ECommerceError, match="must be a dict"):
            self._config(api_admission_classes={"a": ["query"]})

    def test_hedge_percentile_bounds(self):
        self._config(fleet_hedge_delay_percentile=0.95)
        self._config(fleet_hedge_delay_percentile=1.0)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ECommerceError, match="hedge_delay_percentile"):
                self._config(fleet_hedge_delay_percentile=bad)
