"""Unit tests for the synthetic workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.core.items import ItemCatalogView
from repro.core.ratings import InteractionKind
from repro.workload.consumers import ConsumerPopulation
from repro.workload.generator import InteractionGenerator
from repro.workload.products import PRICE_RANGES, TAXONOMY, ProductGenerator


class TestProductGenerator:
    def test_generates_requested_count_with_unique_ids(self):
        items = ProductGenerator(seed=1).generate(50, seller="s1")
        assert len(items) == 50
        assert len({item.item_id for item in items}) == 50

    def test_items_conform_to_taxonomy(self):
        for item in ProductGenerator(seed=2).generate(40):
            assert item.category in TAXONOMY
            assert item.subcategory in TAXONOMY[item.category]
            pool = TAXONOMY[item.category][item.subcategory]
            for term, weight in item.terms:
                assert term in pool
                assert 0.0 < weight <= 1.0

    def test_prices_within_category_range(self):
        for item in ProductGenerator(seed=3).generate(40):
            low, high = PRICE_RANGES[item.category]
            assert low <= item.price <= high

    def test_deterministic_given_seed(self):
        first = ProductGenerator(seed=5).generate(10)
        second = ProductGenerator(seed=5).generate(10)
        assert [item.item_id for item in first] == [item.item_id for item in second]
        assert [item.price for item in first] == [item.price for item in second]

    def test_category_pinning(self):
        items = ProductGenerator(seed=4).generate(9, categories=["books"])
        assert all(item.category == "books" for item in items)

    def test_invalid_parameters(self):
        generator = ProductGenerator(seed=1)
        with pytest.raises(WorkloadError):
            generator.generate(0)
        with pytest.raises(WorkloadError):
            generator.generate(5, categories=["nonexistent"])
        with pytest.raises(WorkloadError):
            generator.subcategories("nonexistent")
        with pytest.raises(WorkloadError):
            ProductGenerator(taxonomy={})

    def test_cycles_over_allowed_categories(self):
        items = ProductGenerator(seed=6).generate(10, categories=["books", "fashion"])
        assert {item.category for item in items} == {"books", "fashion"}


class TestConsumerPopulation:
    def test_population_size_and_ids(self, population):
        assert len(population) == 20
        ids = [consumer.user_id for consumer in population]
        assert len(set(ids)) == 20

    def test_groups_share_taste_structure(self):
        population = ConsumerPopulation(12, groups=3, seed=2)
        for group in range(3):
            members = population.by_group(group)
            assert len(members) == 4
            top_sets = [tuple(member.top_categories(2)) for member in members]
            # Same prototype (plus small noise) -> same favourite categories.
            assert len(set(top_sets)) <= 2

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ConsumerPopulation(0)
        with pytest.raises(WorkloadError):
            ConsumerPopulation(5, groups=0)

    def test_unknown_consumer_lookup(self, population):
        with pytest.raises(WorkloadError):
            population.consumer("nobody")

    def test_utility_in_unit_interval(self, population, sample_items):
        for consumer in population:
            for item in sample_items[:20]:
                assert 0.0 <= consumer.utility(item) <= 1.0

    def test_relevance_ties_to_utility_threshold(self, population, sample_items):
        consumer = population.consumers()[0]
        for item in sample_items:
            assert consumer.finds_relevant(item) == (
                consumer.utility(item) >= consumer.relevance_threshold
            )

    def test_preferred_keyword_comes_from_taxonomy(self, population):
        rng = population.rng()
        keyword = population.consumers()[0].preferred_keyword(rng)
        all_terms = {
            term
            for subcategories in TAXONOMY.values()
            for pool in subcategories.values()
            for term in pool
        }
        assert keyword in all_terms or keyword in TAXONOMY

    def test_deterministic_given_seed(self):
        first = ConsumerPopulation(8, seed=9)
        second = ConsumerPopulation(8, seed=9)
        for left, right in zip(first, second):
            assert left.category_weights == right.category_weights
            assert left.favourite_subcategories == right.favourite_subcategories


class TestInteractionGenerator:
    def test_dataset_shape(self, dataset, population):
        assert len(dataset.train_events) == len(population) * 25
        assert set(dataset.test_relevance) == {c.user_id for c in population}
        assert dataset.duration_ms > 0

    def test_events_reference_catalog_items(self, dataset, catalog_view):
        for event in dataset.train_events[:200]:
            assert event.item.item_id in catalog_view

    def test_held_out_items_not_trained_on(self, dataset):
        for user_id, held_out in dataset.test_relevance.items():
            trained_items = {
                event.item.item_id
                for event in dataset.train_events
                if event.user_id == user_id
            }
            assert not trained_items & set(held_out)

    def test_build_profiles_covers_every_consumer(self, dataset, population):
        profiles = dataset.build_profiles()
        assert set(profiles) == {consumer.user_id for consumer in population}
        assert any(not profile.is_empty() for profile in profiles.values())

    def test_build_ratings_matches_events(self, dataset):
        ratings = dataset.build_ratings()
        assert ratings.interaction_count == len(dataset.train_events)

    def test_behaviour_mix_contains_purchases_and_queries(self, dataset):
        kinds = {event.kind for event in dataset.train_events}
        assert InteractionKind.BUY in kinds
        assert InteractionKind.QUERY in kinds

    def test_invalid_parameters(self, population, catalog_view):
        generator = InteractionGenerator(seed=1)
        with pytest.raises(WorkloadError):
            generator.generate(population, catalog_view, events_per_user=0)
        with pytest.raises(WorkloadError):
            generator.generate(population, catalog_view, exploration=1.5)
        with pytest.raises(WorkloadError):
            generator.generate(population, catalog_view, test_fraction=0.0)
        with pytest.raises(WorkloadError):
            generator.generate(population, ItemCatalogView([]))

    def test_deterministic_given_seed(self, population, catalog_view):
        first = InteractionGenerator(seed=3).generate(population, catalog_view, events_per_user=5)
        second = InteractionGenerator(seed=3).generate(population, catalog_view, events_per_user=5)
        assert [e.item.item_id for e in first.train_events] == [
            e.item.item_id for e in second.train_events
        ]
