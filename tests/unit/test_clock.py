"""Unit tests for the simulation clock and scheduler."""

import pytest

from repro.errors import ClockError
from repro.platform.clock import Scheduler, SessionClock, SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(10.5).now == 10.5

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimulationClock()
        assert clock.advance_to(12.0) == 12.0
        assert clock.now == 12.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimulationClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_backwards_rejected(self):
        clock = SimulationClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.999)

    def test_advance_by_accumulates(self):
        clock = SimulationClock()
        clock.advance_by(3.0)
        clock.advance_by(2.5)
        assert clock.now == pytest.approx(5.5)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock().advance_by(-0.1)


class TestScheduler:
    def test_call_after_executes_in_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.call_after(10, lambda: order.append("b"))
        scheduler.call_after(5, lambda: order.append("a"))
        scheduler.call_after(20, lambda: order.append("c"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        scheduler = Scheduler()
        seen = []
        scheduler.call_after(7.5, lambda: seen.append(scheduler.clock.now))
        scheduler.run_until_idle()
        assert seen == [7.5]

    def test_equal_timestamps_preserve_submission_order(self):
        scheduler = Scheduler()
        order = []
        for label in ("first", "second", "third"):
            scheduler.call_at(3.0, lambda label=label: order.append(label))
        scheduler.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            Scheduler().call_after(-1.0, lambda: None)

    def test_call_at_in_the_past_clamps_to_now(self):
        scheduler = Scheduler()
        scheduler.clock.advance_to(50.0)
        fired = []
        scheduler.call_at(10.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until_idle()
        assert fired == [50.0]

    def test_cancelled_callback_does_not_run(self):
        scheduler = Scheduler()
        fired = []
        entry = scheduler.call_after(5, lambda: fired.append("x"))
        entry.cancel()
        scheduler.run_until_idle()
        assert fired == []

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_run_until_only_runs_due_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(5, lambda: fired.append("early"))
        scheduler.call_after(50, lambda: fired.append("late"))
        executed = scheduler.run_until(10.0)
        assert executed == 1
        assert fired == ["early"]
        assert scheduler.clock.now == 10.0
        scheduler.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_even_without_events(self):
        scheduler = Scheduler()
        scheduler.run_until(25.0)
        assert scheduler.clock.now == 25.0

    def test_executed_counter(self):
        scheduler = Scheduler()
        for _ in range(4):
            scheduler.call_after(1, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.executed == 4

    def test_event_loop_guard(self):
        scheduler = Scheduler()

        def reschedule():
            scheduler.call_after(1, reschedule)

        scheduler.call_after(1, reschedule)
        with pytest.raises(ClockError):
            scheduler.run_until_idle(max_events=100)

    def test_events_scheduled_during_run_are_processed(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.call_after(5, lambda: fired.append("nested"))

        scheduler.call_after(1, first)
        scheduler.run_until_idle()
        assert fired == ["first", "nested"]


class TestRecurringCallbacks:
    def test_call_every_fires_on_a_fixed_cadence(self):
        scheduler = Scheduler()
        fired = []
        task = scheduler.call_every(10.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]
        assert task.fires == 3
        assert task.next_at == 40.0

    def test_call_every_first_delay_override(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_every(10.0, lambda: fired.append(scheduler.clock.now), first_delay=2.0)
        scheduler.run_until(25.0)
        assert fired == [2.0, 12.0, 22.0]

    def test_cancel_stops_the_recurrence(self):
        scheduler = Scheduler()
        fired = []
        task = scheduler.call_every(5.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until(12.0)
        task.cancel()
        scheduler.run_until(40.0)
        assert fired == [5.0, 10.0]
        assert task.next_at is None
        assert scheduler.run_until_idle() == 0

    def test_cancel_from_inside_the_callback(self):
        scheduler = Scheduler()
        fired = []

        def fire():
            fired.append(scheduler.clock.now)
            if len(fired) == 2:
                task.cancel()

        task = scheduler.call_every(5.0, fire)
        scheduler.run_until_idle()
        assert fired == [5.0, 10.0]

    def test_non_positive_interval_rejected(self):
        scheduler = Scheduler()
        with pytest.raises(ClockError):
            scheduler.call_every(0.0, lambda: None)
        with pytest.raises(ClockError):
            scheduler.call_every(-3.0, lambda: None)

    def test_cadence_survives_a_callback_exception(self):
        """The recurrence re-arms before invoking, so a raising callback that
        the driver catches does not silently stop future firings."""
        scheduler = Scheduler()
        fired = []

        def fire():
            fired.append(scheduler.clock.now)
            if len(fired) == 1:
                raise RuntimeError("transient")

        scheduler.call_every(5.0, fire)
        with pytest.raises(RuntimeError):
            scheduler.run_until(30.0)
        scheduler.run_until(30.0)
        assert fired == [5.0, 10.0, 15.0, 20.0, 25.0, 30.0]

    def test_overtaken_callback_runs_late_at_current_time(self):
        """Simulated time also advances outside the scheduler (the transport
        drives the clock directly); a callback whose timestamp was overtaken
        runs at the current time instead of crashing the queue."""
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(5.0, lambda: fired.append(scheduler.clock.now))
        scheduler.clock.advance_to(50.0)
        scheduler.run_until(50.0)
        assert fired == [50.0]

    def test_fires_counts_only_completed_callbacks(self):
        """Regression: ``fires`` used to increment before the callback ran,
        so a raising callback was reported as a completed firing."""
        scheduler = Scheduler()

        def explode():
            raise RuntimeError("boom")

        task = scheduler.call_every(5.0, explode)
        with pytest.raises(RuntimeError):
            scheduler.run_until(5.0)
        assert task.fires == 0
        # The recurrence still re-armed (cadence survives), and a callback
        # that completes is counted.
        healthy = []
        task.cancel()
        counted = scheduler.call_every(5.0, lambda: healthy.append(1))
        scheduler.run_until(20.0)
        assert counted.fires == len(healthy) > 0


class TestSchedulerPending:
    def test_pending_excludes_cancelled_entries(self):
        """Regression: cancelled entries linger in the heap (lazy deletion)
        but must not count as pending work — the concurrent load scheduler
        reads ``pending`` as a backlog gauge."""
        scheduler = Scheduler()
        keep = scheduler.call_after(10.0, lambda: None)
        doomed = scheduler.call_after(20.0, lambda: None)
        assert scheduler.pending == 2
        doomed.cancel()
        assert scheduler.pending == 1
        keep.cancel()
        assert scheduler.pending == 0

    def test_pending_excludes_cancelled_recurring_entry(self):
        scheduler = Scheduler()
        task = scheduler.call_every(5.0, lambda: None)
        assert scheduler.pending == 1
        task.cancel()
        assert scheduler.pending == 0


class TestSessionClock:
    def test_anchors_at_base_now_by_default(self):
        base = SimulationClock(100.0)
        session = SessionClock(base)
        assert session.now == 100.0
        assert session.offset == 0.0

    def test_anchors_at_start_at(self):
        base = SimulationClock(100.0)
        session = SessionClock(base, start_at=40.0)
        assert session.now == 40.0
        assert session.offset == -60.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SessionClock(SimulationClock(), start_at=-1.0)

    def test_base_advance_moves_all_sessions_in_lockstep(self):
        base = SimulationClock(10.0)
        early = SessionClock(base, start_at=0.0)
        late = SessionClock(base, start_at=25.0)
        base.advance_by(5.0)
        assert early.now == 5.0
        assert late.now == 30.0

    def test_advance_by_moves_only_this_session(self):
        base = SimulationClock(10.0)
        a = SessionClock(base)
        b = SessionClock(base)
        a.advance_by(7.0)
        assert a.now == 17.0
        assert b.now == 10.0
        assert base.now == 10.0

    def test_advance_to_and_backwards_guards(self):
        base = SimulationClock(10.0)
        session = SessionClock(base)
        session.advance_to(15.0)
        assert session.now == 15.0
        with pytest.raises(ClockError):
            session.advance_to(14.0)
        with pytest.raises(ClockError):
            session.advance_by(-0.1)
