"""Unit tests for the simulation clock and scheduler."""

import pytest

from repro.errors import ClockError
from repro.platform.clock import Scheduler, SimulationClock


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimulationClock(10.5).now == 10.5

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = SimulationClock()
        assert clock.advance_to(12.0) == 12.0
        assert clock.now == 12.0

    def test_advance_to_same_time_is_noop(self):
        clock = SimulationClock(5.0)
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_advance_backwards_rejected(self):
        clock = SimulationClock(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.999)

    def test_advance_by_accumulates(self):
        clock = SimulationClock()
        clock.advance_by(3.0)
        clock.advance_by(2.5)
        assert clock.now == pytest.approx(5.5)

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock().advance_by(-0.1)


class TestScheduler:
    def test_call_after_executes_in_order(self):
        scheduler = Scheduler()
        order = []
        scheduler.call_after(10, lambda: order.append("b"))
        scheduler.call_after(5, lambda: order.append("a"))
        scheduler.call_after(20, lambda: order.append("c"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        scheduler = Scheduler()
        seen = []
        scheduler.call_after(7.5, lambda: seen.append(scheduler.clock.now))
        scheduler.run_until_idle()
        assert seen == [7.5]

    def test_equal_timestamps_preserve_submission_order(self):
        scheduler = Scheduler()
        order = []
        for label in ("first", "second", "third"):
            scheduler.call_at(3.0, lambda label=label: order.append(label))
        scheduler.run_until_idle()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ClockError):
            Scheduler().call_after(-1.0, lambda: None)

    def test_call_at_in_the_past_clamps_to_now(self):
        scheduler = Scheduler()
        scheduler.clock.advance_to(50.0)
        fired = []
        scheduler.call_at(10.0, lambda: fired.append(scheduler.clock.now))
        scheduler.run_until_idle()
        assert fired == [50.0]

    def test_cancelled_callback_does_not_run(self):
        scheduler = Scheduler()
        fired = []
        entry = scheduler.call_after(5, lambda: fired.append("x"))
        entry.cancel()
        scheduler.run_until_idle()
        assert fired == []

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_run_until_only_runs_due_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_after(5, lambda: fired.append("early"))
        scheduler.call_after(50, lambda: fired.append("late"))
        executed = scheduler.run_until(10.0)
        assert executed == 1
        assert fired == ["early"]
        assert scheduler.clock.now == 10.0
        scheduler.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_even_without_events(self):
        scheduler = Scheduler()
        scheduler.run_until(25.0)
        assert scheduler.clock.now == 25.0

    def test_executed_counter(self):
        scheduler = Scheduler()
        for _ in range(4):
            scheduler.call_after(1, lambda: None)
        scheduler.run_until_idle()
        assert scheduler.executed == 4

    def test_event_loop_guard(self):
        scheduler = Scheduler()

        def reschedule():
            scheduler.call_after(1, reschedule)

        scheduler.call_after(1, reschedule)
        with pytest.raises(ClockError):
            scheduler.run_until_idle(max_events=100)

    def test_events_scheduled_during_run_are_processed(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.call_after(5, lambda: fired.append("nested"))

        scheduler.call_after(1, first)
        scheduler.run_until_idle()
        assert fired == ["first", "nested"]
