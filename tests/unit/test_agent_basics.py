"""Unit tests for agent lifecycle states, messages, serialization and security."""

import pytest

from repro.errors import AgentLifecycleError, AuthenticationError, SerializationError
from repro.agents.lifecycle import AgletInfo, AgletState, check_transition
from repro.agents.messages import Message, MessageKinds, Reply
from repro.agents.security import AuthenticationService
from repro.agents.serialization import capture_state, estimate_payload_bytes, restore_state


class TestLifecycle:
    @pytest.mark.parametrize(
        "current, target",
        [
            (AgletState.ACTIVE, AgletState.DEACTIVATED),
            (AgletState.ACTIVE, AgletState.IN_TRANSIT),
            (AgletState.ACTIVE, AgletState.DISPOSED),
            (AgletState.DEACTIVATED, AgletState.ACTIVE),
            (AgletState.IN_TRANSIT, AgletState.ACTIVE),
        ],
    )
    def test_legal_transitions(self, current, target):
        check_transition(current, target)

    @pytest.mark.parametrize(
        "current, target",
        [
            (AgletState.DEACTIVATED, AgletState.IN_TRANSIT),
            (AgletState.DISPOSED, AgletState.ACTIVE),
            (AgletState.DISPOSED, AgletState.DEACTIVATED),
            (AgletState.IN_TRANSIT, AgletState.DEACTIVATED),
        ],
    )
    def test_illegal_transitions_rejected(self, current, target):
        with pytest.raises(AgentLifecycleError):
            check_transition(current, target)

    def test_info_transition_updates_state(self):
        info = AgletInfo("a-1", "BRA", "alice", created_at=0.0)
        info.transition(AgletState.DEACTIVATED)
        assert info.state is AgletState.DEACTIVATED
        with pytest.raises(AgentLifecycleError):
            info.transition(AgletState.IN_TRANSIT)


class TestMessages:
    def test_correlation_ids_are_unique(self):
        first = Message("x")
        second = Message("x")
        assert first.correlation_id != second.correlation_id

    def test_argument_and_require(self):
        message = Message("buyer.query", {"keyword": "laptop"})
        assert message.argument("keyword") == "laptop"
        assert message.argument("missing", 7) == 7
        with pytest.raises(KeyError):
            message.require("missing")

    def test_reply_correlates_with_message(self):
        message = Message("buyer.query", {"keyword": "laptop"})
        reply = message.reply(results=[1, 2])
        assert reply.correlation_id == message.correlation_id
        assert reply.ok
        assert reply.value("results") == [1, 2]

    def test_failure_reply(self):
        reply = Reply.failure("buyer.query", "boom", correlation_id=9)
        assert not reply.ok
        assert reply.error == "boom"
        assert reply.correlation_id == 9

    def test_reply_require(self):
        reply = Reply("x", payload={"a": 1})
        assert reply.require("a") == 1
        with pytest.raises(KeyError):
            reply.require("b")

    def test_message_kind_constants_are_distinct(self):
        kinds = [
            value
            for name, value in vars(MessageKinds).items()
            if not name.startswith("_") and isinstance(value, str)
        ]
        assert len(kinds) == len(set(kinds))


class _Dummy:
    """A stand-in agent carrying a mix of attribute types."""

    def __init__(self):
        self._context = object()   # runtime binding: must not be captured
        self._info = object()
        self._proxy = object()
        self.user_id = "alice"
        self.results = [{"item": "x", "price": 3.5}]
        self.counters = {"queries": 2}


class TestSerialization:
    def test_runtime_attributes_excluded(self):
        snapshot = capture_state(_Dummy())
        assert "_context" not in snapshot
        assert "_info" not in snapshot
        assert snapshot["user_id"] == "alice"

    def test_capture_is_a_deep_copy(self):
        agent = _Dummy()
        snapshot = capture_state(agent)
        agent.results[0]["price"] = 99.0
        assert snapshot["results"][0]["price"] == 3.5

    def test_restore_applies_values(self):
        agent = _Dummy()
        snapshot = capture_state(agent)
        fresh = _Dummy()
        fresh.user_id = "bob"
        restore_state(fresh, snapshot)
        assert fresh.user_id == "alice"
        assert fresh.results == agent.results

    def test_restore_rejects_non_dict(self):
        with pytest.raises(SerializationError):
            restore_state(_Dummy(), "not-a-dict")

    def test_payload_estimate_grows_with_content(self):
        small = estimate_payload_bytes({"a": 1})
        large = estimate_payload_bytes({"a": "x" * 10_000})
        assert large > small > 0

    def test_snapshot_reports_payload_bytes(self):
        snapshot = capture_state(_Dummy())
        assert snapshot.payload_bytes > 0


class TestAuthenticationService:
    def test_issue_and_verify(self):
        service = AuthenticationService("buyer-server")
        credential = service.issue("MBA-1", owner="alice", now=100.0)
        assert service.verify(credential, now=200.0)
        assert service.verified_count == 1

    def test_expired_credential_rejected(self):
        service = AuthenticationService("buyer-server", credential_lifetime_ms=50.0)
        credential = service.issue("MBA-1", owner="alice", now=0.0)
        with pytest.raises(AuthenticationError):
            service.verify(credential, now=100.0)
        assert service.rejected_count == 1

    def test_tampered_credential_rejected(self):
        service = AuthenticationService("buyer-server")
        credential = service.issue("MBA-1", owner="alice", now=0.0)
        forged = type(credential)(
            agent_id=credential.agent_id,
            owner="mallory",
            issued_at=credential.issued_at,
            expires_at=credential.expires_at,
            session_key=credential.session_key,
            signature=credential.signature,
        )
        with pytest.raises(AuthenticationError):
            service.verify(forged, now=1.0)

    def test_revoked_credential_rejected(self):
        service = AuthenticationService("buyer-server")
        credential = service.issue("MBA-1", owner="alice", now=0.0)
        service.revoke("MBA-1")
        with pytest.raises(AuthenticationError):
            service.verify(credential, now=1.0)

    def test_credential_from_other_server_rejected(self):
        ours = AuthenticationService("buyer-server")
        theirs = AuthenticationService("rogue-server")
        credential = theirs.issue("MBA-1", owner="alice", now=0.0)
        with pytest.raises(AuthenticationError):
            ours.verify(credential, now=1.0)

    def test_challenge_response_roundtrip(self):
        service = AuthenticationService("buyer-server")
        credential = service.issue("MBA-1", owner="alice", now=0.0)
        challenge = service.challenge()
        response = AuthenticationService.respond(credential, challenge)
        assert service.verify_response(credential, challenge, response, now=1.0)

    def test_wrong_response_rejected(self):
        service = AuthenticationService("buyer-server")
        credential = service.issue("MBA-1", owner="alice", now=0.0)
        challenge = service.challenge()
        with pytest.raises(AuthenticationError):
            service.verify_response(credential, challenge, "bogus", now=1.0)

    def test_challenges_are_unique(self):
        service = AuthenticationService("buyer-server")
        assert service.challenge() != service.challenge()
