"""Unit tests for the auction house and the negotiation service."""

import pytest

from repro.errors import AuctionError, NegotiationError
from repro.ecommerce.auction import Auction, AuctionHouse, Bid
from repro.ecommerce.negotiation import NegotiationService

from tests.conftest import make_item

ITEM = make_item("lot-1", price=100.0)


class TestBid:
    def test_positive_amount_required(self):
        with pytest.raises(AuctionError):
            Bid(bidder="x", amount=0.0, round_number=1)


class TestAuction:
    def test_bids_must_beat_current_price_plus_increment(self):
        auction = Auction(ITEM, reserve_price=70.0, starting_price=50.0, increment=5.0)
        auction.place_bid("a", 50.0)
        with pytest.raises(AuctionError):
            auction.place_bid("b", 52.0)
        auction.place_bid("b", 55.0)
        assert auction.current_price == 55.0

    def test_first_bid_must_meet_starting_price(self):
        auction = Auction(ITEM, reserve_price=70.0, starting_price=50.0)
        with pytest.raises(AuctionError):
            auction.place_bid("a", 40.0)

    def test_close_determines_winner_when_reserve_met(self):
        auction = Auction(ITEM, reserve_price=60.0, starting_price=50.0, increment=5.0)
        auction.place_bid("a", 50.0)
        auction.place_bid("b", 65.0)
        result = auction.close()
        assert result.winner == "b"
        assert result.winning_bid == 65.0
        assert result.reserve_met

    def test_no_winner_when_reserve_not_met(self):
        auction = Auction(ITEM, reserve_price=90.0, starting_price=50.0)
        auction.place_bid("a", 50.0)
        result = auction.close()
        assert result.winner is None
        assert not result.reserve_met

    def test_no_bids_at_all(self):
        auction = Auction(ITEM, reserve_price=50.0)
        result = auction.close()
        assert result.winner is None
        assert result.winning_bid == 0.0
        assert result.bids == 0

    def test_closed_auction_rejects_bids_and_double_close(self):
        auction = Auction(ITEM, reserve_price=50.0, starting_price=40.0)
        auction.close()
        with pytest.raises(AuctionError):
            auction.place_bid("a", 60.0)
        with pytest.raises(AuctionError):
            auction.close()

    def test_negative_reserve_rejected(self):
        with pytest.raises(AuctionError):
            Auction(ITEM, reserve_price=-1.0)


class TestAuctionHouse:
    def test_generous_consumer_wins(self):
        house = AuctionHouse("marketplace-1", seed=3, competitor_count=3)
        result = house.run_auction(ITEM, bidder="alice", max_price=200.0)
        assert result.winner == "alice"
        assert result.winning_bid <= 200.0
        assert result.reserve_met
        assert house.completed == [result]

    def test_lowball_consumer_loses(self):
        house = AuctionHouse("marketplace-1", seed=3, competitor_count=3)
        result = house.run_auction(ITEM, bidder="alice", max_price=55.0)
        assert result.winner != "alice"

    def test_no_competitors_means_cheap_win(self):
        house = AuctionHouse("marketplace-1", seed=3, competitor_count=0)
        result = house.run_auction(ITEM, bidder="alice", max_price=200.0, reserve_price=40.0)
        assert result.winner == "alice"
        assert result.winning_bid == pytest.approx(50.0)  # the starting price

    def test_invalid_parameters(self):
        house = AuctionHouse("marketplace-1")
        with pytest.raises(AuctionError):
            house.run_auction(ITEM, bidder="alice", max_price=0.0)
        with pytest.raises(AuctionError):
            AuctionHouse("m", competitor_count=-1)

    def test_deterministic_given_seed(self):
        first = AuctionHouse("m", seed=9).run_auction(ITEM, "alice", max_price=120.0)
        second = AuctionHouse("m", seed=9).run_auction(ITEM, "alice", max_price=120.0)
        assert first.winning_bid == second.winning_bid
        assert first.winner == second.winner

    def test_winning_bid_never_exceeds_consumer_maximum(self):
        for seed in range(6):
            house = AuctionHouse("m", seed=seed)
            result = house.run_auction(ITEM, bidder="alice", max_price=130.0)
            if result.winner == "alice":
                assert result.winning_bid <= 130.0


class TestNegotiationService:
    def test_agreement_within_zone_of_possible_agreement(self):
        service = NegotiationService("marketplace-1")
        outcome = service.negotiate(ITEM, buyer_max=90.0, seller_reserve=70.0)
        assert outcome.agreed
        assert 70.0 <= outcome.final_price <= 90.0
        assert outcome.rounds >= 1
        assert service.completed == [outcome]

    def test_no_agreement_when_no_overlap(self):
        service = NegotiationService("marketplace-1", max_rounds=6)
        outcome = service.negotiate(ITEM, buyer_max=50.0, seller_reserve=80.0)
        assert not outcome.agreed
        assert outcome.final_price == 0.0

    def test_generous_buyer_settles_quickly(self):
        service = NegotiationService("marketplace-1")
        outcome = service.negotiate(ITEM, buyer_max=150.0, seller_reserve=60.0)
        assert outcome.agreed
        assert outcome.rounds <= 2

    def test_transcript_alternates_parties(self):
        service = NegotiationService("marketplace-1")
        outcome = service.negotiate(ITEM, buyer_max=95.0, seller_reserve=75.0)
        parties = [offer.party for offer in outcome.transcript]
        assert parties[0] == "buyer"
        assert "seller" in parties

    def test_parameter_validation(self):
        service = NegotiationService("marketplace-1")
        with pytest.raises(NegotiationError):
            service.negotiate(ITEM, buyer_max=0.0, seller_reserve=10.0)
        with pytest.raises(NegotiationError):
            service.negotiate(ITEM, buyer_max=50.0, seller_reserve=-1.0)
        with pytest.raises(NegotiationError):
            service.negotiate(ITEM, buyer_max=50.0, seller_reserve=10.0, buyer_concession=0.0)
        with pytest.raises(NegotiationError):
            NegotiationService("m", max_rounds=0)

    def test_final_price_respects_both_limits(self):
        service = NegotiationService("marketplace-1")
        for buyer_max, reserve in [(85.0, 70.0), (120.0, 90.0), (75.0, 72.0)]:
            outcome = service.negotiate(ITEM, buyer_max=buyer_max, seller_reserve=reserve)
            if outcome.agreed:
                assert reserve <= outcome.final_price <= max(buyer_max, ITEM.price)
