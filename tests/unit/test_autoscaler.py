"""Unit tests for the autoscaling control loop (PR 9).

The :class:`~repro.ecommerce.elasticity.FleetAutoscaler` reads the
per-server utilization/backlog gauges and the admission-rejection counter;
these tests drive it by setting those signals directly — no concurrent
traffic needed — so every branch of the decision logic is pinned in
isolation.  The scenario-level behaviour (gauges published by a real
driver) lives in ``tests/integration/test_elastic_fleet.py``.
"""

import pytest

from repro.ecommerce import (
    AutoscalerDecision,
    AutoscalerPolicy,
    FleetAutoscaler,
    build_platform,
)
from repro.errors import ECommerceError


def make_platform(**overrides):
    defaults = dict(num_buyer_servers=3, replication_factor=1, seed=7)
    defaults.update(overrides)
    return build_platform(**defaults)


def set_pressure(platform, utilization, backlog_ms=0.0, servers=None):
    for server in servers or platform.buyer_servers:
        platform.metrics.gauge(f"api.server.{server.name}.utilization").set(
            utilization
        )
        platform.metrics.gauge(f"api.server.{server.name}.backlog_ms").set(
            backlog_ms
        )


class TestPolicyValidation:
    def test_defaults_validate(self):
        AutoscalerPolicy().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scale_out_utilization": 0.0},
            {"scale_out_utilization": 1.5},
            {"scale_in_utilization": -0.1},
            {"scale_in_utilization": 0.9},  # >= scale_out_utilization
            {"scale_out_backlog_ms": 0.0},
            {"scale_out_rejections": -1},
            {"max_servers": 0},
            {"cooldown_ticks": -1},
        ],
    )
    def test_bad_policy_rejected(self, overrides):
        with pytest.raises(ECommerceError):
            AutoscalerPolicy(**overrides).validate()

    def test_single_server_platform_rejected(self):
        platform = build_platform(num_buyer_servers=1, seed=7)
        with pytest.raises(ECommerceError):
            FleetAutoscaler(platform)


class TestSignals:
    def test_idle_fleet_reads_quiet(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        signals = scaler.signals()
        assert signals["max_utilization"] == 0.0
        assert signals["max_backlog_ms"] == 0.0
        assert signals["new_rejections"] == 0.0
        assert signals["active_servers"] == 3.0

    def test_rejections_are_a_delta_not_a_level(self):
        platform = make_platform()
        # Rejections recorded *before* the scaler exists are history, not
        # pressure: the baseline snapshot is taken at construction.
        platform.metrics.counter("api.admission.rejected").increment(100)
        scaler = FleetAutoscaler(platform)
        assert scaler.signals()["new_rejections"] == 0.0
        platform.metrics.counter("api.admission.rejected").increment(7)
        assert scaler.signals()["new_rejections"] == 7.0
        # tick() consumes the delta; the next tick starts fresh.
        scaler.tick()
        assert scaler.signals()["new_rejections"] == 0.0

    def test_dead_server_drops_out_of_the_signal_pool(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        set_pressure(platform, 0.9)
        platform.failures.crash_host(platform.buyer_servers[1].name)
        assert scaler.signals()["active_servers"] == 2.0


class TestDecisions:
    def test_hold_within_band(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        set_pressure(platform, 0.5)
        decision = scaler.tick()
        assert decision.action == "hold"
        assert decision.reason == "load within band"
        assert len(platform.fleet.servers) == 3

    def test_utilization_breach_scales_out(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        set_pressure(platform, 0.9)
        decision = scaler.tick()
        assert decision.action == "scale-out"
        assert decision.server == "buyer-agent-server-4"
        assert len(scaler.active_servers()) == 4
        # The newcomer got real load: it owns at least one shard.
        newcomer = platform.buyer_servers[-1]
        assert platform.fleet.shards_of(newcomer)

    def test_backlog_breach_scales_out(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        set_pressure(platform, 0.1, backlog_ms=900.0)
        assert scaler.tick().action == "scale-out"

    def test_rejection_burst_scales_out(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        platform.metrics.counter("api.admission.rejected").increment(50)
        assert scaler.tick().action == "scale-out"

    def test_single_shard_owner_splits_multi_shard_owner_hands_over(self):
        platform = make_platform()
        fleet = platform.fleet
        scaler = FleetAutoscaler(platform)
        # Every founding server owns exactly one shard: the first scale-out
        # must split the hot shard (no whole shard to spare).
        set_pressure(platform, 0.9)
        decision = scaler.tick()
        assert "split" in decision.reason
        assert fleet.splits == 1
        # Promote a second shard onto the first server so the hottest owner
        # has two; the next scale-out hands one over whole.
        newcomer = platform.buyer_servers[-1]
        set_pressure(platform, 0.0)
        set_pressure(platform, 0.95, servers=[platform.buyer_servers[0]])
        child = fleet.shard_map.shards_of(newcomer.name)[0]
        fleet.transfer_shard(child, platform.buyer_servers[0])
        decision = scaler.tick()
        assert decision.action == "scale-out"
        assert "whole shard" in decision.reason
        assert fleet.splits == 1  # no new split

    def test_hold_at_max_servers(self):
        platform = make_platform()
        policy = AutoscalerPolicy(max_servers=3)
        scaler = FleetAutoscaler(platform, policy)
        set_pressure(platform, 0.99)
        decision = scaler.tick()
        assert decision.action == "hold"
        assert decision.reason == "overloaded but at max_servers"
        assert len(scaler.active_servers()) == 3


class TestScaleIn:
    def test_quiet_fleet_drains_back_lifo_to_the_floor(self):
        platform = make_platform()
        policy = AutoscalerPolicy(cooldown_ticks=0)
        scaler = FleetAutoscaler(platform, policy)
        set_pressure(platform, 0.9)
        scaler.tick()
        scaler.tick()
        added = [d.server for d in scaler.decisions if d.action == "scale-out"]
        assert len(scaler.active_servers()) == 5
        set_pressure(platform, 0.05)
        removed = []
        for _ in range(4):
            decision = scaler.tick()
            if decision.action == "scale-in":
                removed.append(decision.server)
        # LIFO: the newest server leaves first, and the founding floor holds.
        assert removed == list(reversed(added))
        assert len(scaler.active_servers()) == scaler.floor == 3
        assert scaler.tick().action == "hold"

    def test_cooldown_delays_scale_in(self):
        platform = make_platform()
        policy = AutoscalerPolicy(cooldown_ticks=2)
        scaler = FleetAutoscaler(platform, policy)
        set_pressure(platform, 0.9)
        scaler.tick()
        set_pressure(platform, 0.05)
        actions = [scaler.tick().action for _ in range(3)]
        assert actions == ["hold", "hold", "scale-in"]

    def test_pressure_resets_the_cooldown(self):
        platform = make_platform()
        policy = AutoscalerPolicy(cooldown_ticks=1)
        scaler = FleetAutoscaler(platform, policy)
        set_pressure(platform, 0.9)
        scaler.tick()
        set_pressure(platform, 0.05)
        assert scaler.tick().action == "hold"  # quiet 1/2
        set_pressure(platform, 0.9)
        scaler.tick()  # overload resets the quiet streak
        set_pressure(platform, 0.05)
        assert scaler.tick().action == "hold"  # back to quiet 1/2

    def test_never_removes_founding_servers(self):
        platform = make_platform()
        policy = AutoscalerPolicy(cooldown_ticks=0)
        scaler = FleetAutoscaler(platform, policy)
        set_pressure(platform, 0.05)
        for _ in range(5):
            assert scaler.tick().action == "hold"
        assert len(platform.fleet.servers) == 3

    def test_split_child_returns_to_its_parents_owner(self):
        platform = make_platform()
        fleet = platform.fleet
        policy = AutoscalerPolicy(cooldown_ticks=0)
        scaler = FleetAutoscaler(platform, policy)
        gateway = platform.gateway()
        for index in range(30):
            gateway.register(f"user-{index}")
        set_pressure(platform, 0.9)
        decision = scaler.tick()
        child = decision.detail["child"]
        parent = fleet.shard_map.parent_of(child)
        set_pressure(platform, 0.05)
        decision = scaler.tick()
        assert decision.action == "scale-in"
        # The child shard survives (lineage never rewinds) but is owned by
        # the parent shard's owner again.
        assert fleet.shard_map.owner_of(child) == fleet.shard_map.owner_of(parent)


class TestBookkeeping:
    def test_every_tick_is_recorded(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        set_pressure(platform, 0.5)
        scaler.tick()
        set_pressure(platform, 0.9)
        scaler.tick()
        assert [d.action for d in scaler.decisions] == ["hold", "scale-out"]
        assert platform.event_log.count("autoscaler.decision") == 2
        assert platform.metrics.counter("autoscaler.hold").value == 1
        assert platform.metrics.counter("autoscaler.scale-out").value == 1

    def test_decision_as_dict_shape(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        payload = scaler.tick().as_dict()
        assert payload["action"] == "hold"
        assert set(payload) == {"at_ms", "action", "reason", "signals", "epoch"}
        set_pressure(platform, 0.9)
        payload = scaler.tick().as_dict()
        assert payload["server"] == "buyer-agent-server-4"
        assert "detail" in payload

    def test_scheduled_loop_ticks_with_simulated_time(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        task = scaler.start(500.0)
        platform.scheduler.run_until(platform.now + 1600.0)
        assert len(scaler.decisions) == 3
        scaler.stop()
        assert task.cancelled
        platform.scheduler.run_until(platform.now + 1600.0)
        assert len(scaler.decisions) == 3

    def test_start_twice_and_bad_interval_rejected(self):
        platform = make_platform()
        scaler = FleetAutoscaler(platform)
        with pytest.raises(ECommerceError):
            scaler.start(0.0)
        scaler.start(100.0)
        with pytest.raises(ECommerceError):
            scaler.start(100.0)
        scaler.stop()
        scaler.start(100.0)  # restart after stop is fine
        scaler.stop()

    def test_floor_honours_min_servers(self):
        platform = make_platform()
        policy = AutoscalerPolicy(min_servers=5)
        scaler = FleetAutoscaler(platform, policy)
        assert scaler.floor == 5
