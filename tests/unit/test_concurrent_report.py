"""Regression tests for concurrent-run reporting correctness.

Each class pins one of the reporting bugs fixed alongside the overload
work: cross-run ``queue_wait_ms`` contamination, shed requests counted as
``completed``, a "cumulative" histogram that only incremented one bucket,
and the new per-server occupancy section.  Every test here fails on the
old code.
"""

import pytest

from repro.workload.concurrent import (
    ConcurrentDriver,
    LATENCY_HISTOGRAM_BOUNDS_MS,
    latency_histogram,
)
from repro.workload.consumers import ConsumerPopulation
from repro.ecommerce.platform_builder import build_platform


def _driver(platform_overrides=None, population=80, seed=5):
    overrides = {
        "seed": 7,
        "num_buyer_servers": 3,
        "replication_factor": 1,
    }
    overrides.update(platform_overrides or {})
    platform = build_platform(**overrides)
    pool = ConsumerPopulation(population, seed=overrides["seed"])
    return platform, ConcurrentDriver(platform, pool, seed=seed)


class TestLatencyHistogram:
    def test_buckets_are_truly_cumulative(self):
        """Regression: each sample used to land in exactly one bucket, so
        the claimed Prometheus-cumulative counts were actually a density."""
        samples = [0.5, 1.5, 7.0, 7.0, 30.0, 99_999.0]
        buckets = latency_histogram(samples)
        counts = [bucket["count"] for bucket in buckets]
        assert counts == sorted(counts), "cumulative counts must be monotone"
        by_le = {bucket["le"]: bucket["count"] for bucket in buckets}
        assert by_le[1.0] == 1.0
        assert by_le[2.0] == 2.0  # includes the <=1ms sample too
        assert by_le[10.0] == 4.0
        assert by_le[50.0] == 5.0
        assert by_le[-1.0] == float(len(samples))  # +Inf holds the total

    def test_overflow_bucket_always_totals(self):
        assert latency_histogram([])[-1]["count"] == 0.0
        huge = [bound * 10 for bound in LATENCY_HISTOGRAM_BOUNDS_MS]
        buckets = latency_histogram([max(huge)])
        assert buckets[-1]["count"] == 1.0
        assert all(b["count"] == 0.0 for b in buckets[:-1])


class TestBackToBackRuns:
    def test_queue_wait_samples_do_not_leak_between_runs(self):
        """Regression: ``queue_wait_ms`` summarised the *platform-lifetime*
        timer, so a second drive on the same platform reported the first
        drive's waits on top of its own."""
        platform, driver = _driver()
        first = driver.run(sessions=20, arrival_rate_per_ms=None,
                           think_time_ms=0.0)
        timer_after_first = len(
            platform.metrics.timer("api.queue_wait_ms").samples
        )
        second = driver.run(sessions=20, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        timer_after_second = len(
            platform.metrics.timer("api.queue_wait_ms").samples
        )
        assert first.queue_wait_ms["count"] == timer_after_first
        assert second.queue_wait_ms["count"] == (
            timer_after_second - timer_after_first
        )
        assert first.queue_wait_ms["count"] > 0
        assert second.queue_wait_ms["count"] > 0

    def test_server_stats_do_not_leak_between_runs(self):
        platform, driver = _driver()
        first = driver.run(sessions=20, arrival_rate_per_ms=None,
                           think_time_ms=0.0)
        second = driver.run(sessions=20, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        for report in (first, second):
            total_served = sum(s["served"] for s in report.servers.values())
            assert total_served == report.completed


class TestCompletedCounting:
    def test_shed_requests_are_not_completed(self):
        """Regression: ``completed`` used to count every resolved future,
        rejections included, so ``completed == requests`` even when the
        admission bucket turned half the load away."""
        _platform, driver = _driver(
            {"api_admission_capacity": 25,
             "api_admission_refill_per_ms": 0.000001},
        )
        report = driver.run(sessions=40, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        assert report.shed > 0, "burst against a tiny bucket must shed"
        assert report.completed == report.requests - report.shed
        assert report.completed < report.requests
        # The dict shape carries the same invariant.
        d = report.as_dict()
        assert d["completed"] + d["shed"] == d["requests"]
        assert d["histogram"][-1]["count"] == float(d["completed"])

    def test_report_histogram_counts_dispatched_requests(self):
        _platform, driver = _driver()
        report = driver.run(sessions=15, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        assert report.shed == 0
        assert report.histogram[-1]["count"] == float(report.completed)
        counts = [bucket["count"] for bucket in report.histogram]
        assert counts == sorted(counts)


class TestServerOccupancy:
    def test_servers_section_and_gauges_populated(self):
        platform, driver = _driver()
        report = driver.run(sessions=30, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        names = {server.name for server in platform.buyer_servers}
        assert set(report.servers) == names
        assert any(s["busy_ms"] > 0 for s in report.servers.values())
        for name, stats in report.servers.items():
            assert 0.0 <= stats["utilization"] <= 1.0
            assert stats["busy_ms"] == pytest.approx(
                stats["utilization"] * report.simulated_duration_ms
            )
            gauges = platform.metrics
            assert gauges.gauge(f"api.server.{name}.utilization").value == (
                stats["utilization"]
            )
            assert gauges.gauge(f"api.server.{name}.backlog_ms").value == (
                stats["queue_wait_ms"]
            )

    def test_queue_dropped_reported_under_deadline_pressure(self):
        _platform, driver = _driver(
            {"num_buyer_servers": 2, "api_deadline_ms": 40.0},
        )
        report = driver.run(sessions=60, arrival_rate_per_ms=None,
                            think_time_ms=0.0)
        assert report.queue_dropped > 0, (
            "a simultaneous burst against 2 servers with a 40ms budget "
            "must drop queued work"
        )
        assert report.as_dict()["queue_dropped"] == report.queue_dropped
        # Dropped requests completed (with unavailable), they were not shed.
        assert report.completed == report.requests - report.shed
