"""Unit coverage for :mod:`repro.adversarial.chaos`.

A chaos schedule is only useful if it is boringly deterministic: same
seed, same outage windows, byte for byte — and every window it emits
must leave room for the settle gap the no-lost-transaction invariant
depends on.  These tests pin the generator, its validation and the
lowering of high-level outages into :class:`FailurePlan` actions.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import WorkloadError
from repro.adversarial.chaos import (
    ChaosEvent,
    ChaosSchedule,
    FAULT_KINDS,
    REPAIR_OF,
)

HOSTS = ["host-a", "host-b", "host-c"]


def _generate(seed=0, **kwargs):
    defaults = dict(
        hosts=HOSTS,
        start_ms=0.0,
        horizon_ms=20_000.0,
        seed=seed,
        max_outages=4,
        mean_gap_ms=2_000.0,
        mean_outage_ms=1_500.0,
        settle_ms=1_000.0,
    )
    defaults.update(kwargs)
    return ChaosSchedule.generate(**defaults)


class TestDeterminism:
    def test_same_seed_produces_identical_schedules(self):
        assert _generate(seed=7).as_dicts() == _generate(seed=7).as_dicts()

    def test_different_seeds_diverge(self):
        streams = {
            json.dumps(_generate(seed=s).as_dicts(), sort_keys=True)
            for s in range(4)
        }
        assert len(streams) > 1

    def test_events_sorted_by_time_then_host(self):
        schedule = _generate(seed=3)
        keys = [(e.at_ms, e.host, e.kind) for e in schedule.events]
        assert keys == sorted(keys)


class TestShape:
    def test_every_fault_has_its_repair(self):
        schedule = _generate(seed=5)
        assert schedule.outages > 0
        faults = [e for e in schedule.events if e.kind in FAULT_KINDS]
        repairs = [e for e in schedule.events if e.kind not in FAULT_KINDS]
        assert len(faults) == len(repairs) == schedule.outages
        by_host_kind = {(r.host, r.kind) for r in repairs}
        for fault in faults:
            assert (fault.host, REPAIR_OF[fault.kind]) in by_host_kind

    def test_windows_never_overrun_horizon_minus_settle(self):
        for seed in range(6):
            schedule = _generate(seed=seed, horizon_ms=8_000.0, settle_ms=2_000.0)
            for event in schedule.events:
                assert event.at_ms <= 8_000.0 - 2_000.0

    def test_victims_come_from_the_given_hosts(self):
        assert set(_generate(seed=2).victims()) <= set(HOSTS)

    def test_max_outages_caps_the_window_count(self):
        assert _generate(seed=1, max_outages=1).outages <= 1


class TestValidation:
    def test_no_hosts_is_refused(self):
        with pytest.raises(WorkloadError):
            _generate(hosts=[])

    def test_nonpositive_horizon_is_refused(self):
        with pytest.raises(WorkloadError):
            _generate(horizon_ms=0.0)

    def test_negative_outage_count_is_refused(self):
        with pytest.raises(WorkloadError):
            _generate(max_outages=-1)

    def test_nonpositive_durations_are_refused(self):
        with pytest.raises(WorkloadError):
            _generate(mean_gap_ms=0.0)
        with pytest.raises(WorkloadError):
            _generate(mean_outage_ms=-5.0)


class TestCompile:
    def test_crash_lowers_to_crash_and_recover_host(self):
        schedule = ChaosSchedule(
            events=[
                ChaosEvent(100.0, "crash", "host-a"),
                ChaosEvent(400.0, "recover", "host-a"),
            ],
            seed=0,
        )
        plan = schedule.compile(HOSTS)
        kinds = [(action.at_ms, action.kind, action.target) for action in plan.actions]
        assert (100.0, "crash-host", ("host-a",)) in kinds
        assert (400.0, "recover-host", ("host-a",)) in kinds

    def test_partition_lowers_to_symmetric_cuts_against_every_peer(self):
        schedule = ChaosSchedule(
            events=[
                ChaosEvent(100.0, "partition", "host-b"),
                ChaosEvent(300.0, "heal", "host-b"),
            ],
            seed=0,
        )
        plan = schedule.compile(HOSTS)
        cuts = {a.target for a in plan.actions if a.kind == "cut-link"}
        restores = {a.target for a in plan.actions if a.kind == "restore-link"}
        peers = {("host-b", "host-a"), ("host-b", "host-c")}
        assert cuts == peers
        assert restores == peers
        # The victim never cuts itself off from itself.
        assert ("host-b", "host-b") not in cuts
