"""Unit tests for the platform metrics primitives."""

import pytest

from repro.platform.metrics import Counter, Gauge, MetricsRegistry, Timer, summarize


class TestSummarize:
    def test_empty_samples(self):
        summary = summarize([])
        assert summary["count"] == 0.0
        assert summary["mean"] == 0.0

    def test_single_sample(self):
        summary = summarize([4.0])
        assert summary["p50"] == 4.0
        assert summary["p95"] == 4.0
        assert summary["min"] == summary["max"] == 4.0

    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary["count"] == 5.0
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["p50"] == pytest.approx(3.0)

    def test_percentiles_interpolate(self):
        summary = summarize([0.0, 10.0])
        assert summary["p50"] == pytest.approx(5.0)
        assert summary["p95"] == pytest.approx(9.5)


class TestCounter:
    def test_increments(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestGauge:
    def test_set_and_adjust(self):
        gauge = Gauge("sessions")
        gauge.set(5)
        gauge.adjust(-2)
        assert gauge.value == 3.0


class TestTimer:
    def test_records_and_summarizes(self):
        timer = Timer("latency")
        for value in (1.0, 2.0, 3.0):
            timer.record(value)
        assert timer.summary()["count"] == 3.0
        assert timer.summary()["mean"] == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timer("latency").record(-1.0)


class TestMetricsRegistry:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        registry.counter("hits").increment()
        registry.counter("hits").increment()
        assert registry.counters()["hits"] == 2.0

    def test_snapshot_contains_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.gauge("g").set(7)
        registry.timer("t").record(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 1.0
        assert snapshot["gauges"]["g"] == 7.0
        assert snapshot["timers"]["t"]["count"] == 1.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.reset()
        assert registry.counters() == {}
