"""Unit tests for the recommendation engines (CF, IF, popularity, cross-sell,
cold-start policy, the agent hybrid and the engine facade)."""

import pytest

from repro.errors import RecommendationError
from repro.core.cold_start import ColdStartPolicy, ColdStartStrategy
from repro.core.collaborative import CollaborativeFilteringRecommender
from repro.core.cross_sell import CrossSellRecommender
from repro.core.hybrid import AgentHybridRecommender
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.items import ItemCatalogView
from repro.core.popularity import PopularityRecommender, WeeklyHottestRecommender, WEEK_MS
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import Interaction, InteractionKind, RatingsStore
from repro.core.recommender import Recommendation, RecommendationEngine
from repro.core.similarity import SimilarityConfig

from tests.conftest import make_item


# ---------------------------------------------------------------------------
# Hand-crafted fixture world: two taste camps (books vs electronics)
# ---------------------------------------------------------------------------

BOOK_ITEMS = [
    make_item(f"book-{i}", category="books", subcategory="fiction",
              terms={"novel": 0.8, "mystery": 0.4}, price=20.0)
    for i in range(4)
]
TECH_ITEMS = [
    make_item(f"tech-{i}", category="electronics", subcategory="computers",
              terms={"laptop": 0.9, "ssd": 0.5}, price=500.0)
    for i in range(4)
]
ALL_ITEMS = BOOK_ITEMS + TECH_ITEMS


@pytest.fixture
def catalog():
    return ItemCatalogView(ALL_ITEMS)


@pytest.fixture
def ratings():
    """alice & bob love books; carol loves electronics; dave is new."""
    store = RatingsStore()
    interactions = [
        ("alice", "book-0", InteractionKind.BUY),
        ("alice", "book-1", InteractionKind.BUY),
        ("alice", "book-2", InteractionKind.QUERY),
        ("bob", "book-0", InteractionKind.BUY),
        ("bob", "book-1", InteractionKind.QUERY),
        ("bob", "book-3", InteractionKind.BUY),
        ("carol", "tech-0", InteractionKind.BUY),
        ("carol", "tech-1", InteractionKind.BUY),
        ("carol", "book-0", InteractionKind.QUERY),
    ]
    for index, (user, item, kind) in enumerate(interactions):
        store.add(Interaction(user, item, kind, timestamp=float(index)))
    return store


@pytest.fixture
def profiles(catalog):
    """Learned profiles matching the ratings fixture."""
    learner = ProfileLearner()
    built = {}
    histories = {
        "alice": ["book-0", "book-1", "book-2"],
        "bob": ["book-0", "book-1", "book-3"],
        "carol": ["tech-0", "tech-1"],
    }
    for user, item_ids in histories.items():
        events = [
            FeedbackEvent(user, catalog.get(item_id), InteractionKind.BUY)
            for item_id in item_ids
        ]
        built[user] = learner.build_profile(user, events)
    built["dave"] = Profile("dave")
    return built


def profile_of(profiles):
    return lambda user_id: profiles.get(user_id)


# ---------------------------------------------------------------------------
# Collaborative filtering
# ---------------------------------------------------------------------------


class TestCollaborativeFiltering:
    def test_invalid_construction(self, ratings):
        with pytest.raises(RecommendationError):
            CollaborativeFilteringRecommender(ratings, neighbours=0)
        with pytest.raises(RecommendationError):
            CollaborativeFilteringRecommender(ratings, similarity="euclidean")
        with pytest.raises(RecommendationError):
            CollaborativeFilteringRecommender(ratings, min_overlap=0)

    def test_neighbourhood_finds_like_minded_user(self, ratings):
        recommender = CollaborativeFilteringRecommender(ratings, similarity="cosine")
        neighbours = dict(recommender.neighbourhood("alice"))
        assert "bob" in neighbours
        assert neighbours["bob"] > neighbours.get("carol", 0.0)

    def test_recommends_what_neighbours_liked(self, ratings, catalog):
        recommender = CollaborativeFilteringRecommender(ratings, catalog, similarity="cosine")
        recommended = [rec.item_id for rec in recommender.recommend("alice", k=5)]
        assert "book-3" in recommended          # bob bought it, alice has not seen it
        assert "book-0" not in recommended      # already interacted

    def test_category_filter(self, ratings, catalog):
        recommender = CollaborativeFilteringRecommender(ratings, catalog, similarity="cosine")
        recommended = recommender.recommend("alice", k=5, category="electronics")
        assert all(catalog.get(rec.item_id).category == "electronics" for rec in recommended)

    def test_exclude_list_respected(self, ratings, catalog):
        recommender = CollaborativeFilteringRecommender(ratings, catalog, similarity="cosine")
        recommended = [rec.item_id for rec in recommender.recommend("alice", exclude=["book-3"])]
        assert "book-3" not in recommended

    def test_cold_user_gets_nothing(self, ratings, catalog):
        recommender = CollaborativeFilteringRecommender(ratings, catalog)
        assert recommender.recommend("dave") == []
        assert not recommender.can_recommend("dave")

    def test_predict_known_value_returned_as_is(self, ratings):
        recommender = CollaborativeFilteringRecommender(ratings, similarity="cosine")
        assert recommender.predict("alice", "book-0") == ratings.value("alice", "book-0")

    def test_predict_unknown_item_from_neighbours(self, ratings):
        recommender = CollaborativeFilteringRecommender(ratings, similarity="cosine")
        assert recommender.predict("alice", "book-3") > 0.0
        assert recommender.predict("alice", "tech-3") == 0.0


# ---------------------------------------------------------------------------
# Information filtering
# ---------------------------------------------------------------------------


class TestInformationFiltering:
    def test_scores_matching_category_items(self, catalog, profiles):
        recommender = InformationFilteringRecommender(catalog, profile_of(profiles))
        recommended = recommender.recommend("alice", k=5)
        assert recommended
        assert all(rec.item_id.startswith("book-") for rec in recommended)

    def test_no_profile_no_recommendations(self, catalog, profiles):
        recommender = InformationFilteringRecommender(catalog, profile_of(profiles))
        assert recommender.recommend("dave") == []
        assert not recommender.can_recommend("dave")
        assert recommender.recommend("stranger") == []

    def test_score_item_zero_for_unknown_category(self, catalog, profiles):
        recommender = InformationFilteringRecommender(catalog, profile_of(profiles))
        assert recommender.score_item(profiles["alice"], TECH_ITEMS[0]) == 0.0

    def test_subcategory_boost_increases_score(self, catalog, profiles):
        plain = InformationFilteringRecommender(
            catalog, profile_of(profiles), subcategory_boost=0.0
        )
        boosted = InformationFilteringRecommender(
            catalog, profile_of(profiles), subcategory_boost=0.5
        )
        item = BOOK_ITEMS[0]
        assert boosted.score_item(profiles["alice"], item) > plain.score_item(
            profiles["alice"], item
        )

    def test_negative_boost_rejected(self, catalog, profiles):
        with pytest.raises(RecommendationError):
            InformationFilteringRecommender(catalog, profile_of(profiles), category_boost=-1.0)

    def test_works_for_items_nobody_rated(self, profiles):
        # A brand-new item: no interactions anywhere, only content.
        fresh = make_item("book-new", terms={"novel": 0.9})
        catalog = ItemCatalogView(ALL_ITEMS + [fresh])
        recommender = InformationFilteringRecommender(catalog, profile_of(profiles))
        recommended = [rec.item_id for rec in recommender.recommend("alice", k=10)]
        assert "book-new" in recommended


# ---------------------------------------------------------------------------
# Popularity and weekly hottest
# ---------------------------------------------------------------------------


class TestPopularity:
    def test_ranks_by_purchase_count(self, ratings, catalog):
        recommender = PopularityRecommender(ratings, catalog)
        recommended = recommender.recommend("dave", k=3)
        assert recommended[0].item_id == "book-0"  # two purchases
        assert recommended[0].score == 2.0

    def test_category_filter_and_exclude(self, ratings, catalog):
        recommender = PopularityRecommender(ratings, catalog)
        tech_only = recommender.recommend("dave", k=5, category="electronics")
        assert {rec.item_id for rec in tech_only} == {"tech-0", "tech-1"}
        excluded = recommender.recommend("dave", k=5, exclude=["book-0"])
        assert all(rec.item_id != "book-0" for rec in excluded)

    def test_weekly_hottest_uses_window(self, catalog):
        store = RatingsStore()
        store.add(Interaction("u1", "book-0", InteractionKind.BUY, timestamp=0.0))
        store.add(Interaction("u2", "book-1", InteractionKind.BUY, timestamp=WEEK_MS * 3))
        now = WEEK_MS * 3 + 1000.0
        recommender = WeeklyHottestRecommender(store, now=lambda: now, catalog=catalog)
        recommended = [rec.item_id for rec in recommender.recommend("dave")]
        assert recommended == ["book-1"]

    def test_weekly_hottest_invalid_window(self, ratings):
        with pytest.raises(RecommendationError):
            WeeklyHottestRecommender(ratings, now=lambda: 0.0, window_ms=0.0)


# ---------------------------------------------------------------------------
# Cross-sell
# ---------------------------------------------------------------------------


class TestCrossSell:
    def test_recommends_co_purchased_items(self, ratings, catalog):
        recommender = CrossSellRecommender(ratings, catalog)
        # bob bought book-0 & book-1(no, queried) -> alice/bob co-bought book-0, book-1?
        recommended = [rec.item_id for rec in recommender.recommend("carol", k=5)]
        # carol bought tech items; nobody co-purchased with them.
        assert recommended == []
        alice_recs = [rec.item_id for rec in recommender.recommend("alice", k=5)]
        assert "book-3" in alice_recs  # bob bought book-0 and book-3 together

    def test_basket_api(self, ratings, catalog):
        recommender = CrossSellRecommender(ratings, catalog)
        recommended = recommender.recommend_for_basket(["book-0"], k=5)
        ids = [rec.item_id for rec in recommended]
        assert "book-0" not in ids
        assert "book-3" in ids or "book-1" in ids

    def test_min_support_filters_rare_pairs(self, ratings, catalog):
        strict = CrossSellRecommender(ratings, catalog, min_support=5)
        assert strict.recommend("alice", k=5) == []

    def test_can_recommend_requires_purchases(self, ratings, catalog):
        recommender = CrossSellRecommender(ratings, catalog)
        assert recommender.can_recommend("alice")
        assert not recommender.can_recommend("dave")


# ---------------------------------------------------------------------------
# Cold-start policy
# ---------------------------------------------------------------------------


class TestColdStartPolicy:
    def test_strategy_validation(self, ratings, catalog, profiles):
        policy = ColdStartPolicy(strategy=ColdStartStrategy.CONTENT)
        with pytest.raises(RecommendationError):
            policy.validate()
        policy = ColdStartPolicy(strategy=ColdStartStrategy.POPULARITY)
        with pytest.raises(RecommendationError):
            policy.validate()

    def test_none_strategy_returns_empty(self):
        policy = ColdStartPolicy(strategy=ColdStartStrategy.NONE)
        assert policy.chain() == []
        assert policy.recommend("dave", k=5) == []

    def test_chain_order_content_then_popularity(self, ratings, catalog, profiles):
        content = InformationFilteringRecommender(catalog, profile_of(profiles))
        popularity = PopularityRecommender(ratings, catalog)
        policy = ColdStartPolicy(
            strategy=ColdStartStrategy.CONTENT_THEN_POPULARITY,
            content_recommender=content,
            popularity_recommender=popularity,
        )
        assert policy.chain() == [content, popularity]

    def test_falls_back_to_popularity_for_new_user(self, ratings, catalog, profiles):
        policy = ColdStartPolicy(
            strategy=ColdStartStrategy.CONTENT_THEN_POPULARITY,
            content_recommender=InformationFilteringRecommender(catalog, profile_of(profiles)),
            popularity_recommender=PopularityRecommender(ratings, catalog),
        )
        recommended = policy.recommend("dave", k=3)
        assert recommended  # dave has no profile, so popularity fills the list
        assert recommended[0].source == "popularity"


# ---------------------------------------------------------------------------
# Agent hybrid (the paper's mechanism)
# ---------------------------------------------------------------------------


@pytest.fixture
def hybrid(ratings, catalog, profiles):
    return AgentHybridRecommender(
        ratings=ratings,
        catalog=catalog,
        profile_of=profile_of(profiles),
        all_profiles=lambda: list(profiles.values()),
        similarity_config=SimilarityConfig(top_k=5, min_similarity=0.01),
    )


class TestAgentHybrid:
    def test_invalid_weights_rejected(self, ratings, catalog, profiles):
        with pytest.raises(RecommendationError):
            AgentHybridRecommender(
                ratings, catalog, profile_of(profiles), lambda: [],
                collaborative_weight=-1.0,
            )
        with pytest.raises(RecommendationError):
            AgentHybridRecommender(
                ratings, catalog, profile_of(profiles), lambda: [],
                collaborative_weight=0.0, content_weight=0.0,
            )

    def test_similar_users_finds_the_other_book_lover(self, hybrid):
        neighbours = [user for user, _ in hybrid.similar_users("alice")]
        assert "bob" in neighbours

    def test_recommends_neighbour_favourites_first(self, hybrid):
        recommended = hybrid.recommend("alice", k=5)
        assert recommended
        ids = [rec.item_id for rec in recommended]
        assert "book-3" in ids
        assert all(rec.score <= 1.0 for rec in recommended)

    def test_cold_user_returns_empty(self, hybrid):
        assert hybrid.recommend("dave") == []
        assert not hybrid.can_recommend("dave")

    def test_scores_are_sorted_descending(self, hybrid):
        recommended = hybrid.recommend("alice", k=8)
        scores = [rec.score for rec in recommended]
        assert scores == sorted(scores, reverse=True)

    def test_recommend_for_query_ranks_live_results(self, hybrid, catalog):
        query_items = [catalog.get("book-2"), catalog.get("tech-3")]
        ranked = hybrid.recommend_for_query("alice", query_items, k=2, extra=0)
        assert ranked[0].item_id == "book-2"  # the book matches alice's tastes

    def test_recommend_for_query_appends_discoveries(self, hybrid, catalog):
        query_items = [catalog.get("book-2")]
        ranked = hybrid.recommend_for_query("alice", query_items, k=1, extra=3)
        assert len(ranked) > 1
        assert ranked[0].item_id == "book-2"
        assert all(rec.item_id != "book-2" for rec in ranked[1:])


# ---------------------------------------------------------------------------
# RecommendationEngine facade
# ---------------------------------------------------------------------------


class TestRecommendationEngine:
    def test_invalid_k_rejected(self, hybrid):
        engine = RecommendationEngine(hybrid)
        with pytest.raises(RecommendationError):
            engine.recommend("alice", k=0)

    def test_purchased_items_excluded(self, hybrid, ratings, catalog):
        engine = RecommendationEngine(hybrid, ratings=ratings)
        recommended = [rec.item_id for rec in engine.recommend("alice", k=10)]
        assert "book-0" not in recommended
        assert "book-1" not in recommended

    def test_fallback_fills_for_cold_users(self, hybrid, ratings, catalog):
        engine = RecommendationEngine(
            hybrid, ratings=ratings, fallback=PopularityRecommender(ratings, catalog)
        )
        recommended = engine.recommend("dave", k=3)
        assert recommended
        assert all(rec.source == "popularity" for rec in recommended)

    def test_output_is_deduplicated_and_bounded(self, hybrid, ratings, catalog):
        engine = RecommendationEngine(
            hybrid, ratings=ratings, fallback=PopularityRecommender(ratings, catalog)
        )
        recommended = engine.recommend("alice", k=3)
        assert len(recommended) <= 3
        assert len({rec.item_id for rec in recommended}) == len(recommended)

    def test_recommendation_requires_item_id(self):
        with pytest.raises(RecommendationError):
            Recommendation(item_id="", score=1.0, source="x")
