"""Unit tests for event records, queues and logs."""

import pytest

from repro.platform.events import Event, EventLog, EventQueue


class TestEvent:
    def test_describe_mentions_parties(self):
        event = Event(12.0, "message", "alpha", "beta")
        text = event.describe()
        assert "alpha" in text and "beta" in text and "message" in text

    def test_events_are_immutable(self):
        event = Event(1.0, "x", "a", "b")
        with pytest.raises(AttributeError):
            event.timestamp = 2.0


class TestEventQueue:
    def test_orders_by_timestamp(self):
        queue = EventQueue()
        queue.push(Event(5.0, "b", "s", "t"))
        queue.push(Event(1.0, "a", "s", "t"))
        queue.push(Event(9.0, "c", "s", "t"))
        assert [event.category for event in queue] == ["a", "b", "c"]

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.push(Event(1.0, "a", "s", "t"))
        assert queue.peek().category == "a"
        assert len(queue) == 1

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_bool_and_len(self):
        queue = EventQueue()
        assert not queue
        queue.push(Event(1.0, "a", "s", "t"))
        assert queue and len(queue) == 1

    def test_ties_preserve_insertion_order(self):
        queue = EventQueue()
        queue.push(Event(2.0, "first", "s", "t"))
        queue.push(Event(2.0, "second", "s", "t"))
        assert [event.category for event in queue] == ["first", "second"]


class TestEventLog:
    def test_record_appends_and_returns_event(self):
        log = EventLog()
        event = log.record(3.0, "agent.created", "host", "agent-1", agent_type="BRA")
        assert len(log) == 1
        assert event.payload["agent_type"] == "BRA"

    def test_by_category_filters(self):
        log = EventLog()
        log.record(1.0, "a", "x", "y")
        log.record(2.0, "b", "x", "y")
        log.record(3.0, "a", "x", "z")
        assert len(log.by_category("a")) == 2

    def test_involving_matches_source_and_target(self):
        log = EventLog()
        log.record(1.0, "a", "x", "y")
        log.record(2.0, "b", "y", "z")
        log.record(3.0, "c", "p", "q")
        assert len(log.involving("y")) == 2

    def test_categories_in_order(self):
        log = EventLog()
        for category in ("one", "two", "three"):
            log.record(0.0, category, "s", "t")
        assert log.categories() == ["one", "two", "three"]

    def test_between_filters_by_time(self):
        log = EventLog()
        for timestamp in (1.0, 5.0, 10.0):
            log.record(timestamp, "x", "s", "t")
        assert len(log.between(2.0, 9.0)) == 1

    def test_clear(self):
        log = EventLog()
        log.record(1.0, "x", "s", "t")
        log.clear()
        assert len(log) == 0

    def test_events_returns_copy(self):
        log = EventLog()
        log.record(1.0, "x", "s", "t")
        events = log.events
        events.append("junk")
        assert len(log) == 1
