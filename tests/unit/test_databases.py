"""Unit tests for UserDB and BSMDB."""

import pytest

from repro.errors import LoginError, UnknownUserError
from repro.core.profile import Profile
from repro.core.ratings import Interaction, InteractionKind
from repro.ecommerce.databases import BSMDB, UserDB
from repro.ecommerce.transactions import TransactionKind, TransactionRecord


class TestUserDB:
    def test_register_creates_profile_and_record(self):
        db = UserDB()
        record = db.register("alice", "Alice", timestamp=5.0)
        assert record.display_name == "Alice"
        assert record.registered_at == 5.0
        assert db.is_registered("alice")
        assert db.profile("alice").user_id == "alice"
        assert len(db) == 1

    def test_double_registration_rejected(self):
        db = UserDB()
        db.register("alice")
        with pytest.raises(LoginError):
            db.register("alice")

    def test_unknown_user_operations_rejected(self):
        db = UserDB()
        with pytest.raises(UnknownUserError):
            db.profile("ghost")
        with pytest.raises(UnknownUserError):
            db.user("ghost")
        with pytest.raises(UnknownUserError):
            db.transactions_of("ghost")
        with pytest.raises(UnknownUserError):
            db.record_interaction(Interaction("ghost", "i", InteractionKind.BUY))

    def test_record_login_updates_counters(self):
        db = UserDB()
        db.register("alice")
        db.record_login("alice", 10.0)
        db.record_login("alice", 20.0)
        assert db.user("alice").logins == 2
        assert db.user("alice").last_login_at == 20.0

    def test_store_profile_replaces_existing(self):
        db = UserDB()
        db.register("alice")
        replacement = Profile("alice")
        replacement.category("books").preference = 5.0
        db.store_profile(replacement)
        assert db.profile("alice").category("books").preference == 5.0

    def test_store_profile_for_unknown_user_rejected(self):
        db = UserDB()
        with pytest.raises(UnknownUserError):
            db.store_profile(Profile("ghost"))

    def test_profiles_listing(self):
        db = UserDB()
        for name in ("carol", "alice", "bob"):
            db.register(name)
        assert [profile.user_id for profile in db.profiles()] == ["alice", "bob", "carol"]

    def test_transactions_recorded_per_user(self):
        db = UserDB()
        db.register("alice")
        txn = TransactionRecord.create(
            "alice", "item-1", "marketplace-1", TransactionKind.DIRECT_PURCHASE,
            price=10.0, list_price=10.0, timestamp=0.0,
        )
        db.record_transaction(txn)
        assert db.transactions_of("alice") == [txn]
        assert db.all_transactions() == [txn]

    def test_interactions_feed_the_ratings_store(self):
        db = UserDB()
        db.register("alice")
        value = db.record_interaction(Interaction("alice", "item-1", InteractionKind.BUY))
        assert value > 0
        assert db.ratings.value("alice", "item-1") == value

    def test_user_ids_sorted(self):
        db = UserDB()
        for name in ("zoe", "amy"):
            db.register(name)
        assert db.user_ids == ["amy", "zoe"]


class TestBSMDB:
    def test_topology_records(self):
        db = BSMDB()
        db.set_coordinator("coordinator")
        db.add_marketplace("marketplace-1")
        db.add_marketplace("marketplace-1")  # idempotent
        db.add_marketplace("marketplace-2")
        db.add_seller_server("seller-1")
        assert db.coordinator == "coordinator"
        assert db.marketplaces == ["marketplace-1", "marketplace-2"]
        assert db.seller_servers == ["seller-1"]

    def test_online_bra_tracking(self):
        db = BSMDB()
        db.record_bra_online("BRA-1", "alice", 10.0)
        assert db.online_user_ids() == ["alice"]
        record = db.online_bra("alice")
        assert record.bra_id == "BRA-1"
        assert not record.deactivated

        db.record_bra_deactivated("alice", True)
        assert db.online_bra("alice").deactivated

        db.record_bra_offline("alice")
        assert db.online_user_ids() == []
        assert db.online_bra("alice") is None

    def test_deactivation_flag_for_unknown_user_is_ignored(self):
        db = BSMDB()
        db.record_bra_deactivated("ghost", True)  # must not raise

    def test_mba_dispatch_and_return_tracking(self):
        db = BSMDB()
        record = db.record_mba_dispatched(
            "MBA-1", owner="alice", bra_id="BRA-1", task="query",
            itinerary=["marketplace-1", "marketplace-2"], timestamp=5.0,
        )
        assert record.itinerary == ["marketplace-1", "marketplace-2"]
        assert db.outstanding_mbas() == [record]
        assert db.mba("MBA-1") is record

        db.record_mba_returned("MBA-1", 20.0, authenticated=True)
        assert db.outstanding_mbas() == []
        assert db.mba("MBA-1").returned_at == 20.0
        assert db.mba("MBA-1").authenticated

    def test_unknown_mba_lookup(self):
        db = BSMDB()
        assert db.mba("nope") is None
        db.record_mba_returned("nope", 1.0, authenticated=False)  # must not raise

    def test_mba_history_accumulates(self):
        db = BSMDB()
        db.record_mba_dispatched("MBA-1", "alice", "BRA-1", "query", [], 1.0)
        db.record_mba_dispatched("MBA-2", "bob", "BRA-2", "buy", [], 2.0)
        assert len(db.mba_history()) == 2
