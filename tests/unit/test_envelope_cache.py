"""Cache-correctness regressions for the gateway recommendations cache.

The envelope cache (``PlatformConfig.api_recommendation_cache``) is only
allowed to change *when* a recommendation list is computed — never what a
request returns.  These tests pin the three failure modes that would break
that contract:

- a write through the gateway (rating, purchase, profile replacement) must
  invalidate the written consumer's cached list before the next read — the
  stale-serve bug trap, including the purchase path that records a
  transaction without any learner event;
- ``served_from_cache`` provenance appears exactly on hits, never on
  misses, bypasses or the default-off path;
- default-off caching is byte-invisible: with the flag at its default the
  gateway constructs no cache, registers no hooks, and every envelope is
  identical to the pre-cache code path.
"""

from repro.api.caching import RecommendationEnvelopeCache
from repro.api.requests import (
    BuyRequest,
    LoginRequest,
    QueryRequest,
    RateRequest,
    RecommendationsRequest,
    RegisterRequest,
)
from repro.ecommerce.platform_builder import PlatformConfig, build_platform

USERS = ("cache-u1", "cache-u2", "cache-u3")


def _gateway(cache_on: bool):
    platform = build_platform(
        config=PlatformConfig(seed=11, api_recommendation_cache=cache_on)
    )
    gateway = platform.gateway()
    gateway._test_keyword = next(iter(platform.catalog_view())).terms[0][0]
    return gateway


def _warm(gateway):
    """Register, log in and generate rating signal for every test consumer."""
    hits = None
    for user_id in USERS:
        assert gateway.execute(RegisterRequest(user_id=user_id)).ok
        assert gateway.execute(LoginRequest(user_id=user_id)).ok
        response = gateway.execute(
            QueryRequest(user_id=user_id, keyword=gateway._test_keyword)
        )
        assert response.ok
        if response.result.hits:
            hits = response.result.hits
    assert hits, "the workload needs at least one purchasable query hit"
    return hits


def _service(gateway, user_id):
    return gateway._session_for(user_id).server.recommendations


def _recs(response):
    return [(rec.item_id, rec.score) for rec in response.result.recommendations]


class TestHitEligibility:
    def test_hit_only_after_matching_batch_refresh(self):
        gateway = _gateway(cache_on=True)
        _warm(gateway)

        first = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert first.ok and not first.provenance.served_from_cache

        _service(gateway, USERS[0]).batch_refresh(list(USERS), k=5)
        hit = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert hit.provenance.served_from_cache
        # Byte-identical to the freshly computed envelope payload.
        assert _recs(hit) == _recs(first)

    def test_mismatched_k_and_category_requests_never_hit(self):
        gateway = _gateway(cache_on=True)
        _warm(gateway)
        _service(gateway, USERS[0]).batch_refresh(list(USERS), k=5)

        wrong_k = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=4))
        assert not wrong_k.provenance.served_from_cache
        with_category = gateway.execute(
            RecommendationsRequest(user_id=USERS[0], k=5, category="book")
        )
        assert not with_category.provenance.served_from_cache
        assert gateway.recommendation_cache.bypasses == 1

    def test_counters_track_hits_misses_and_bypasses(self):
        gateway = _gateway(cache_on=True)
        _warm(gateway)
        cache = gateway.recommendation_cache
        assert isinstance(cache, RecommendationEnvelopeCache)

        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        _service(gateway, USERS[0]).batch_refresh(list(USERS), k=5)
        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5, category="x"))
        assert (cache.hits, cache.misses, cache.bypasses) == (1, 1, 1)


class TestWriteInvalidation:
    def test_rating_through_the_gateway_invalidates(self):
        gateway = _gateway(cache_on=True)
        hits = _warm(gateway)
        service = _service(gateway, USERS[0])
        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        service.batch_refresh(list(USERS), k=5)
        assert gateway.execute(
            RecommendationsRequest(user_id=USERS[0], k=5)
        ).provenance.served_from_cache

        assert gateway.execute(
            RateRequest(user_id=USERS[0], item=hits[0].item, rating=4.5)
        ).ok
        after = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert not after.provenance.served_from_cache
        # And the recomputed answer matches a direct service computation.
        assert _recs(after) == [
            (rec.item_id, rec.score)
            for rec in service.recommend(USERS[0], k=5)
        ]

    def test_purchase_through_the_gateway_invalidates(self):
        """A buy records a transaction; even when no learner event fires,
        the consumer's cached list must be dropped (the stale-serve trap)."""
        gateway = _gateway(cache_on=True)
        hits = _warm(gateway)
        service = _service(gateway, USERS[0])
        # Arm the invalidation hooks (first lookup drops pre-arming entries),
        # then refresh so the entry is eligible.
        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        service.batch_refresh(list(USERS), k=5)
        assert gateway.execute(
            RecommendationsRequest(user_id=USERS[0], k=5)
        ).provenance.served_from_cache

        bought = gateway.execute(
            BuyRequest(
                user_id=USERS[0], item=hits[0].item, marketplace=hits[0].marketplace
            )
        )
        assert bought.ok and bought.result.succeeded
        after = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert not after.provenance.served_from_cache

    def test_writes_only_invalidate_the_writing_consumer(self):
        gateway = _gateway(cache_on=True)
        hits = _warm(gateway)
        service = _service(gateway, USERS[0])
        gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        service.batch_refresh(list(USERS), k=5)

        assert gateway.execute(
            RateRequest(user_id=USERS[1], item=hits[0].item, rating=3.5)
        ).ok
        # The writer misses; an untouched consumer still hits.
        assert not gateway.execute(
            RecommendationsRequest(user_id=USERS[1], k=5)
        ).provenance.served_from_cache
        assert gateway.execute(
            RecommendationsRequest(user_id=USERS[0], k=5)
        ).provenance.served_from_cache

    def test_entries_cached_before_arming_are_not_served(self):
        """A batch refresh that ran before the cache armed its hooks may be
        stale in unrecorded ways; the first lookup must drop it."""
        gateway = _gateway(cache_on=True)
        _warm(gateway)
        service = _service(gateway, USERS[0])
        service.batch_refresh(list(USERS), k=5)  # hooks not armed yet
        first = gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert not first.provenance.served_from_cache


class TestDefaultOffIsByteInvisible:
    def test_no_cache_object_and_no_hooks_by_default(self):
        gateway = _gateway(cache_on=False)
        _warm(gateway)
        assert gateway.recommendation_cache is None
        service = _service(gateway, USERS[0])
        assert not service._invalidation_enabled

    def test_envelopes_identical_with_and_without_cache_misses(self):
        """Run the same workload on both configurations; every payload and
        provenance (hits aside — default-off can never hit) is identical."""
        responses = {}
        for cache_on in (False, True):
            gateway = _gateway(cache_on=cache_on)
            _warm(gateway)
            sequence = []
            for user_id in USERS:
                response = gateway.execute(
                    RecommendationsRequest(user_id=user_id, k=5)
                )
                sequence.append(
                    (
                        response.status,
                        response.provenance.served_from_cache,
                        _recs(response),
                    )
                )
            responses[cache_on] = sequence
        assert responses[False] == responses[True]

    def test_default_config_leaves_the_flag_off(self):
        assert PlatformConfig().api_recommendation_cache is False

    def test_cached_hit_equals_default_off_answer(self):
        """The hit payload is byte-identical to what the default-off
        configuration computes for the same request."""
        off = _gateway(cache_on=False)
        on = _gateway(cache_on=True)
        for gateway in (off, on):
            _warm(gateway)
            gateway.execute(RecommendationsRequest(user_id=USERS[0], k=5))
            _service(gateway, USERS[0]).batch_refresh(list(USERS), k=5)
        off_answer = off.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        on_answer = on.execute(RecommendationsRequest(user_id=USERS[0], k=5))
        assert not off_answer.provenance.served_from_cache
        assert on_answer.provenance.served_from_cache
        assert _recs(on_answer) == _recs(off_answer)
