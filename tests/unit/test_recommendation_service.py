"""Unit tests for the buyer server's RecommendationService facade."""

import pytest

from repro.errors import RecommendationError
from repro.core.items import ItemCatalogView
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import Interaction, InteractionKind
from repro.ecommerce.buyer_server import RecommendationService
from repro.ecommerce.databases import UserDB

from tests.conftest import make_item

ITEMS = [
    make_item(f"book-{i}", category="books", terms={"novel": 0.8}) for i in range(3)
] + [
    make_item(f"tech-{i}", category="electronics", terms={"laptop": 0.9}) for i in range(3)
]


@pytest.fixture
def service():
    user_db = UserDB()
    for name in ("alice", "bob"):
        user_db.register(name)
    clock = {"now": 0.0}
    service = RecommendationService(
        user_db, ItemCatalogView(ITEMS), now=lambda: clock["now"]
    )
    return user_db, service, clock


def _buy(user_db, user, item_id, timestamp=0.0):
    user_db.record_interaction(
        Interaction(user, item_id, InteractionKind.BUY, timestamp=timestamp)
    )


class TestRecommendationService:
    def test_cold_user_falls_back_to_popularity(self, service):
        user_db, svc, _ = service
        _buy(user_db, "bob", "book-0")
        recommended = svc.recommend("alice", k=3)
        assert recommended
        assert recommended[0].source == "popularity"

    def test_weekly_hottest_uses_simulated_clock(self, service):
        user_db, svc, clock = service
        _buy(user_db, "bob", "book-0", timestamp=0.0)
        clock["now"] = 1_000.0
        assert [rec.item_id for rec in svc.weekly_hottest_list(k=3)] == ["book-0"]
        # Eight simulated days later the purchase has left the window.
        clock["now"] = 8 * 24 * 60 * 60 * 1000.0
        assert svc.weekly_hottest_list(k=3) == []

    def test_cross_sell_for_basket_and_history(self, service):
        user_db, svc, _ = service
        for user in ("alice", "bob"):
            _buy(user_db, user, "book-0")
            _buy(user_db, user, "book-1")
        by_basket = svc.cross_sell_for("carol", basket=["book-0"])
        assert [rec.item_id for rec in by_basket] == ["book-1"]
        by_history = svc.cross_sell_for("alice")
        # alice already owns both co-purchased items, so nothing new remains.
        assert all(rec.item_id not in ("book-0",) for rec in by_history)

    def test_recommend_for_query_adds_unknown_items_to_catalog(self, service):
        user_db, svc, _ = service
        _buy(user_db, "alice", "book-0")
        discovered = make_item("book-new", category="books", terms={"novel": 0.9})
        assert "book-new" not in svc.catalog
        svc.recommend_for_query("alice", [discovered], k=3)
        assert "book-new" in svc.catalog

    def test_recommend_excludes_purchases(self, service):
        user_db, svc, _ = service
        _buy(user_db, "alice", "book-0")
        _buy(user_db, "bob", "book-0")
        _buy(user_db, "bob", "book-1")
        recommended = [rec.item_id for rec in svc.recommend("alice", k=5)]
        assert "book-0" not in recommended


def _teach(user_db, learner, user, item, kind=InteractionKind.BUY, timestamp=0.0):
    """Route one behaviour through the learning rule + ratings store."""
    learner.apply(
        user_db.profile(user), FeedbackEvent(user, item, kind, timestamp=timestamp)
    )
    user_db.record_interaction(
        Interaction(user, item.item_id, kind, timestamp=timestamp, category=item.category)
    )


@pytest.fixture
def learning_service():
    """Service with the learner wired in, plus a warm/cold consumer mix."""
    user_db = UserDB()
    learner = ProfileLearner()
    for name in ("alice", "bob", "carol", "dave"):
        user_db.register(name)
    service = RecommendationService(
        user_db, ItemCatalogView(ITEMS), profile_learner=learner
    )
    # alice and bob are warm book readers; carol bought one gadget;
    # dave never did anything (cold start).
    for item_id in ("book-0", "book-1"):
        item = next(item for item in ITEMS if item.item_id == item_id)
        _teach(user_db, learner, "alice", item)
        _teach(user_db, learner, "bob", item)
    _teach(user_db, learner, "bob", next(i for i in ITEMS if i.item_id == "book-2"))
    _teach(user_db, learner, "carol", next(i for i in ITEMS if i.item_id == "tech-0"))
    return user_db, learner, service


class TestRecommendMany:
    def test_batch_equals_per_user_for_every_user(self, learning_service):
        user_db, _, svc = learning_service
        users = user_db.user_ids
        batch = svc.recommend_many(users, k=5)
        assert sorted(batch) == sorted(users)
        for user_id in users:
            assert batch[user_id] == svc.recommend(user_id, k=5)

    def test_cold_start_users_degrade_identically(self, learning_service):
        _, _, svc = learning_service
        batch = svc.recommend_many(["dave"], k=4)
        single = svc.recommend("dave", k=4)
        assert batch["dave"] == single
        # dave has no profile signal, so the popularity fallback serves him.
        assert all(rec.source == "popularity" for rec in batch["dave"])

    def test_batch_equals_per_user_with_category_filter(self, learning_service):
        user_db, _, svc = learning_service
        users = user_db.user_ids
        batch = svc.recommend_many(users, k=5, category="books")
        for user_id in users:
            assert batch[user_id] == svc.recommend(user_id, k=5, category="books")

    def test_batch_equals_per_user_after_more_feedback(self, learning_service):
        user_db, learner, svc = learning_service
        svc.recommend_many(user_db.user_ids, k=5)  # warm the index
        _teach(user_db, learner, "dave", next(i for i in ITEMS if i.item_id == "tech-1"))
        batch = svc.recommend_many(user_db.user_ids, k=5)
        for user_id in user_db.user_ids:
            assert batch[user_id] == svc.recommend(user_id, k=5)

    def test_duplicate_user_ids_collapse(self, learning_service):
        _, _, svc = learning_service
        batch = svc.recommend_many(["alice", "alice", "bob"], k=3)
        assert sorted(batch) == ["alice", "bob"]

    def test_invalid_k_raises(self, learning_service):
        _, _, svc = learning_service
        with pytest.raises(RecommendationError):
            svc.recommend_many(["alice"], k=0)


class TestBatchRefresh:
    def test_batch_refresh_populates_cache(self, learning_service):
        user_db, _, svc = learning_service
        assert svc.cached_recommendations("alice") is None
        results = svc.batch_refresh(user_db.user_ids, k=5)
        assert svc.last_batch_refresh_at is not None
        for user_id in user_db.user_ids:
            assert svc.cached_recommendations(user_id) == results[user_id]

    def test_cached_lists_are_copies(self, learning_service):
        user_db, _, svc = learning_service
        svc.batch_refresh(user_db.user_ids, k=5)
        first = svc.cached_recommendations("alice")
        first.append("sentinel")
        assert svc.cached_recommendations("alice") != first

    def test_mutating_batch_refresh_result_does_not_corrupt_cache(self, learning_service):
        user_db, _, svc = learning_service
        results = svc.batch_refresh(user_db.user_ids, k=5)
        pristine = list(results["alice"])
        results["alice"].reverse()
        results["alice"].append("sentinel")
        assert svc.cached_recommendations("alice") == pristine

    def test_new_registration_visible_after_batch_warm(self, learning_service):
        user_db, _, svc = learning_service
        svc.recommend_many(user_db.user_ids, k=5)  # warm index + fast path
        user_db.register("erin")
        batch = svc.recommend_many(user_db.user_ids, k=5)
        assert "erin" in batch
        assert batch["erin"] == svc.recommend("erin", k=5)

    def test_unknown_user_has_no_cache_entry(self, learning_service):
        _, _, svc = learning_service
        assert svc.cached_recommendations("nobody") is None

    def test_on_demand_recommend_stays_fresh_after_refresh(self, learning_service):
        user_db, learner, svc = learning_service
        svc.batch_refresh(user_db.user_ids, k=5)
        _teach(user_db, learner, "dave", next(i for i in ITEMS if i.item_id == "tech-2"))
        # The cache still holds the snapshot; recommend() reflects the event.
        assert svc.recommend("dave", k=5) == svc.engine.recommend("dave", k=5)


class TestRecommendForQueryBatching:
    """The batched query re-ranking shares neighbour work across query items
    but must stay score-identical to evaluating each item on its own."""

    def _query_items(self, category="books"):
        prefix = "book" if category == "books" else "tech"
        return [item for item in ITEMS if item.item_id.startswith(prefix)]

    def test_batched_path_equals_per_item_path(self, learning_service):
        user_db, _, svc = learning_service
        items = self._query_items()
        batched = svc.recommend_for_query("alice", items, k=len(items), extra=0)
        assert len(batched) == len(items)
        per_item = {}
        for item in items:
            (only,) = svc.recommend_for_query("alice", [item], k=1, extra=0)
            per_item[item.item_id] = only.score
        for rec in batched:
            assert rec.score == per_item[rec.item_id]

    def test_batched_path_equals_per_item_after_more_feedback(self, learning_service):
        user_db, learner, svc = learning_service
        _teach(user_db, learner, "carol", next(i for i in ITEMS if i.item_id == "tech-1"))
        items = self._query_items(category="electronics")
        batched = svc.recommend_for_query("carol", items, k=len(items), extra=0)
        for rec in batched:
            (only,) = svc.recommend_for_query(
                "carol", [next(i for i in items if i.item_id == rec.item_id)],
                k=1, extra=0,
            )
            assert rec.score == only.score

    def test_mixed_category_query_still_ranks_all_items(self, learning_service):
        _, _, svc = learning_service
        items = self._query_items() + self._query_items(category="electronics")
        ranked = svc.recommend_for_query("bob", items, k=len(items), extra=0)
        assert sorted(rec.item_id for rec in ranked) == sorted(
            item.item_id for item in items
        )
        assert ranked == sorted(ranked, key=lambda rec: (-rec.score, rec.item_id))
