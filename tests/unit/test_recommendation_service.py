"""Unit tests for the buyer server's RecommendationService facade."""

import pytest

from repro.core.items import ItemCatalogView
from repro.core.ratings import Interaction, InteractionKind
from repro.ecommerce.buyer_server import RecommendationService
from repro.ecommerce.databases import UserDB

from tests.conftest import make_item

ITEMS = [
    make_item(f"book-{i}", category="books", terms={"novel": 0.8}) for i in range(3)
] + [
    make_item(f"tech-{i}", category="electronics", terms={"laptop": 0.9}) for i in range(3)
]


@pytest.fixture
def service():
    user_db = UserDB()
    for name in ("alice", "bob"):
        user_db.register(name)
    clock = {"now": 0.0}
    service = RecommendationService(
        user_db, ItemCatalogView(ITEMS), now=lambda: clock["now"]
    )
    return user_db, service, clock


def _buy(user_db, user, item_id, timestamp=0.0):
    user_db.record_interaction(
        Interaction(user, item_id, InteractionKind.BUY, timestamp=timestamp)
    )


class TestRecommendationService:
    def test_cold_user_falls_back_to_popularity(self, service):
        user_db, svc, _ = service
        _buy(user_db, "bob", "book-0")
        recommended = svc.recommend("alice", k=3)
        assert recommended
        assert recommended[0].source == "popularity"

    def test_weekly_hottest_uses_simulated_clock(self, service):
        user_db, svc, clock = service
        _buy(user_db, "bob", "book-0", timestamp=0.0)
        clock["now"] = 1_000.0
        assert [rec.item_id for rec in svc.weekly_hottest_list(k=3)] == ["book-0"]
        # Eight simulated days later the purchase has left the window.
        clock["now"] = 8 * 24 * 60 * 60 * 1000.0
        assert svc.weekly_hottest_list(k=3) == []

    def test_cross_sell_for_basket_and_history(self, service):
        user_db, svc, _ = service
        for user in ("alice", "bob"):
            _buy(user_db, user, "book-0")
            _buy(user_db, user, "book-1")
        by_basket = svc.cross_sell_for("carol", basket=["book-0"])
        assert [rec.item_id for rec in by_basket] == ["book-1"]
        by_history = svc.cross_sell_for("alice")
        # alice already owns both co-purchased items, so nothing new remains.
        assert all(rec.item_id not in ("book-0",) for rec in by_history)

    def test_recommend_for_query_adds_unknown_items_to_catalog(self, service):
        user_db, svc, _ = service
        _buy(user_db, "alice", "book-0")
        discovered = make_item("book-new", category="books", terms={"novel": 0.9})
        assert "book-new" not in svc.catalog
        svc.recommend_for_query("alice", [discovered], k=3)
        assert "book-new" in svc.catalog

    def test_recommend_excludes_purchases(self, service):
        user_db, svc, _ = service
        _buy(user_db, "alice", "book-0")
        _buy(user_db, "bob", "book-0")
        _buy(user_db, "bob", "book-1")
        recommended = [rec.item_id for rec in svc.recommend("alice", k=5)]
        assert "book-0" not in recommended
