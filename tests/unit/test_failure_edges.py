"""Edge coverage for :mod:`repro.platform.failure`.

The chaos subsystem compiles its schedules down to
:class:`~repro.platform.failure.FailurePlan` actions, so these edges are
load-bearing: a partition must heal back to the *exact* pre-partition
link state, crashing an already-crashed host must be a typed refusal
(not a silent no-op), and equal-timestamp plan actions must execute in
plan order (the scheduler's sequence tiebreak), which is what makes a
fault/repair pair landing on the same millisecond deterministic.
"""

from __future__ import annotations

import pytest

from repro.errors import HostError, PlatformError
from repro.platform.failure import FailureAction, FailurePlan
from repro.ecommerce.platform_builder import build_platform


@pytest.fixture
def platform():
    return build_platform(
        num_marketplaces=2, num_sellers=1, items_per_seller=5, seed=2
    )


def _link_state(network) -> dict:
    """Snapshot every directed link's up/down flag."""
    return {key: link.up for key, link in network._links.items()}


def _reachable(network, a, b) -> bool:
    return network.link(a, b).up and not network._partitioned(a, b)


def _reachability(network, hosts) -> dict:
    return {
        (a, b): _reachable(network, a, b)
        for a in hosts
        for b in hosts
        if a != b
    }


class TestPartitionHeal:
    def test_heal_restores_exact_pre_partition_reachability(self, platform):
        network = platform.network
        hosts = sorted(platform.hosts)
        # Make the baseline non-trivial: one link is already down before
        # the partition, and healing must NOT resurrect it.
        platform.failures.cut_link(hosts[0], hosts[1])
        before_links = _link_state(network)
        before_reach = _reachability(network, hosts)

        platform.failures.partition([hosts[0]], hosts[1:])
        assert not _reachable(network, hosts[0], hosts[2])

        platform.failures.heal()
        assert _link_state(network) == before_links
        assert _reachability(network, hosts) == before_reach
        # The pre-existing cut survived the heal.
        assert not _reachable(network, hosts[0], hosts[1])

    def test_heal_is_idempotent(self, platform):
        hosts = sorted(platform.hosts)
        before = _reachability(platform.network, hosts)
        platform.failures.partition([hosts[0]], hosts[1:])
        platform.failures.heal()
        platform.failures.heal()
        assert _reachability(platform.network, hosts) == before


class TestCrashEdges:
    def test_crashing_an_already_crashed_host_is_refused(self, platform):
        victim = sorted(platform.hosts)[0]
        platform.failures.crash_host(victim)
        with pytest.raises(HostError, match="cannot crash"):
            platform.failures.crash_host(victim)
        # The refusal left the host crashed, and it still recovers.
        platform.failures.recover_host(victim)
        assert platform.hosts[victim].is_running

    def test_recovering_a_running_host_is_refused(self, platform):
        victim = sorted(platform.hosts)[0]
        with pytest.raises(HostError, match="already running"):
            platform.failures.recover_host(victim)

    def test_unregistered_host_is_a_typed_error(self, platform):
        with pytest.raises(PlatformError, match="not registered"):
            platform.failures.crash_host("no-such-host")


class TestApplyPlanOrdering:
    def test_equal_timestamp_actions_run_in_plan_order(self, platform):
        """Two actions at the same instant execute FIFO (scheduler seq)."""
        base = platform.now
        a, b = sorted(platform.hosts)[:2]
        plan = FailurePlan()
        plan.cut_link(base + 50.0, a, b)
        plan.restore_link(base + 50.0, a, b)
        platform.failures.apply_plan(plan)
        platform.scheduler.run_until(base + 50.0)
        # cut then restore at the same ms nets out to an up link ...
        assert _reachable(platform.network, a, b)

        reverse = FailurePlan()
        reverse.restore_link(base + 60.0, a, b)
        reverse.cut_link(base + 60.0, a, b)
        platform.failures.apply_plan(reverse)
        platform.scheduler.run_until(base + 60.0)
        # ... and restore then cut nets out to a down link.
        assert not _reachable(platform.network, a, b)

    def test_crash_recover_pair_on_the_same_instant(self, platform):
        base = platform.now
        victim = sorted(platform.hosts)[0]
        plan = (
            FailurePlan()
            .crash_host(base + 25.0, victim)
            .recover_host(base + 25.0, victim)
        )
        platform.failures.apply_plan(plan)
        platform.scheduler.run_until(base + 25.0)
        assert platform.hosts[victim].is_running

    def test_plan_actions_fire_at_their_timestamps(self, platform):
        # Building the platform already advanced the simulated clock, so
        # anchor the plan relative to *now* (past timestamps are clamped).
        base = platform.now
        victim = sorted(platform.hosts)[0]
        plan = (
            FailurePlan()
            .crash_host(base + 10.0, victim)
            .recover_host(base + 30.0, victim)
        )
        platform.failures.apply_plan(plan)

        platform.scheduler.run_until(base + 9.0)
        assert platform.hosts[victim].is_running
        platform.scheduler.run_until(base + 10.0)
        assert not platform.hosts[victim].is_running
        platform.scheduler.run_until(base + 30.0)
        assert platform.hosts[victim].is_running

    def test_unknown_action_kind_is_refused(self, platform):
        bogus = FailurePlan(actions=[FailureAction(1.0, "set-on-fire", ("x",))])
        with pytest.raises(PlatformError, match="unknown failure action"):
            platform.failures.apply_plan(bogus)
