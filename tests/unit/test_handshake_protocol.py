"""Unit coverage for the trade handshake protocol and its typed rejections.

Pins the :class:`~repro.adversarial.handshake.HandshakeBroker` state
machine (init → nonce challenge → HMAC echo → finalize → one redeem)
and — per the adversarial-marketplace acceptance bar — that every way
the protocol can be abused raises its *own* typed error which
``classify_error`` maps to a *distinct, stable* code the gateway's
envelope taxonomy and ``api.auth.rejected.*`` counters key on.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import (
    DoubleFinalizeError,
    ForgedNonceError,
    HandshakeError,
    ReplayedOfferError,
    StaleCredentialError,
)
from repro.agents.security import AuthenticationService
from repro.adversarial.handshake import (
    HandshakeBroker,
    TAMPER_MODES,
    TradeHandshake,
)
from repro.api.envelope import AUTH_REJECTION_CODES, classify_error


def _broker(seed: int = 3) -> HandshakeBroker:
    token = f"auth|{seed}|market-1"
    auth = AuthenticationService(
        "market-1", secret=token.encode("utf-8"), rng=random.Random(token)
    )
    return HandshakeBroker("market-1", auth)


class TestHonestFlow:
    def test_three_step_flow_produces_a_verified_transcript(self):
        broker = _broker()
        session = broker.open("alice", now=10.0)
        assert session.state == TradeHandshake.OPEN

        echo = AuthenticationService.respond(session.credential, session.nonce)
        broker.exchange(session.handshake_id, session.nonce, echo, now=11.0)
        assert session.state == TradeHandshake.VERIFIED
        assert session.nonce_log == [session.nonce]

        transcript = broker.finalize(session.handshake_id, now=12.0)
        assert transcript.verified
        assert transcript.buyer == "alice"
        assert transcript.nonce == session.nonce
        # Snippet-2 discipline: the nonce log is cleared on finalize.
        assert session.nonce_log == []
        assert broker.completed[transcript.handshake_id] == transcript

    def test_transcript_redeems_exactly_once(self):
        broker = _broker()
        transcript = broker.perform("alice", now=0.0)
        assert broker.redeem(transcript) == transcript
        with pytest.raises(ReplayedOfferError, match="already redeemed"):
            broker.redeem(transcript)
        assert broker.stats()["redeemed"] == 1.0

    def test_stats_count_the_whole_protocol(self):
        broker = _broker()
        for _ in range(3):
            broker.redeem(broker.perform("alice", now=0.0))
        assert broker.stats() == {
            "opened": 3.0,
            "finalized": 3.0,
            "redeemed": 3.0,
            "rejected": 0.0,
        }


class TestDuplicateNonceDrop:
    def test_colliding_nonce_draw_is_discarded_and_redrawn(self):
        broker = _broker()
        first = broker.perform("alice", now=0.0)

        # Force the auth service to re-draw the consumed nonce first: the
        # broker must discard it and keep drawing until a fresh one appears.
        draws = iter([first.nonce, first.nonce, "a" * 32])
        broker.auth.challenge = lambda: next(draws)
        session = broker.open("bob", now=1.0)
        assert session.nonce == "a" * 32

    def test_outstanding_nonce_is_never_reissued(self):
        broker = _broker()
        open_session = broker.open("alice", now=0.0)
        draws = iter([open_session.nonce, "b" * 32])
        broker.auth.challenge = lambda: next(draws)
        other = broker.open("bob", now=1.0)
        assert other.nonce == "b" * 32


class TestTypedRejections:
    def test_forged_nonce_echo_is_refused(self):
        broker = _broker()
        session = broker.open("mallory", now=0.0)
        forged = "f" * 32 if session.nonce != "f" * 32 else "0" * 32
        echo = AuthenticationService.respond(session.credential, forged)
        with pytest.raises(ForgedNonceError, match="different"):
            broker.exchange(session.handshake_id, forged, echo, now=1.0)

    def test_correct_nonce_with_wrong_key_is_a_forgery(self):
        broker = _broker()
        session = broker.open("mallory", now=0.0)
        with pytest.raises(ForgedNonceError, match="session"):
            broker.exchange(
                session.handshake_id, session.nonce, "0" * 64, now=1.0
            )

    def test_consumed_nonce_is_a_replayed_offer_even_on_a_new_session(self):
        broker = _broker()
        first = broker.perform("alice", now=0.0)
        second = broker.open("mallory", now=1.0)
        replay = AuthenticationService.respond(second.credential, first.nonce)
        # The replay check fires before the nonce-match check: a consumed
        # nonce names the attack precisely instead of degrading to forgery.
        with pytest.raises(ReplayedOfferError, match="already answered"):
            broker.exchange(second.handshake_id, first.nonce, replay, now=1.0)

    def test_double_finalize_is_refused(self):
        broker = _broker()
        session = broker.open("mallory", now=0.0)
        echo = AuthenticationService.respond(session.credential, session.nonce)
        broker.exchange(session.handshake_id, session.nonce, echo, now=1.0)
        broker.finalize(session.handshake_id, now=2.0)
        with pytest.raises(DoubleFinalizeError, match="already finalized"):
            broker.finalize(session.handshake_id, now=3.0)

    def test_stale_credential_is_refused_at_open(self):
        broker = _broker()
        expired = broker.auth.issue(
            "hs-market-1-mallory",
            owner="mallory",
            now=-broker.auth.credential_lifetime_ms - 1.0,
        )
        with pytest.raises(StaleCredentialError, match="refused"):
            broker.open("mallory", now=0.0, credential=expired)

    def test_finalize_before_echo_is_a_generic_handshake_error(self):
        broker = _broker()
        session = broker.open("alice", now=0.0)
        with pytest.raises(HandshakeError, match="cannot finalize"):
            broker.finalize(session.handshake_id, now=1.0)

    def test_unknown_handshake_and_unknown_transcript_are_refused(self):
        broker = _broker()
        with pytest.raises(HandshakeError, match="unknown handshake"):
            broker.exchange("handshake-nowhere-9", "n", "r", now=0.0)
        foreign = _broker(seed=4).perform("alice", now=0.0)
        with pytest.raises(HandshakeError, match="never finalized"):
            broker.redeem(foreign)

    def test_rejections_are_tallied_by_code(self):
        broker = _broker()
        for tamper in TAMPER_MODES:
            with pytest.raises(HandshakeError):
                broker.attempt("mallory", now=0.0, tamper=tamper)
        assert broker.rejections == {code: 1 for code in TAMPER_MODES}

    def test_unknown_tamper_mode_is_refused(self):
        broker = _broker()
        with pytest.raises(HandshakeError, match="unknown tamper mode"):
            broker.attempt("mallory", now=0.0, tamper="bribery")


class TestAttemptRaisesTheMatchingTypedError:
    """``attempt`` is the attack surface: one tamper mode, one exact error."""

    @pytest.mark.parametrize(
        "tamper, exc_type",
        [
            ("forged-nonce", ForgedNonceError),
            ("replayed-offer", ReplayedOfferError),
            ("double-finalize", DoubleFinalizeError),
            ("stale-credential", StaleCredentialError),
        ],
    )
    def test_each_mode_raises_its_own_error(self, tamper, exc_type):
        broker = _broker()
        with pytest.raises(exc_type):
            broker.attempt("mallory", now=0.0, tamper=tamper)

    def test_honest_attempt_finalizes(self):
        broker = _broker()
        transcript = broker.attempt("alice", now=0.0, tamper=None)
        assert transcript.verified


class TestTaxonomyPins:
    """The stable (exception → code/kind) pins the acceptance bar names."""

    @pytest.mark.parametrize(
        "exc, code, kind",
        [
            (ForgedNonceError("x"), "forged-nonce", "ForgedNonceError"),
            (ReplayedOfferError("x"), "replayed-offer", "ReplayedOfferError"),
            (DoubleFinalizeError("x"), "double-finalize", "DoubleFinalizeError"),
            (StaleCredentialError("x"), "stale-credential", "StaleCredentialError"),
            (HandshakeError("x"), "handshake", "HandshakeError"),
        ],
    )
    def test_each_rejection_maps_to_a_distinct_stable_code(self, exc, code, kind):
        error = classify_error(exc)
        assert error.code == code
        assert error.kind == kind
        assert error.retryable is False
        assert code in AUTH_REJECTION_CODES

    def test_tamper_modes_cover_distinct_codes(self):
        codes = {classify_error(exc).code for exc in (
            ForgedNonceError("x"),
            ReplayedOfferError("x"),
            DoubleFinalizeError("x"),
            StaleCredentialError("x"),
        )}
        assert codes == set(TAMPER_MODES)
        assert len(codes) == 4
