"""Unit tests for hosts, the transport layer and failure injection."""

import pytest

from repro.errors import HostError, HostUnreachableError, PlatformError, TransferDroppedError
from repro.platform.clock import Scheduler
from repro.platform.events import EventLog
from repro.platform.failure import FailureInjector, FailurePlan
from repro.platform.host import Host, HostState
from repro.platform.metrics import MetricsRegistry
from repro.platform.network import NetworkConfig, SimulatedNetwork
from repro.platform.transport import Transport


@pytest.fixture
def env():
    scheduler = Scheduler()
    network = SimulatedNetwork(NetworkConfig(base_latency_ms=4.0, seed=2))
    transport = Transport(network, scheduler, EventLog(), MetricsRegistry())
    host_a = Host("a", network, scheduler)
    host_b = Host("b", network, scheduler)
    host_a.start()
    host_b.start()
    return scheduler, network, transport, host_a, host_b


class TestHost:
    def test_empty_name_rejected(self, env):
        _, network, _, _, _ = env
        with pytest.raises(HostError):
            Host("", network, Scheduler())

    def test_lifecycle_start_stop(self, env):
        *_, host_a, _ = env
        assert host_a.is_running
        host_a.stop()
        assert host_a.state is HostState.STOPPED

    def test_start_is_idempotent(self, env):
        *_, host_a, _ = env
        host_a.start()
        host_a.start()
        assert host_a.is_running

    def test_stop_requires_running(self, env):
        *_, host_a, _ = env
        host_a.stop()
        with pytest.raises(HostError):
            host_a.stop()

    def test_crash_and_recover(self, env):
        _, network, _, host_a, _ = env
        host_a.crash()
        assert host_a.state is HostState.CRASHED
        assert not network.is_host_up("a")
        host_a.recover()
        assert host_a.is_running
        assert network.is_host_up("a")

    def test_crash_requires_running(self, env):
        *_, host_a, _ = env
        host_a.stop()
        with pytest.raises(HostError):
            host_a.crash()

    def test_recover_requires_not_running(self, env):
        *_, host_a, _ = env
        with pytest.raises(HostError):
            host_a.recover()

    def test_services_attach_and_lookup(self, env):
        *_, host_a, _ = env
        host_a.attach_service("db", {"users": 1})
        assert host_a.service("db") == {"users": 1}
        assert host_a.has_service("db")
        assert "db" in host_a.services()

    def test_duplicate_service_rejected(self, env):
        *_, host_a, _ = env
        host_a.attach_service("db", object())
        with pytest.raises(HostError):
            host_a.attach_service("db", object())

    def test_missing_service_raises(self, env):
        *_, host_a, _ = env
        with pytest.raises(HostError):
            host_a.service("nope")


class TestTransport:
    def test_deliver_advances_clock_and_returns_receipt(self, env):
        scheduler, _, transport, *_ = env
        receipt = transport.deliver("a", "b", "message", payload_bytes=100)
        assert receipt.latency_ms > 0
        assert scheduler.clock.now == pytest.approx(receipt.arrived_at)
        assert receipt.kind == "message"

    def test_deliver_records_event_and_metrics(self, env):
        _, _, transport, *_ = env
        transport.deliver("a", "b", "agent-dispatch", payload_bytes=2048)
        assert transport.event_log.by_category("transfer.agent-dispatch")
        counters = transport.metrics.counters()
        assert counters["transport.agent-dispatch.count"] == 1.0

    def test_failed_delivery_raises_and_counts(self, env):
        _, network, transport, _, host_b = env
        host_b.crash()
        with pytest.raises(HostUnreachableError):
            transport.deliver("a", "b", "message")
        assert transport.metrics.counters()["transport.failures"] == 1.0

    def test_retries_on_loss(self):
        scheduler = Scheduler()
        network = SimulatedNetwork(NetworkConfig(loss_probability=0.6, seed=5))
        transport = Transport(network, scheduler)
        Host("a", network, scheduler).start()
        Host("b", network, scheduler).start()
        delivered = 0
        for _ in range(20):
            try:
                transport.deliver("a", "b", "message", retries=10)
                delivered += 1
            except TransferDroppedError:  # pragma: no cover - extremely unlikely
                pass
        assert delivered == 20
        assert transport.metrics.counters().get("transport.retries", 0) > 0


class TestFailureInjector:
    def test_immediate_crash_and_recover(self, env):
        scheduler, network, _, host_a, host_b = env
        injector = FailureInjector(network, scheduler)
        injector.register_host(host_a)
        injector.crash_host("a")
        assert host_a.state is HostState.CRASHED
        injector.recover_host("a")
        assert host_a.is_running

    def test_unregistered_host_rejected(self, env):
        scheduler, network, *_ = env
        injector = FailureInjector(network, scheduler)
        with pytest.raises(PlatformError):
            injector.crash_host("a")

    def test_link_cut_and_restore(self, env):
        scheduler, network, transport, *_ = env
        injector = FailureInjector(network, scheduler)
        injector.cut_link("a", "b")
        with pytest.raises(PlatformError):
            transport.deliver("a", "b", "message")
        injector.restore_link("a", "b")
        transport.deliver("a", "b", "message")

    def test_scheduled_plan_fires_at_times(self, env):
        scheduler, network, _, host_a, _ = env
        injector = FailureInjector(network, scheduler)
        injector.register_host(host_a)
        plan = FailurePlan().crash_host(10.0, "a").recover_host(20.0, "a")
        injector.apply_plan(plan)
        scheduler.run_until(15.0)
        assert host_a.state is HostState.CRASHED
        scheduler.run_until(25.0)
        assert host_a.is_running

    def test_plan_builder_chains(self):
        plan = (
            FailurePlan()
            .crash_host(1.0, "x")
            .cut_link(2.0, "x", "y")
            .restore_link(3.0, "x", "y")
            .recover_host(4.0, "x")
        )
        assert [action.kind for action in plan.actions] == [
            "crash-host", "cut-link", "restore-link", "recover-host",
        ]

    def test_partition_and_heal(self, env):
        scheduler, network, transport, *_ = env
        injector = FailureInjector(network, scheduler)
        injector.partition(["a"], ["b"])
        with pytest.raises(PlatformError):
            transport.deliver("a", "b", "message")
        injector.heal()
        transport.deliver("a", "b", "message")
