"""Unit tests for the aglet runtime: contexts, proxies, migration, messaging."""

import pytest

from repro.errors import (
    AgentLifecycleError,
    AgentNotFoundError,
    DispatchError,
    HostUnreachableError,
    MessageDeliveryError,
)
from repro.agents.aglet import Aglet
from repro.agents.lifecycle import AgletState
from repro.agents.messages import Message, Reply


class EchoAgent(Aglet):
    """Replies to 'echo' messages and records lifecycle callbacks."""

    agent_type = "Echo"

    def on_creation(self, greeting: str = "hello") -> None:
        self.greeting = greeting
        self.calls = []

    def on_clone(self, original: "Aglet") -> None:
        self.calls.append("cloned")

    def on_dispatching(self, destination: str) -> None:
        self.calls.append(f"dispatching:{destination}")

    def on_arrival(self, origin: str) -> None:
        self.calls.append(f"arrived-from:{origin}")

    def on_deactivating(self) -> None:
        self.calls.append("deactivating")

    def on_activation(self) -> None:
        self.calls.append("activated")

    def on_disposing(self) -> None:
        self.calls.append("disposing")

    def handle_message(self, message: Message) -> Reply:
        if message.kind == "echo":
            return message.reply(text=f"{self.greeting} {message.argument('text', '')}")
        return super().handle_message(message)


class TestCreation:
    def test_create_binds_and_registers(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent, owner="alice", greeting="hi")
        assert agent.greeting == "hi"
        assert agent.state is AgletState.ACTIVE
        assert agent.location == "alpha"
        assert agent.owner == "alice"
        assert alpha.active_count("Echo") == 1
        assert alpha.directory.locate(agent.aglet_id) == "alpha"

    def test_ids_are_unique_and_typed(self, two_contexts):
        alpha, _ = two_contexts
        first = alpha.create(EchoAgent)
        second = alpha.create(EchoAgent)
        assert first.aglet_id != second.aglet_id
        assert first.aglet_id.startswith("Echo-")
        assert first.aglet_id.endswith("@alpha")

    def test_creation_event_logged(self, two_contexts):
        alpha, _ = two_contexts
        alpha.create(EchoAgent)
        assert alpha.transport.event_log.by_category("agent.created")

    def test_now_reflects_shared_clock(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.transport.scheduler.clock.advance_to(42.0)
        assert agent.now == 42.0


class TestClone:
    def test_clone_copies_state_with_new_identity(self, two_contexts):
        alpha, _ = two_contexts
        original = alpha.create(EchoAgent, greeting="salut")
        duplicate = alpha.clone(original)
        assert duplicate.greeting == "salut"
        assert duplicate.aglet_id != original.aglet_id
        assert "cloned" in duplicate.calls
        assert alpha.active_count("Echo") == 2

    def test_clone_state_is_independent(self, two_contexts):
        alpha, _ = two_contexts
        original = alpha.create(EchoAgent)
        duplicate = alpha.clone(original)
        original.greeting = "changed"
        assert duplicate.greeting == "hello"


class TestDispose:
    def test_dispose_removes_agent(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        agent_id = agent.aglet_id
        alpha.dispose(agent)
        assert alpha.active_count() == 0
        assert not alpha.directory.knows(agent_id)
        assert agent.calls[-1] == "disposing"

    def test_disposed_agent_cannot_be_used(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.dispose(agent)
        with pytest.raises(AgentLifecycleError):
            alpha.dispose(agent)


class TestDispatch:
    def test_dispatch_moves_agent_between_hosts(self, two_contexts):
        alpha, beta = two_contexts
        agent = alpha.create(EchoAgent, greeting="bonjour")
        alpha.dispatch(agent, "beta")
        assert agent.location == "beta"
        assert alpha.active_count() == 0
        assert beta.active_count() == 1
        assert alpha.directory.locate(agent.aglet_id) == "beta"
        assert agent.greeting == "bonjour"
        assert f"dispatching:beta" in agent.calls
        assert "arrived-from:alpha" in agent.calls
        assert agent.info.hops == 1

    def test_dispatch_charges_the_network(self, two_contexts):
        alpha, beta = two_contexts
        before = alpha.transport.scheduler.clock.now
        agent = alpha.create(EchoAgent)
        alpha.dispatch(agent, "beta")
        assert alpha.transport.scheduler.clock.now > before

    def test_dispatch_to_same_host_is_noop(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.dispatch(agent, "alpha")
        assert agent.location == "alpha"
        assert agent.info.hops == 0

    def test_dispatch_to_unknown_host_rejected(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        with pytest.raises(DispatchError):
            alpha.dispatch(agent, "nowhere")

    def test_failed_dispatch_leaves_agent_active_at_home(self, two_contexts):
        alpha, beta = two_contexts
        agent = alpha.create(EchoAgent)
        beta.host.crash()
        with pytest.raises(HostUnreachableError):
            alpha.dispatch(agent, "beta")
        assert agent.state is AgletState.ACTIVE
        assert agent.location == "alpha"
        assert alpha.active_count() == 1

    def test_retract_brings_agent_home(self, two_contexts):
        alpha, beta = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.dispatch(agent, "beta")
        returned = alpha.retract(agent.aglet_id)
        assert returned.location == "alpha"
        assert alpha.active_count() == 1
        assert beta.active_count() == 0
        assert returned.info.hops == 2

    def test_retract_local_agent_is_noop(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        assert alpha.retract(agent.aglet_id) is agent


class TestDeactivation:
    def test_deactivate_and_activate_roundtrip(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent, greeting="hej")
        agent_id = agent.aglet_id
        alpha.deactivate(agent)
        assert alpha.is_deactivated(agent_id)
        assert alpha.active_count() == 0
        assert agent_id in alpha.deactivated_ids()

        restored = alpha.activate(agent_id)
        assert restored.greeting == "hej"
        assert restored.state is AgletState.ACTIVE
        assert "activated" in restored.calls
        assert not alpha.is_deactivated(agent_id)

    def test_proxy_survives_deactivation(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        proxy = agent.proxy
        alpha.deactivate(agent)
        restored = alpha.activate(agent.aglet_id)
        assert restored.proxy == proxy

    def test_message_to_deactivated_agent_rejected(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.deactivate(agent)
        with pytest.raises(MessageDeliveryError):
            alpha.deliver(agent.aglet_id, Message("echo"))

    def test_activate_unknown_id_rejected(self, two_contexts):
        alpha, _ = two_contexts
        with pytest.raises(AgentNotFoundError):
            alpha.activate("Echo-999@alpha")

    def test_deactivated_agent_cannot_be_dispatched(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.deactivate(agent)
        with pytest.raises(AgentLifecycleError):
            alpha.dispatch(agent, "beta")


class TestMessaging:
    def test_local_delivery(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        reply = alpha.deliver(agent.aglet_id, Message("echo", {"text": "world"}))
        assert reply.ok
        assert reply.value("text") == "hello world"

    def test_remote_delivery_charges_two_hops(self, two_contexts):
        alpha, beta = two_contexts
        agent = beta.create(EchoAgent)
        transfers_before = alpha.transport.network.total_transfers
        reply = alpha.send_message(agent.proxy, Message("echo", {"text": "remote"}))
        assert reply.ok
        assert alpha.transport.network.total_transfers == transfers_before + 2

    def test_send_to_helper(self, two_contexts):
        alpha, beta = two_contexts
        sender = alpha.create(EchoAgent)
        receiver = beta.create(EchoAgent, greeting="yo")
        reply = sender.send_to(receiver.proxy, "echo", text="there")
        assert reply.value("text") == "yo there"

    def test_unhandled_kind_returns_failure(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        reply = alpha.deliver(agent.aglet_id, Message("unknown-kind"))
        assert not reply.ok
        assert "unknown-kind" in reply.error

    def test_messages_follow_agent_after_migration(self, two_contexts):
        alpha, beta = two_contexts
        agent = alpha.create(EchoAgent)
        proxy = agent.proxy
        alpha.dispatch(agent, "beta")
        reply = proxy.request("echo", text="moved", from_host="alpha")
        assert reply.value("text") == "hello moved"
        assert proxy.location == "beta"

    def test_delivery_to_unknown_agent_rejected(self, two_contexts):
        alpha, _ = two_contexts
        with pytest.raises(AgentNotFoundError):
            alpha.deliver("Echo-404@alpha", Message("echo"))

    def test_message_counter_increments(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        alpha.deliver(agent.aglet_id, Message("echo"))
        alpha.deliver(agent.aglet_id, Message("echo"))
        assert agent.info.messages_handled == 2

    def test_bad_target_type_rejected(self, two_contexts):
        alpha, _ = two_contexts
        with pytest.raises(MessageDeliveryError):
            alpha.send_message(12345, Message("echo"))


class TestProxyAndDirectory:
    def test_proxy_equality_and_hash(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        assert agent.proxy == agent.proxy
        assert hash(agent.proxy) == hash(agent.proxy)

    def test_proxy_exists_tracks_disposal(self, two_contexts):
        alpha, _ = two_contexts
        agent = alpha.create(EchoAgent)
        proxy = agent.proxy
        assert proxy.exists
        alpha.dispose(agent)
        assert not proxy.exists

    def test_directory_agents_on_host(self, two_contexts):
        alpha, beta = two_contexts
        first = alpha.create(EchoAgent)
        second = alpha.create(EchoAgent)
        alpha.dispatch(second, "beta")
        assert first.aglet_id in alpha.directory.agents_on("alpha")
        assert second.aglet_id in alpha.directory.agents_on("beta")

    def test_directory_unknown_agent(self, two_contexts):
        alpha, _ = two_contexts
        with pytest.raises(AgentNotFoundError):
            alpha.directory.locate("missing")

    def test_unbound_aglet_has_no_context(self):
        agent = EchoAgent()
        with pytest.raises(AgentLifecycleError):
            _ = agent.context
        with pytest.raises(AgentLifecycleError):
            _ = agent.proxy

    def test_active_aglets_filter_by_type(self, two_contexts):
        alpha, _ = two_contexts
        alpha.create(EchoAgent)
        assert len(alpha.active_aglets("Echo")) == 1
        assert alpha.active_aglets("Other") == []


class HopperAgent(Aglet):
    """Dispatches itself onwards on arrival (the MBA itinerary pattern)."""

    agent_type = "Hopper"

    def on_creation(self, itinerary=None, home: str = "") -> None:
        self.itinerary = list(itinerary or [])
        self.home = home
        self.visited = []

    def on_arrival(self, origin: str) -> None:
        if self.location == self.home:
            return
        self.visited.append(self.location)
        remaining = [stop for stop in self.itinerary if stop not in self.visited]
        self.dispatch_to(remaining[0] if remaining else self.home)


class TestSelfDispatchingItinerary:
    def test_agent_walks_itinerary_and_returns_home(self, three_contexts):
        alpha, beta, gamma = three_contexts
        agent = alpha.create(HopperAgent, itinerary=["beta", "gamma"], home="alpha")
        alpha.dispatch(agent, "beta")
        home_agent = alpha.get_local(agent.aglet_id)
        assert home_agent.visited == ["beta", "gamma"]
        assert home_agent.location == "alpha"
        assert home_agent.info.hops == 3
