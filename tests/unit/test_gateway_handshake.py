"""Unit coverage for the gateway's ``handshake`` operation.

The clients' view of the tentpole: every protocol attack comes back as
a *failed envelope* carrying its distinct stable error code — never a
raw exception — and each rejection is mirrored onto an
``api.auth.rejected.<code>`` counter so a metrics snapshot alone proves
the attack was refused.  Also pins the opt-in contract: a platform
built without ``handshake_trades`` refuses the operation with a typed
``handshake`` error, and its metrics/stats carry no handshake keys at
all (byte-identity with the pre-handshake platform).
"""

from __future__ import annotations

import pytest

from repro.api.envelope import ApiStatus
from repro.api.requests import HandshakeRequest
from repro.adversarial.handshake import TAMPER_MODES
from repro.ecommerce.platform_builder import build_platform


@pytest.fixture
def secured():
    return build_platform(
        num_marketplaces=2, num_sellers=1, items_per_seller=5, seed=4,
        handshake_trades=True,
    )


class TestHonestHandshake:
    def test_honest_handshake_returns_a_verified_result(self, secured):
        response = secured.gateway().handshake("alice")
        assert response.ok
        assert response.result.verified
        assert response.result.buyer == "alice"
        assert response.result.marketplace == "marketplace-1"
        assert response.result.handshake_id.startswith("handshake-marketplace-1-")

    def test_marketplace_can_be_chosen_by_name(self, secured):
        response = secured.gateway().handshake("alice", marketplace="marketplace-2")
        assert response.ok
        assert response.result.marketplace == "marketplace-2"

    def test_unknown_marketplace_is_a_failed_envelope(self, secured):
        response = secured.gateway().handshake("alice", marketplace="bazaar-9")
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "marketplace"


class TestTamperedHandshakes:
    @pytest.mark.parametrize("tamper", TAMPER_MODES)
    def test_each_tamper_mode_fails_with_its_own_code(self, secured, tamper):
        response = secured.gateway().handshake("mallory", tamper=tamper)
        assert response.status == ApiStatus.FAILED
        assert response.error.code == tamper
        assert response.error.retryable is False
        # The envelope carries the structured error, never a traceback.
        assert response.result is None

    def test_rejections_bump_the_auth_rejected_counters(self, secured):
        gateway = secured.gateway()
        for tamper in TAMPER_MODES:
            gateway.handshake("mallory", tamper=tamper)
            gateway.handshake("mallory", tamper=tamper)
        counters = secured.metrics.snapshot()["counters"]
        for tamper in TAMPER_MODES:
            assert counters[f"api.auth.rejected.{tamper}"] == 2.0

    def test_honest_handshakes_bump_no_rejection_counters(self, secured):
        secured.gateway().handshake("alice")
        counters = secured.metrics.snapshot()["counters"]
        assert not [key for key in counters if key.startswith("api.auth.rejected")]

    def test_requests_are_not_retry_safe(self):
        # A handshake mutates broker state (nonces, sessions); the retry
        # middleware must never replay one.
        assert HandshakeRequest("alice").retry_safe is False


class TestHandshakesOff:
    def test_unsecured_platform_refuses_the_operation(self):
        platform = build_platform(
            num_marketplaces=1, num_sellers=1, items_per_seller=5, seed=4
        )
        response = platform.gateway().handshake("alice")
        assert response.status == ApiStatus.FAILED
        assert response.error.code == "handshake"
        assert "handshake_trades=True" in response.error.message

    def test_unsecured_platform_carries_no_handshake_surface(self):
        platform = build_platform(
            num_marketplaces=1, num_sellers=1, items_per_seller=5, seed=4
        )
        market = platform.marketplaces[0]
        assert market.handshakes is None
        assert market.trade_handshakes == {}
        # Stats and metrics are byte-identical to the pre-handshake
        # platform: no handshake keys appear anywhere.
        assert not [key for key in market.stats() if "handshake" in key]
        counters = platform.metrics.snapshot()["counters"]
        assert not [key for key in counters if "auth" in key or "adversary" in key]

    def test_secured_platform_reports_handshake_stats(self, secured):
        secured.gateway().handshake("alice")
        stats = secured.marketplaces[0].stats()
        assert stats["handshakes_opened"] == 1.0
        assert stats["handshakes_finalized"] == 1.0
