"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.agents.context import AgletContext
from repro.agents.directory import ContextDirectory
from repro.core.items import Item, ItemCatalogView
from repro.ecommerce.platform_builder import build_platform
from repro.platform.clock import Scheduler
from repro.platform.events import EventLog
from repro.platform.host import Host
from repro.platform.metrics import MetricsRegistry
from repro.platform.network import NetworkConfig, SimulatedNetwork
from repro.platform.transport import Transport
from repro.workload.consumers import ConsumerPopulation
from repro.workload.generator import InteractionGenerator
from repro.workload.products import ProductGenerator


# ---------------------------------------------------------------------------
# Platform substrate fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture
def network() -> SimulatedNetwork:
    return SimulatedNetwork(NetworkConfig(base_latency_ms=5.0, seed=1))


@pytest.fixture
def substrate(network, scheduler):
    """(network, scheduler, transport, directory) wired together."""
    transport = Transport(network, scheduler, EventLog(), MetricsRegistry())
    directory = ContextDirectory()
    return network, scheduler, transport, directory


@pytest.fixture
def two_contexts(substrate):
    """Two hosts ('alpha', 'beta') each running an aglet context."""
    network, scheduler, transport, directory = substrate
    contexts = []
    for name in ("alpha", "beta"):
        host = Host(name, network, scheduler)
        host.start()
        contexts.append(AgletContext(host, transport, directory))
    return tuple(contexts)


@pytest.fixture
def three_contexts(substrate):
    """Three hosts ('alpha', 'beta', 'gamma') each running an aglet context."""
    network, scheduler, transport, directory = substrate
    contexts = []
    for name in ("alpha", "beta", "gamma"):
        host = Host(name, network, scheduler)
        host.start()
        contexts.append(AgletContext(host, transport, directory))
    return tuple(contexts)


# ---------------------------------------------------------------------------
# Workload fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def sample_items():
    """A deterministic batch of 60 synthetic items."""
    return ProductGenerator(seed=5).generate(60, seller="test-seller")


@pytest.fixture(scope="module")
def catalog_view(sample_items):
    return ItemCatalogView(sample_items)


@pytest.fixture(scope="module")
def population():
    return ConsumerPopulation(20, groups=4, seed=7)


@pytest.fixture(scope="module")
def dataset(population, catalog_view):
    """A small offline interaction dataset shared by recommender tests."""
    return InteractionGenerator(seed=9).generate(
        population, catalog_view, events_per_user=25
    )


# ---------------------------------------------------------------------------
# Live platform fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def platform():
    """A small but complete e-commerce platform."""
    return build_platform(num_marketplaces=2, num_sellers=2, items_per_seller=20, seed=3)


@pytest.fixture
def logged_in_session(platform):
    session = platform.login("test-consumer")
    yield session
    if session.is_active:
        session.logout()


# ---------------------------------------------------------------------------
# Helpers exposed to tests
# ---------------------------------------------------------------------------


def make_item(
    item_id: str = "item-1",
    category: str = "books",
    subcategory: str = "fiction",
    terms=None,
    price: float = 20.0,
    seller: str = "seller",
) -> Item:
    """Build a deterministic item for hand-written scenarios."""
    return Item.build(
        item_id=item_id,
        name=f"Test {item_id}",
        category=category,
        subcategory=subcategory,
        terms=terms if terms is not None else {"novel": 0.8, "classic": 0.5},
        price=price,
        seller=seller,
    )


@pytest.fixture
def item_factory():
    return make_item
