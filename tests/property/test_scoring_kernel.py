"""Differential property suite: every scoring-kernel backend is the same.

The :mod:`repro.core.scoring` kernels exist so the Figure 4.5 similarity hot
path can run over contiguous arrays (and, when numpy is importable, whole
candidate blocks at once) — but the repo's quality story only holds if the
speedups are provably score-identical to the PR-1 dict loops.  These tests
drive the ``dict``, ``array`` and ``numpy`` backends over seeded random
populations salted with every awkward shape the kernels special-case —
zero-norm vectors (preferences with empty term sets), entirely empty
profiles, single-rating consumers, consumers with disjoint category sets —
and require *exact* equality: same ranked neighbor ids, bit-identical
scores, and early-termination skip counts that never decrease (in practice:
never differ) when the vectorized block path replays the sequential
skip/heap decisions.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.neighbors import ProfileNeighborIndex
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.items import Item
from repro.core.ratings import InteractionKind
from repro.core.scoring import (
    KERNEL_BACKENDS,
    create_kernel,
    numpy_available,
    resolve_backend,
)
from repro.core.similarity import SimilarityConfig, find_similar_users

CATEGORIES = ["books", "electronics", "fashion", "groceries", "toys"]
TERMS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]


def available_backends():
    backends = ["dict", "array"]
    if numpy_available():
        backends.append("numpy")
    return backends


def seeded_population(seed: int, size: int = 28):
    """A population salted with every edge shape the kernels special-case."""
    rng = random.Random(seed)
    population = {}
    for index in range(size):
        profile = Profile(f"user-{index:03d}")
        roll = rng.random()
        if roll < 0.10:
            pass  # empty profile: no categories at all
        elif roll < 0.22:
            # Zero-norm term vectors: preferences only, empty term sets.
            for category in rng.sample(CATEGORIES, rng.randint(1, 3)):
                profile.category(category).preference = rng.uniform(0.5, 9.5)
        elif roll < 0.34:
            # Single-rating consumer: one category, one term.
            entry = profile.category(rng.choice(CATEGORIES))
            entry.preference = rng.uniform(0.5, 9.5)
            entry.terms.set(rng.choice(TERMS), rng.uniform(0.1, 5.0))
        else:
            for category in rng.sample(CATEGORIES, rng.randint(1, 4)):
                entry = profile.category(category)
                entry.preference = rng.uniform(0.0, 10.0)
                for term in rng.sample(TERMS, rng.randint(0, 6)):
                    entry.terms.set(term, rng.uniform(0.05, 8.0))
        population[profile.user_id] = profile

    # Two consumers with guaranteed-disjoint category sets: any pairwise
    # similarity between them exercises the all-zero-overlap branches.
    disjoint_a = Profile("user-disjoint-a")
    entry = disjoint_a.category("books")
    entry.preference = 7.0
    entry.terms.set("alpha", 2.0)
    disjoint_b = Profile("user-disjoint-b")
    entry = disjoint_b.category("toys")
    entry.preference = 3.0
    entry.terms.set("zeta", 4.0)
    population[disjoint_a.user_id] = disjoint_a
    population[disjoint_b.user_id] = disjoint_b
    return population


def build_index(population, config, backend, early_termination=False,
                tight_term_bound=True):
    return ProfileNeighborIndex(
        profiles=population.values(),
        config=config,
        backend=backend,
        early_termination=early_termination,
        tight_term_bound=tight_term_bound,
    )


CONFIGS = [
    SimilarityConfig(),
    SimilarityConfig(preference_weight=1.0, term_weight=0.0, top_k=3),
    SimilarityConfig(preference_weight=0.3, term_weight=0.9,
                     min_similarity=0.2, top_k=5),
    SimilarityConfig(discard_tolerance=1.5, top_k=4),
]


# ---------------------------------------------------------------------------
# Exact three-way equivalence on seeded populations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [7, 101, 4242])
@pytest.mark.parametrize("early_termination", [False, True])
def test_backends_identical_on_seeded_population(seed, early_termination):
    """dict/array/numpy return *exactly* equal rankings and scores."""
    population = seeded_population(seed)
    for config in CONFIGS:
        indexes = {
            backend: build_index(
                population, config, backend, early_termination=early_termination
            )
            for backend in available_backends()
        }
        for category in (None, "books", "toys", "no-such-category"):
            for target in population.values():
                answers = {
                    backend: index.find_similar(target, category=category)
                    for backend, index in indexes.items()
                }
                reference = answers["dict"]
                for backend, answer in answers.items():
                    # Exact tuple equality — ids AND float bit patterns.
                    assert answer == reference, (
                        f"backend {backend!r} diverged from dict for "
                        f"target {target.user_id!r} category {category!r}"
                    )


@pytest.mark.parametrize("seed", [7, 101, 4242])
def test_backends_identical_to_brute_force(seed):
    """Every backend still honours the PR-1 brute-force contract."""
    population = seeded_population(seed)
    config = SimilarityConfig()
    for backend in available_backends():
        index = build_index(population, config, backend, early_termination=True)
        for target in list(population.values())[:8]:
            brute = find_similar_users(target, population.values(), config)
            assert index.find_similar(target) == brute


@pytest.mark.parametrize("seed", [11, 2026])
def test_skip_counts_never_decrease(seed):
    """Early-termination prunes at least as much on the fast backends.

    The block path replays the sequential skip/heap decisions over
    precomputed scores, so in practice the counts are *identical* — pinned
    here as the stronger claim, which subsumes "never decrease".
    """
    population = seeded_population(seed, size=40)
    config = SimilarityConfig(top_k=3)
    skips = {}
    for backend in available_backends():
        index = build_index(population, config, backend, early_termination=True)
        for target in population.values():
            index.find_similar(target)
        skips[backend] = index.bound_skips
    for backend, count in skips.items():
        assert count >= skips["dict"]
        assert count == skips["dict"], (
            f"backend {backend!r} made different skip decisions: "
            f"{count} != {skips['dict']}"
        )


def test_find_similar_many_matches_sequential_queries():
    population = seeded_population(13)
    config = SimilarityConfig(top_k=5)
    targets = list(population.values())
    for backend in available_backends():
        index = build_index(population, config, backend)
        batched = index.find_similar_many(targets)
        assert batched == [index.find_similar(target) for target in targets]


# ---------------------------------------------------------------------------
# Incremental updates keep the kernels coherent
# ---------------------------------------------------------------------------


def test_backends_identical_after_learner_updates():
    population = seeded_population(77, size=20)
    config = SimilarityConfig()
    learners = {}
    indexes = {}
    for backend in available_backends():
        indexes[backend] = build_index(population, config, backend)
        learners[backend] = ProfileLearner()
        indexes[backend].attach_to(learners[backend])
        # Warm the caches so updates land on populated state.
        indexes[backend].find_similar(population["user-000"])

    rng = random.Random(99)
    for _ in range(12):
        user_id = rng.choice(sorted(population))
        item = Item.build(
            item_id=f"item-{rng.randint(0, 999)}",
            name="generated",
            category=rng.choice(CATEGORIES),
            subcategory="",
            terms={rng.choice(TERMS): rng.uniform(0.1, 1.0)},
            price=rng.uniform(1.0, 100.0),
        )
        event = FeedbackEvent(
            user_id=user_id,
            item=item,
            kind=rng.choice(list(InteractionKind)),
            timestamp=float(rng.randint(0, 10_000)),
            rating=rng.choice([None, rng.uniform(0.0, 5.0)]),
        )
        # One learner mutates the shared profile; the others only see the
        # hook (applying the event again would double-count it).
        backends = available_backends()
        learners[backends[0]].apply(population[user_id], event)
        for backend in backends[1:]:
            indexes[backend].on_profile_update(population[user_id], event)

    for target in list(population.values())[:6]:
        reference = indexes["dict"].find_similar(target)
        assert reference == find_similar_users(
            target, population.values(), config
        )
        for backend in available_backends()[1:]:
            assert indexes[backend].find_similar(target) == reference


# ---------------------------------------------------------------------------
# Hypothesis sweep over arbitrary populations and configurations
# ---------------------------------------------------------------------------

term_names = st.text(alphabet="abcdefgh", min_size=1, max_size=5)
positive_weights = st.floats(min_value=0.0, max_value=10.0,
                             allow_nan=False, allow_infinity=False)


@st.composite
def populations(draw, min_size=2, max_size=10):
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    population = {}
    for index in range(size):
        profile = Profile(f"user-{index}")
        for category in draw(
            st.lists(st.sampled_from(CATEGORIES), max_size=3, unique=True)
        ):
            entry = profile.category(category)
            entry.preference = draw(positive_weights)
            for term, weight in draw(
                st.dictionaries(term_names, positive_weights, max_size=4)
            ).items():
                if weight > 0:
                    entry.terms.set(term, weight)
        population[profile.user_id] = profile
    return population


@settings(max_examples=30, deadline=None)
@given(
    population=populations(),
    category=st.one_of(st.none(), st.sampled_from(CATEGORIES)),
    early_termination=st.booleans(),
    tight=st.booleans(),
)
def test_backend_equivalence_property(population, category, early_termination, tight):
    config = SimilarityConfig(top_k=4)
    indexes = [
        build_index(population, config, backend,
                    early_termination=early_termination, tight_term_bound=tight)
        for backend in available_backends()
    ]
    for target in population.values():
        answers = [
            index.find_similar(target, category=category) for index in indexes
        ]
        for answer in answers[1:]:
            assert answer == answers[0]


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------


def test_backend_roster_and_resolution():
    assert KERNEL_BACKENDS == ("dict", "array", "numpy")
    assert resolve_backend("dict") == "dict"
    assert resolve_backend("array") == "array"
    expected_auto = "numpy" if numpy_available() else "array"
    assert resolve_backend("auto") == expected_auto
    with pytest.raises(ValueError):
        resolve_backend("vax-microcode")


def test_forced_stdlib_mode_hides_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not numpy_available()
    assert resolve_backend("auto") == "array"
    with pytest.raises(ValueError):
        resolve_backend("numpy")


def test_kernel_factory_matches_roster():
    for backend in available_backends():
        kernel = create_kernel(backend)
        assert kernel.vectorized == (backend == "numpy")
