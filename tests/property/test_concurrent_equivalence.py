"""Property tests for the concurrent-session layer.

Two properties anchor the concurrency design:

1. **Replay determinism** — a seeded concurrent scenario replayed on a
   fresh same-seed platform yields a byte-identical envelope stream (and
   an identical report).  Everything is simulated: there is no wall clock,
   no thread scheduler, no racing — only the deterministic virtual-time
   order.
2. **Zero-overlap equivalence** — N sessions run "concurrently" but
   chained so that each request arrives exactly when the previous one
   finished are indistinguishable, byte for byte, from the same requests
   issued sequentially through ``gateway.execute`` on a twin platform.
   This is the signature test that the submit path added *only*
   interleaving, not new semantics.
"""

import json

import pytest

from repro.api.requests import LoginRequest, LogoutRequest, QueryRequest
from repro.ecommerce.platform_builder import build_platform
from repro.workload import ConsumerPopulation, ScenarioRunner


def _fresh_platform(**overrides):
    defaults = dict(seed=7, num_buyer_servers=3, replication_factor=1)
    defaults.update(overrides)
    return build_platform(**defaults)


def _session_requests(users, queries=2):
    requests = []
    for user in users:
        requests.append(LoginRequest(user))
        for index in range(queries):
            requests.append(QueryRequest(user, "laptop" if index % 2 else "books"))
        requests.append(LogoutRequest(user))
    return requests


class TestReplayDeterminism:
    def _run_stream(self):
        """A mixed overlapping run; returns the ordered envelope reprs."""
        platform = _fresh_platform(
            api_admission_capacity=40, api_admission_refill_per_ms=0.05
        )
        gateway = platform.gateway()
        scheduler = gateway.sessions
        base = scheduler.horizon
        users = [f"user-{i}" for i in range(12)]
        futures = []
        for position, user in enumerate(users):
            login = gateway.submit(LoginRequest(user), at_ms=base + position * 3.0)
            futures.append(login)

            def follow_up(future, user=user):
                futures.append(
                    gateway.submit(
                        QueryRequest(user, "books"),
                        at_ms=future.finished_at_ms + 10.0,
                    )
                )

            login.add_done_callback(follow_up)
        scheduler.run_until_idle()
        return [repr(future.response) for future in futures]

    def test_submit_streams_replay_byte_identically(self):
        assert self._run_stream() == self._run_stream()

    def test_concurrent_day_report_replays_identically(self):
        def run():
            platform = _fresh_platform(
                api_admission_capacity=60, api_admission_refill_per_ms=0.1
            )
            runner = ScenarioRunner(platform, ConsumerPopulation(60, seed=7), seed=7)
            report = runner.concurrent_day(
                sessions=50,
                queries_per_session=2,
                arrival_rate_per_ms=0.05,
                think_time_ms=120.0,
                seed=7,
            )
            return json.dumps(report.as_dict(), sort_keys=True)

        first, second = run(), run()
        assert first == second


class TestZeroOverlapEquivalence:
    @pytest.mark.parametrize("queries", [1, 2])
    def test_chained_submits_match_sequential_execute(self, queries):
        users = [f"user-{i}" for i in range(6)]
        requests = _session_requests(users, queries=queries)

        sequential_platform = _fresh_platform()
        sequential_gateway = sequential_platform.gateway()
        sequential = [
            repr(sequential_gateway.execute(request))
            for request in _session_requests(users, queries=queries)
        ]

        concurrent_platform = _fresh_platform()
        concurrent_gateway = concurrent_platform.gateway()
        scheduler = concurrent_gateway.sessions
        futures = []
        remaining = list(requests)

        def submit_next(previous=None):
            if not remaining:
                return
            at = None if previous is None else previous.finished_at_ms
            future = concurrent_gateway.submit(remaining.pop(0), at_ms=at)
            future.add_done_callback(submit_next)
            futures.append(future)

        submit_next()
        scheduler.run_until_idle()
        concurrent = [repr(future.response) for future in futures]

        assert concurrent == sequential

    def test_zero_overlap_charges_no_queue_wait(self):
        platform = _fresh_platform()
        gateway = platform.gateway()
        scheduler = gateway.sessions
        remaining = _session_requests([f"user-{i}" for i in range(4)])

        def submit_next(previous=None):
            if not remaining:
                return
            at = None if previous is None else previous.finished_at_ms
            gateway.submit(remaining.pop(0), at_ms=at).add_done_callback(submit_next)

        submit_next()
        scheduler.run_until_idle()
        assert platform.metrics.timer("api.queue_wait_ms").summary()["count"] == 0

    def test_default_off_overload_knobs_are_byte_invisible(self):
        """The overload features ship dark: a platform built with the
        hedging/admission-class knobs explicitly disabled produces the
        same envelope stream and report, byte for byte, as one that never
        heard of them.  (Queue drops need ``api_deadline_ms``, which the
        default platform does not set — so the drop branch is already
        unreachable on the default path.)"""
        def run(**overrides):
            platform = _fresh_platform(
                api_admission_capacity=60,
                api_admission_refill_per_ms=0.1,
                **overrides,
            )
            runner = ScenarioRunner(platform, ConsumerPopulation(60, seed=7), seed=7)
            report = runner.concurrent_day(
                sessions=50,
                queries_per_session=2,
                arrival_rate_per_ms=0.05,
                think_time_ms=120.0,
                seed=7,
            )
            events = [repr(event) for event in platform.event_log.events]
            return json.dumps(report.as_dict(), sort_keys=True), events

        default = run()
        disabled = run(
            api_admission_classes=None,
            fleet_hedge_delay_percentile=None,
        )
        assert disabled == default

    def test_armed_but_unfired_hedging_is_byte_invisible(self):
        """``p=1.0`` arms the hedging machinery at a threshold no latency
        can exceed — the whole run stays byte-identical to default."""
        def run(**overrides):
            platform = _fresh_platform(**overrides)
            runner = ScenarioRunner(platform, ConsumerPopulation(40, seed=5), seed=5)
            report = runner.concurrent_day(
                sessions=30,
                queries_per_session=1,
                arrival_rate_per_ms=0.05,
                think_time_ms=100.0,
                seed=5,
            )
            return json.dumps(report.as_dict(), sort_keys=True)

        assert run(fleet_hedge_delay_percentile=1.0) == run()

    def test_sequential_scenarios_unaffected_by_concurrent_run(self):
        """Running a concurrent day must not perturb a sequential scenario
        issued afterwards on a twin platform pair: the concurrent layer
        spends only virtual time and its own RNGs."""
        def warm_report(run_concurrent_first):
            platform = _fresh_platform()
            runner = ScenarioRunner(platform, ConsumerPopulation(10, seed=3), seed=3)
            if run_concurrent_first:
                runner.concurrent_day(
                    sessions=8, queries_per_session=1,
                    arrival_rate_per_ms=0.05, think_time_ms=50.0, seed=11,
                )
            report = runner.warm_up(consumers=6)
            return {
                key: value
                for key, value in report.as_dict().items()
                if key != "simulated_duration_ms"
            }

        assert warm_report(False) == warm_report(True)
