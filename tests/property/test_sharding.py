"""Property tests: the sharded neighbor index is equivalent to brute force.

The :class:`~repro.core.sharding.ShardedNeighborIndex` partitions the
community but is never allowed to change a single result: for random profile
populations, shard counts 1-8 and both routing strategies, the fan-out/merge
must return *exactly* the ranked list brute-force
:func:`~repro.core.similarity.find_similar_users` and the single
:class:`~repro.core.neighbors.ProfileNeighborIndex` return — same user ids,
same scores, same deterministic tie-break order — and the Cauchy-Schwarz
norm-bound early termination must be invisible in the output whether it is on
or off.  Incremental learner updates (which can migrate consumers between
shards under category routing) must preserve all of that too.
"""

from hypothesis import given, settings, strategies as st

from repro.core.neighbors import ProfileNeighborIndex
from repro.core.items import Item
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import InteractionKind
from repro.core.sharding import (
    ROUTING_STRATEGIES,
    ShardedNeighborIndex,
    find_similar_users_sharded,
)
from repro.core.similarity import SimilarityConfig, find_similar_users


# ---------------------------------------------------------------------------
# Strategies (mirroring tests/property/test_neighbor_index.py)
# ---------------------------------------------------------------------------

CATEGORIES = ["books", "electronics", "fashion", "groceries", "toys"]

term_names = st.text(alphabet="abcdefgh", min_size=1, max_size=5)
weights = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)
preferences = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)

shard_counts = st.integers(min_value=1, max_value=8)
routings = st.sampled_from(ROUTING_STRATEGIES)
categories_or_none = st.one_of(st.none(), st.sampled_from(CATEGORIES))


@st.composite
def populations(draw, min_size=2, max_size=14):
    """A dict user_id → Profile with random hierarchical content."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    population = {}
    for index in range(size):
        profile = Profile(f"user-{index}")
        for category in draw(
            st.lists(st.sampled_from(CATEGORIES), max_size=4, unique=True)
        ):
            entry = profile.category(category)
            entry.preference = draw(preferences)
            for term, weight in draw(
                st.dictionaries(term_names, weights, max_size=5)
            ).items():
                if weight > 0:
                    entry.terms.set(term, weight)
        population[profile.user_id] = profile
    return population


@st.composite
def similarity_configs(draw):
    return SimilarityConfig(
        preference_weight=draw(st.floats(min_value=0.1, max_value=1.0)),
        term_weight=draw(st.floats(min_value=0.0, max_value=1.0)),
        discard_tolerance=draw(st.floats(min_value=0.0, max_value=6.0)),
        min_similarity=draw(st.floats(min_value=0.0, max_value=0.4)),
        top_k=draw(st.integers(min_value=1, max_value=8)),
    )


@st.composite
def feedback_events(draw, user_ids):
    terms = draw(
        st.dictionaries(
            term_names,
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1,
            max_size=4,
        )
    )
    item = Item.build(
        item_id=draw(st.text(alphabet="xyz0123456789", min_size=1, max_size=8)),
        name="generated",
        category=draw(st.sampled_from(CATEGORIES)),
        subcategory=draw(st.sampled_from(["", "sub-a"])),
        terms=terms,
        price=draw(st.floats(min_value=0.0, max_value=500.0)),
    )
    return FeedbackEvent(
        user_id=draw(st.sampled_from(user_ids)),
        item=item,
        kind=draw(st.sampled_from(list(InteractionKind))),
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6)),
    )


def assert_exact_match(expected, actual, context=""):
    """Byte-for-byte: same ids, same order, *equal* scores (no tolerance)."""
    assert actual == expected, (
        f"sharded result diverged {context}: {actual!r} != {expected!r}"
    )


# ---------------------------------------------------------------------------
# Equivalence on static populations
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    population=populations(),
    config=similarity_configs(),
    category=categories_or_none,
    num_shards=shard_counts,
    routing=routings,
)
def test_sharded_equals_brute_force_and_single_index(
    population, config, category, num_shards, routing
):
    single = ProfileNeighborIndex(profiles=population.values(), config=config)
    sharded = ShardedNeighborIndex(
        profiles=population.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
    )
    for target in population.values():
        brute = find_similar_users(target, population.values(), config, category=category)
        assert_exact_match(
            brute,
            single.find_similar(target, category=category),
            context=f"(single index, category={category!r})",
        )
        assert_exact_match(
            brute,
            sharded.find_similar(target, category=category),
            context=(
                f"(shards={num_shards}, routing={routing!r}, category={category!r})"
            ),
        )


@settings(max_examples=30, deadline=None)
@given(
    population=populations(),
    config=similarity_configs(),
    category=categories_or_none,
    num_shards=shard_counts,
    routing=routings,
)
def test_early_termination_is_invisible(
    population, config, category, num_shards, routing
):
    """Norm-bound candidate skipping never changes a score, id or rank."""
    with_bound = ShardedNeighborIndex(
        profiles=population.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
        early_termination=True,
    )
    without_bound = ShardedNeighborIndex(
        profiles=population.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
        early_termination=False,
    )
    for target in population.values():
        assert_exact_match(
            without_bound.find_similar(target, category=category),
            with_bound.find_similar(target, category=category),
            context=f"(early termination, shards={num_shards}, routing={routing!r})",
        )


@settings(max_examples=25, deadline=None)
@given(
    population=populations(),
    config=similarity_configs(),
    num_shards=shard_counts,
    routing=routings,
)
def test_transient_sharded_helper_equals_brute_force(
    population, config, num_shards, routing
):
    target = next(iter(population.values()))
    brute = find_similar_users(target, population.values(), config)
    sharded = find_similar_users_sharded(
        target,
        population.values(),
        config,
        num_shards=num_shards,
        routing=routing,
    )
    assert_exact_match(brute, sharded)


@settings(max_examples=20, deadline=None)
@given(
    population=populations(min_size=3),
    config=similarity_configs(),
    num_shards=shard_counts,
    routing=routings,
)
def test_every_consumer_lives_in_exactly_one_shard(
    population, config, num_shards, routing
):
    """The disjoint-membership invariant behind the exact merge."""
    sharded = ShardedNeighborIndex(
        profiles=population.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
    )
    assert sum(sharded.shard_sizes()) == len(population)
    for user_id in population:
        owner = sharded.shard_of(user_id)
        assert owner is not None
        for index, shard in enumerate(sharded.shards):
            assert (user_id in shard) == (index == owner)


# ---------------------------------------------------------------------------
# Equivalence across incremental updates (including shard migration)
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    population=populations(),
    config=similarity_configs(),
    category=categories_or_none,
    num_shards=shard_counts,
    routing=routings,
)
def test_sharded_tracks_learner_updates(
    data, population, config, category, num_shards, routing
):
    """Learner hooks invalidate (and under category routing, migrate)
    exactly the touched consumer; results never go stale."""
    user_ids = sorted(population)
    sharded = ShardedNeighborIndex(
        profiles=population.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
    )
    learner = ProfileLearner()
    sharded.attach_to(learner)

    # Warm every shard first so updates hit populated caches.
    sharded.find_similar(population[user_ids[0]], category=category)

    events = data.draw(st.lists(feedback_events(user_ids), min_size=1, max_size=6))
    for event in events:
        learner.apply(population[event.user_id], event)

    # Membership stays disjoint even after migrations...
    assert sum(sharded.shard_sizes()) == len(population)
    # ...and every query still matches brute force exactly.
    for target_id in user_ids[:3]:
        target = population[target_id]
        brute = find_similar_users(target, population.values(), config, category=category)
        assert_exact_match(
            brute,
            sharded.find_similar(target, category=category),
            context=f"(after updates, shards={num_shards}, routing={routing!r})",
        )


@settings(max_examples=20, deadline=None)
@given(
    data=st.data(),
    population=populations(min_size=3),
    config=similarity_configs(),
    num_shards=shard_counts,
    routing=routings,
)
def test_registration_removal_and_rebalance_track_provider(
    data, population, config, num_shards, routing
):
    """Provider-backed sharded indexes reconcile membership on sync, and an
    explicit rebalance to a new shard count keeps results identical."""
    live = dict(population)
    sharded = ShardedNeighborIndex(
        provider=lambda: live.values(),
        config=config,
        num_shards=num_shards,
        routing=routing,
    )
    target = next(iter(live.values()))
    assert_exact_match(
        find_similar_users(target, live.values(), config),
        sharded.find_similar(target),
    )

    # A newcomer registers...
    newcomer = Profile("newcomer")
    newcomer.category(data.draw(st.sampled_from(CATEGORIES))).preference = data.draw(
        preferences
    )
    live[newcomer.user_id] = newcomer
    # ...and an existing consumer leaves.
    departed = sorted(live)[1]
    if departed != target.user_id:
        del live[departed]

    assert_exact_match(
        find_similar_users(target, live.values(), config),
        sharded.find_similar(target),
    )

    # Rebalancing to a different shard count changes placement only.
    new_count = data.draw(shard_counts)
    sharded.rebalance(num_shards=new_count)
    assert sum(sharded.shard_sizes()) == len(live)
    assert_exact_match(
        find_similar_users(target, live.values(), config),
        sharded.find_similar(target),
    )
