"""Property-based tests (hypothesis) for the platform and trading substrates."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.items import Item
from repro.ecommerce.auction import AuctionHouse
from repro.ecommerce.negotiation import NegotiationService
from repro.platform.clock import Scheduler
from repro.platform.metrics import summarize
from repro.platform.network import NetworkConfig, SimulatedNetwork


class TestSchedulerProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40))
    def test_callbacks_execute_in_nondecreasing_time_order(self, delays):
        scheduler = Scheduler()
        seen = []
        for delay in delays:
            scheduler.call_after(delay, lambda: seen.append(scheduler.clock.now))
        scheduler.run_until_idle()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=40))
    def test_clock_ends_at_latest_event(self, delays):
        scheduler = Scheduler()
        for delay in delays:
            scheduler.call_after(delay, lambda: None)
        scheduler.run_until_idle()
        assert math.isclose(scheduler.clock.now, max(delays), rel_tol=1e-9, abs_tol=1e-9)


class TestNetworkProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=20.0),
        st.integers(min_value=0, max_value=10_000_000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_latency_at_least_base_latency(self, base, jitter, payload, seed):
        network = SimulatedNetwork(NetworkConfig(base_latency_ms=base, jitter_ms=jitter, seed=seed))
        network.register_host("a")
        network.register_host("b")
        outcome = network.transfer_latency("a", "b", payload_bytes=payload)
        assert outcome.latency_ms >= base - 1e-9
        assert outcome.latency_ms <= base + jitter + payload / 1024.0 / network.config.bandwidth_kb_per_ms + 1e-6


class TestMetricsSummaryProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=100))
    def test_summary_orderings(self, samples):
        summary = summarize(samples)
        assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
        if samples:
            # Summation error can push the mean a few ULPs past the extremes.
            slack = 1e-9 * max(1.0, abs(summary["max"]))
            assert summary["min"] - slack <= summary["mean"] <= summary["max"] + slack
            assert summary["count"] == len(samples)


AUCTION_ITEM = Item.build("lot", "Lot", "books", terms={"novel": 0.5}, price=100.0)


class TestAuctionProperties:
    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60)
    def test_winner_never_pays_more_than_their_limit(self, max_price, competitors, seed):
        house = AuctionHouse("m", seed=seed, competitor_count=competitors)
        result = house.run_auction(AUCTION_ITEM, bidder="consumer", max_price=max_price)
        assert result.rounds >= 0
        assert result.bids >= 0
        if result.winner == "consumer":
            assert result.winning_bid <= max_price + 1e-9
        if result.winner is not None:
            assert result.reserve_met

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30)
    def test_auctions_are_deterministic_per_seed(self, seed):
        first = AuctionHouse("m", seed=seed).run_auction(AUCTION_ITEM, "c", max_price=130.0)
        second = AuctionHouse("m", seed=seed).run_auction(AUCTION_ITEM, "c", max_price=130.0)
        assert first.winner == second.winner
        assert first.winning_bid == second.winning_bid


class TestNegotiationProperties:
    @given(
        st.floats(min_value=1.0, max_value=300.0),
        st.floats(min_value=0.0, max_value=150.0),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=80)
    def test_agreed_price_respects_both_parties(self, buyer_max, reserve, buyer_rate, seller_rate):
        service = NegotiationService("m", max_rounds=12)
        outcome = service.negotiate(
            AUCTION_ITEM, buyer_max=buyer_max, seller_reserve=reserve,
            buyer_concession=buyer_rate, seller_concession=seller_rate,
        )
        assert outcome.rounds <= 12
        if outcome.agreed:
            # Prices are rounded to cents, so allow half-a-cent slack per bound.
            assert outcome.final_price <= max(buyer_max, AUCTION_ITEM.price) + 0.005
            assert outcome.final_price >= min(reserve, buyer_max) - 0.005
        if buyer_max < reserve:
            assert not outcome.agreed
