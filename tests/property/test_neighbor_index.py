"""Property tests: the neighbor index is equivalent to brute-force search.

The :class:`~repro.core.neighbors.ProfileNeighborIndex` is only allowed to be
*faster* than :func:`~repro.core.similarity.find_similar_users` — never
different.  These tests drive both implementations over random populations,
random similarity configurations and random discard-rule categories, and
require the same ranked neighbor set with the same scores (within 1e-9; in
practice they are bit-identical), including after incremental profile updates
flow through :class:`~repro.core.profile_learning.ProfileLearner` hooks.
"""

from hypothesis import given, settings, strategies as st

from repro.core.items import Item
from repro.core.neighbors import ProfileNeighborIndex, find_similar_users_indexed
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import InteractionKind
from repro.core.similarity import SimilarityConfig, find_similar_users


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

CATEGORIES = ["books", "electronics", "fashion", "groceries", "toys"]

term_names = st.text(alphabet="abcdefgh", min_size=1, max_size=5)
weights = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)
preferences = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def populations(draw, min_size=2, max_size=12):
    """A dict user_id → Profile with random hierarchical content."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    population = {}
    for index in range(size):
        profile = Profile(f"user-{index}")
        for category in draw(
            st.lists(st.sampled_from(CATEGORIES), max_size=4, unique=True)
        ):
            entry = profile.category(category)
            entry.preference = draw(preferences)
            for term, weight in draw(
                st.dictionaries(term_names, weights, max_size=5)
            ).items():
                if weight > 0:
                    entry.terms.set(term, weight)
            if draw(st.booleans()):
                sub = entry.subcategory(draw(st.sampled_from(["sub-a", "sub-b"])))
                for term, weight in draw(
                    st.dictionaries(term_names, weights, max_size=3)
                ).items():
                    if weight > 0:
                        sub.terms.set(term, weight)
        population[profile.user_id] = profile
    return population


@st.composite
def similarity_configs(draw):
    return SimilarityConfig(
        preference_weight=draw(st.floats(min_value=0.1, max_value=1.0)),
        term_weight=draw(st.floats(min_value=0.0, max_value=1.0)),
        discard_tolerance=draw(st.floats(min_value=0.0, max_value=6.0)),
        min_similarity=draw(st.floats(min_value=0.0, max_value=0.4)),
        top_k=draw(st.integers(min_value=1, max_value=8)),
    )


categories_or_none = st.one_of(st.none(), st.sampled_from(CATEGORIES))


@st.composite
def feedback_events(draw, user_ids):
    terms = draw(
        st.dictionaries(
            term_names,
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1,
            max_size=4,
        )
    )
    item = Item.build(
        item_id=draw(st.text(alphabet="xyz0123456789", min_size=1, max_size=8)),
        name="generated",
        category=draw(st.sampled_from(CATEGORIES)),
        subcategory=draw(st.sampled_from(["", "sub-a"])),
        terms=terms,
        price=draw(st.floats(min_value=0.0, max_value=500.0)),
    )
    return FeedbackEvent(
        user_id=draw(st.sampled_from(user_ids)),
        item=item,
        kind=draw(st.sampled_from(list(InteractionKind))),
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6)),
        rating=draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=5.0))),
    )


def assert_same_neighbors(brute, indexed):
    """Same ranked user ids and scores equal within 1e-9 (exact in practice)."""
    assert [user_id for user_id, _ in brute] == [user_id for user_id, _ in indexed]
    for (_, brute_score), (_, indexed_score) in zip(brute, indexed):
        assert abs(brute_score - indexed_score) <= 1e-9


# ---------------------------------------------------------------------------
# Equivalence on static populations
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(population=populations(), config=similarity_configs(), category=categories_or_none)
def test_indexed_equals_brute_force(population, config, category):
    index = ProfileNeighborIndex(profiles=population.values(), config=config)
    for target in population.values():
        brute = find_similar_users(target, population.values(), config, category=category)
        indexed = index.find_similar(target, category=category)
        assert_same_neighbors(brute, indexed)


@settings(max_examples=25, deadline=None)
@given(population=populations(), config=similarity_configs(), category=categories_or_none)
def test_transient_index_helper_equals_brute_force(population, config, category):
    target = next(iter(population.values()))
    brute = find_similar_users(target, population.values(), config, category=category)
    indexed = find_similar_users_indexed(
        target, population.values(), config, category=category
    )
    assert_same_neighbors(brute, indexed)


@settings(max_examples=25, deadline=None)
@given(population=populations(), config=similarity_configs())
def test_target_outside_population_equals_brute_force(population, config):
    """A detached target profile (not indexed) still gets identical results."""
    index = ProfileNeighborIndex(profiles=population.values(), config=config)
    outsider = Profile("outsider")
    outsider.category("books").preference = 5.0
    outsider.category("books").terms.set("abc", 1.0)
    for category in (None, "books"):
        brute = find_similar_users(
            outsider, population.values(), config, category=category
        )
        indexed = index.find_similar(outsider, category=category)
        assert_same_neighbors(brute, indexed)


# ---------------------------------------------------------------------------
# Equivalence across incremental updates
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(data=st.data(), population=populations(), config=similarity_configs(),
       category=categories_or_none)
def test_indexed_equals_brute_force_after_incremental_updates(
    data, population, config, category
):
    """Learner updates invalidate the index incrementally, never stale it."""
    user_ids = sorted(population)
    index = ProfileNeighborIndex(profiles=population.values(), config=config)
    learner = ProfileLearner()
    index.attach_to(learner)

    # Warm every cache first so updates hit populated entries.
    warm_target = population[user_ids[0]]
    index.find_similar(warm_target, category=category)

    events = data.draw(
        st.lists(feedback_events(user_ids), min_size=1, max_size=6)
    )
    for event in events:
        learner.apply(population[event.user_id], event)

    for target_id in user_ids[:3]:
        target = population[target_id]
        brute = find_similar_users(target, population.values(), config, category=category)
        indexed = index.find_similar(target, category=category)
        assert_same_neighbors(brute, indexed)


@settings(max_examples=20, deadline=None)
@given(data=st.data(), population=populations(min_size=3), config=similarity_configs())
def test_registration_and_removal_track_provider(data, population, config):
    """Provider-backed indexes pick up new and departed consumers on sync."""
    live = dict(population)
    index = ProfileNeighborIndex(provider=lambda: live.values(), config=config)
    target = next(iter(live.values()))
    assert_same_neighbors(
        find_similar_users(target, live.values(), config),
        index.find_similar(target),
    )

    # A newcomer registers...
    newcomer = Profile("newcomer")
    newcomer.category(data.draw(st.sampled_from(CATEGORIES))).preference = data.draw(
        preferences
    )
    live[newcomer.user_id] = newcomer
    # ...and an existing consumer leaves.
    departed = sorted(live)[1]
    if departed != target.user_id:
        del live[departed]

    assert_same_neighbors(
        find_similar_users(target, live.values(), config),
        index.find_similar(target),
    )
