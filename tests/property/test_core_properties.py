"""Property-based tests (hypothesis) for the recommendation core."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.items import Item
from repro.core.metrics import (
    catalog_coverage,
    f1_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    spearman_rank_correlation,
)
from repro.core.profile import Profile, TermVector
from repro.core.profile_learning import FeedbackEvent, LearningConfig, ProfileLearner
from repro.core.ratings import Interaction, InteractionKind, RatingsStore
from repro.core.similarity import cosine_similarity, pearson_correlation, profile_similarity


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

term_names = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
weights = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)
term_dicts = st.dictionaries(term_names, weights, max_size=8)
positive_term_dicts = st.dictionaries(
    term_names, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=8
)

categories = st.sampled_from(["books", "electronics", "fashion", "groceries"])
item_ids = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12)


@st.composite
def items(draw):
    terms = draw(st.dictionaries(term_names, st.floats(min_value=0.05, max_value=1.0),
                                 min_size=1, max_size=5))
    return Item.build(
        item_id=draw(item_ids),
        name="generated item",
        category=draw(categories),
        subcategory=draw(st.sampled_from(["", "sub-a", "sub-b"])),
        terms=terms,
        price=draw(st.floats(min_value=0.0, max_value=1000.0)),
    )


@st.composite
def profiles(draw):
    profile = Profile(draw(st.text(alphabet="abcxyz", min_size=1, max_size=8)))
    for category in draw(st.lists(categories, max_size=4, unique=True)):
        entry = profile.category(category)
        entry.preference = draw(st.floats(min_value=0.0, max_value=10.0))
        for term, weight in draw(term_dicts).items():
            if weight > 0:
                entry.terms.set(term, weight)
    return profile


# ---------------------------------------------------------------------------
# TermVector properties
# ---------------------------------------------------------------------------


class TestTermVectorProperties:
    @given(term_dicts)
    def test_cosine_is_bounded_and_symmetric(self, left_weights):
        left = TermVector({t: w for t, w in left_weights.items() if w > 0})
        right = TermVector({t: w * 2 for t, w in left_weights.items() if w > 0})
        value = left.cosine(right)
        assert 0.0 <= value <= 1.0 + 1e-9
        assert math.isclose(value, right.cosine(left), abs_tol=1e-9)

    @given(positive_term_dicts)
    def test_cosine_with_self_is_one(self, weights_dict):
        vector = TermVector(weights_dict)
        assert math.isclose(vector.cosine(vector.copy()), 1.0, abs_tol=1e-9)

    @given(positive_term_dicts, st.floats(min_value=0.1, max_value=1.0))
    def test_decay_never_increases_weights(self, weights_dict, factor):
        vector = TermVector(weights_dict)
        before = vector.as_dict()
        vector.decay(factor)
        for term, weight in vector.as_dict().items():
            assert weight <= before[term] + 1e-12

    @given(positive_term_dicts, positive_term_dicts)
    def test_merge_total_is_sum_of_totals(self, left_weights, right_weights):
        left = TermVector(left_weights)
        right = TermVector(right_weights)
        merged = left.merged_with(right)
        assert math.isclose(merged.total(), left.total() + right.total(), rel_tol=1e-9)


# ---------------------------------------------------------------------------
# Vector similarity properties
# ---------------------------------------------------------------------------


class TestSimilarityProperties:
    @given(term_dicts, term_dicts)
    def test_cosine_bounded(self, left, right):
        value = cosine_similarity(left, right)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(term_dicts, term_dicts)
    def test_pearson_bounded(self, left, right):
        value = pearson_correlation(left, right)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(profiles(), profiles())
    @settings(max_examples=50)
    def test_profile_similarity_bounded_and_symmetric(self, left, right):
        forward = profile_similarity(left, right)
        backward = profile_similarity(right, left)
        assert 0.0 <= forward <= 1.0
        assert math.isclose(forward, backward, abs_tol=1e-9)

    @given(profiles())
    @settings(max_examples=50)
    def test_profile_similarity_with_itself_is_maximal(self, profile):
        if profile.is_empty():
            assert profile_similarity(profile, profile.copy()) == 0.0
        else:
            other = profile.copy()
            other.user_id = profile.user_id + "-twin"
            assert profile_similarity(profile, other) >= profile_similarity(profile, Profile("empty"))


# ---------------------------------------------------------------------------
# Profile learning properties
# ---------------------------------------------------------------------------


class TestProfileLearningProperties:
    @given(st.lists(items(), min_size=1, max_size=15),
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=50)
    def test_weights_never_negative_and_preferences_capped(self, item_list, alpha):
        learner = ProfileLearner(LearningConfig(learning_rate=alpha))
        profile = Profile("user")
        for index, item in enumerate(item_list):
            learner.apply(profile, FeedbackEvent("user", item, InteractionKind.BUY,
                                                 timestamp=float(index)))
        for category in profile.categories.values():
            assert 0.0 <= category.preference <= learner.config.max_preference
            for _, weight in category.flattened_terms().items():
                assert weight >= 0.0

    @given(st.lists(items(), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_feedback_event_count_matches_events_applied(self, item_list):
        learner = ProfileLearner()
        profile = Profile("user")
        for item in item_list:
            learner.apply(profile, FeedbackEvent("user", item, InteractionKind.QUERY))
        assert profile.feedback_events == len(item_list)

    @given(st.lists(items(), min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_profile_roundtrips_through_dict(self, item_list):
        learner = ProfileLearner()
        profile = Profile("user")
        for item in item_list:
            learner.apply(profile, FeedbackEvent("user", item, InteractionKind.BUY))
        restored = Profile.from_dict(profile.to_dict())
        assert restored.preference_vector() == profile.preference_vector()
        assert restored.flattened_terms().as_dict() == profile.flattened_terms().as_dict()


# ---------------------------------------------------------------------------
# Ratings store properties
# ---------------------------------------------------------------------------

interaction_kinds = st.sampled_from(list(InteractionKind))
user_names = st.sampled_from(["u1", "u2", "u3", "u4"])


@st.composite
def interactions(draw):
    kind = draw(interaction_kinds)
    return Interaction(
        user_id=draw(user_names),
        item_id=draw(st.sampled_from(["a", "b", "c", "d", "e"])),
        kind=kind,
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6)),
        value=draw(st.floats(min_value=0.0, max_value=5.0)) if kind is InteractionKind.RATE else 0.0,
    )


class TestRatingsStoreProperties:
    @given(st.lists(interactions(), max_size=60))
    @settings(max_examples=50)
    def test_values_bounded_and_counts_consistent(self, interaction_list):
        store = RatingsStore(max_value=10.0)
        store.add_all(interaction_list)
        assert store.interaction_count == len(interaction_list)
        for user in store.users:
            for item, value in store.user_vector(user).items():
                assert 0.0 <= value <= 10.0
        assert 0.0 <= store.density() <= 1.0
        assert math.isclose(store.density() + store.sparsity(), 1.0, abs_tol=1e-9)

    @given(st.lists(interactions(), max_size=60))
    @settings(max_examples=50)
    def test_purchase_counts_match_buy_interactions(self, interaction_list):
        store = RatingsStore()
        store.add_all(interaction_list)
        expected = sum(1 for i in interaction_list if i.kind is InteractionKind.BUY)
        assert sum(store.purchases().values()) == expected


# ---------------------------------------------------------------------------
# Quality metric properties
# ---------------------------------------------------------------------------

id_lists = st.lists(st.sampled_from([f"i{i}" for i in range(20)]), max_size=15, unique=True)


class TestMetricProperties:
    @given(id_lists, id_lists, st.integers(min_value=1, max_value=15))
    def test_all_ranking_metrics_bounded(self, recommended, relevant, k):
        for metric in (precision_at_k, recall_at_k, f1_at_k, ndcg_at_k):
            value = metric(recommended, relevant, k)
            assert 0.0 <= value <= 1.0 + 1e-9

    @given(id_lists, st.integers(min_value=1, max_value=15))
    def test_perfect_recommendations_have_perfect_precision(self, relevant, k):
        if not relevant:
            return
        value = precision_at_k(relevant, relevant, min(k, len(relevant)))
        assert math.isclose(value, 1.0)

    @given(st.lists(id_lists, max_size=6), st.integers(min_value=1, max_value=50))
    def test_coverage_bounded(self, recommendation_lists, catalog_size):
        assert 0.0 <= catalog_coverage(recommendation_lists, catalog_size) <= 1.0

    @given(st.dictionaries(term_names, weights, min_size=2, max_size=10))
    def test_spearman_self_correlation_nonnegative(self, values):
        # A vector correlated with itself is either perfectly correlated or,
        # when every value ties, defined as zero.
        value = spearman_rank_correlation(values, values)
        assert value == 0.0 or math.isclose(value, 1.0, abs_tol=1e-9)
