"""Property tests: the adversarial subsystem is invisible until switched on.

The opt-in contract of the handshake/chaos/abuse stack: a platform
built with the default knobs (``handshake_trades=False``, no chaos
schedule, no adversary driver) must behave byte-identically to the
pre-adversarial platform — same envelope stream, same stats keys, same
metrics names.  And switching handshakes *on* may only touch the trade
path: the read-side surface (queries, neighbor streams, recommendation
answers) stays byte-identical to the unsecured same-seed platform.
"""

from __future__ import annotations

from repro.ecommerce import build_platform

SEED = 4321
USERS = [f"user-{index}" for index in range(24)]
KEYWORDS = ("book", "music", "garden", "movie")


def make(**overrides):
    defaults = dict(
        num_buyer_servers=2, replication_factor=1, seed=SEED,
        num_marketplaces=2, num_sellers=2, items_per_seller=10,
    )
    defaults.update(overrides)
    return build_platform(**defaults)


def drive(platform):
    """Deterministic honest traffic; returns the full envelope stream."""
    gateway = platform.gateway()
    stream = []
    for index, user_id in enumerate(USERS):
        keyword = KEYWORDS[index % len(KEYWORDS)]
        stream.append(gateway.login(user_id))
        stream.append(gateway.query(user_id, keyword))
        if index % 3 == 0:
            stream.append(gateway.recommendations(user_id, k=5))
        stream.append(gateway.logout(user_id))
    return stream


def witness(stream):
    """Status + result payload of every envelope, latencies excluded."""
    return [(r.status, repr(r.result), repr(r.error)) for r in stream]


PRE_HANDSHAKE_STATS_KEYS = {
    "listings", "stock", "sold", "transactions", "auctions", "negotiations",
}


class TestKnobsOff:
    def test_default_platform_exposes_no_adversarial_surface(self):
        platform = make()
        drive(platform)
        for market in platform.marketplaces:
            assert market.handshakes is None
            assert set(market.stats()) == PRE_HANDSHAKE_STATS_KEYS
        counters = platform.metrics.snapshot()["counters"]
        assert not [k for k in counters if k.startswith("api.auth.rejected")]
        assert not [k for k in counters if k.startswith("adversary.")]

    def test_default_envelope_stream_is_reproducible(self):
        first = witness(drive(make()))
        second = witness(drive(make()))
        assert first == second


class TestKnobsOn:
    def test_handshakes_do_not_perturb_the_read_surface(self):
        """Same seed, secured vs unsecured: identical non-trade envelopes."""
        plain = witness(drive(make()))
        secured = witness(drive(make(handshake_trades=True)))
        assert secured == plain

    def test_handshakes_only_add_stats_keys(self):
        platform = make(handshake_trades=True)
        drive(platform)
        for market in platform.marketplaces:
            stats = set(market.stats())
            assert PRE_HANDSHAKE_STATS_KEYS <= stats
            assert all(
                key.startswith("handshakes_")
                for key in stats - PRE_HANDSHAKE_STATS_KEYS
            )
