"""Property tests: elastic topology changes are byte-invisible (PR 9).

The elastic fleet's contract is that *where* a consumer's state lives is
unobservable from the query surface: a platform that splits shards, hands
them back, or loses and recovers servers mid-flight must answer every
similar-consumer query byte-identically to a static same-seed reference
that never changed topology.  These tests hold that line after every
individual migration step, including a crash *during* a split.

Satellite: the same invariant across scoring backends — the fleet fan-out
threads ``PlatformConfig.scoring_backend`` into per-shard scoring and
replica-answered (degraded) shards, and every available backend must
produce the identical neighbor stream.
"""

from repro.core.scoring import numpy_available
from repro.ecommerce import build_platform


def available_backends():
    backends = ["dict", "array"]
    if numpy_available():
        backends.append("numpy")
    return backends


SEED = 1234
USERS = [f"user-{index}" for index in range(48)]
KEYWORDS = ("book", "music", "garden", "movie")


def make(seed=SEED, **overrides):
    defaults = dict(num_buyer_servers=3, replication_factor=1, seed=seed)
    defaults.update(overrides)
    return build_platform(**defaults)


def drive(platform, users=USERS):
    """Deterministic traffic: registration, logins, queries and buys."""
    gateway = platform.gateway()
    for index, user_id in enumerate(users):
        gateway.register(user_id)
        gateway.login(user_id)
        keyword = KEYWORDS[index % len(KEYWORDS)]
        gateway.query(user_id, keyword)
        gateway.query(user_id, KEYWORDS[(index + 1) % len(KEYWORDS)])
        if index % 3 == 0:
            gateway.buy(user_id, f"{keyword}-1")
        gateway.logout(user_id)


def neighbor_stream(platform, users=USERS):
    """Every consumer's neighbor list — the byte-identity witness.

    Latencies are excluded on purpose: moving a shard legitimately changes
    *where* (and how fast) an answer is computed, never *what* it is.
    """
    return [platform.fleet.query_similar(user_id).neighbors for user_id in users]


def assert_identical(reference, elastic, context):
    assert neighbor_stream(elastic) == reference, context


def test_split_is_byte_invisible_at_every_step():
    reference_platform = make()
    elastic = make()
    drive(reference_platform)
    drive(elastic)
    reference = neighbor_stream(reference_platform)
    assert_identical(reference, elastic, "same-seed platforms must agree")

    fleet = elastic.fleet
    target = fleet.owner_of_shard(1)
    split = fleet.split_shard(0, target=target)
    step = 0
    while not split.done:
        split.step()
        step += 1
        assert_identical(reference, elastic, f"mid-split after step {step}")
    split.finalize()
    assert_identical(reference, elastic, "after split commit")
    # Splitting the child again (recursive lineage) stays invisible too.
    nested = fleet.split_shard(split.child, target=fleet.owner_of_shard(2))
    nested.run()
    assert_identical(reference, elastic, "after nested split")


def test_handback_is_byte_invisible_at_every_step():
    reference_platform = make()
    elastic = make()
    drive(reference_platform)
    drive(elastic)
    reference = neighbor_stream(reference_platform)

    fleet = elastic.fleet
    newcomer = elastic.add_buyer_server()
    assert_identical(reference, elastic, "after server join")
    fleet.transfer_shard(0, newcomer)
    assert_identical(reference, elastic, "after handback to the newcomer")
    fleet.transfer_shard(0, fleet.servers[0])
    assert_identical(reference, elastic, "after handing the shard home")
    elastic.remove_buyer_server(newcomer)
    assert_identical(reference, elastic, "after decommission")


def test_crash_during_split_preserves_byte_identity():
    """A server dies *mid-split*; both platforms fail over identically.

    The reference platform suffers the identical crash + promotion but no
    split — proving the in-flight migration neither loses consumers nor
    perturbs a single answer while the fleet is simultaneously failing
    over, and that the retargeted migration still commits cleanly.
    """
    reference_platform = make()
    elastic = make()
    drive(reference_platform)
    drive(elastic)

    fleet = elastic.fleet
    victim = fleet.owner_of_shard(0)
    target = fleet.owner_of_shard(1)
    split = fleet.split_shard(0, target=target)
    split.step(max(1, len(split.pending) // 2))

    # Crash the parent shard's owner in both worlds, then promote.
    for platform in (reference_platform, elastic):
        platform.failures.crash_host(victim.name)
        platform.fleet.handle_server_failure(0, strategy="promote")
    reference = neighbor_stream(reference_platform)
    assert_identical(reference, elastic, "degraded, split in flight")

    # The split finishes against the promoted owner.
    split.run()
    assert_identical(reference, elastic, "split committed after failover")
    assert elastic.fleet.lost_consumers == reference_platform.fleet.lost_consumers

    # Recovery converges both worlds again.
    for platform in (reference_platform, elastic):
        platform.failures.recover_host(victim.name)
        platform.fleet.recover_server(platform.fleet.servers[0])
    reference = neighbor_stream(reference_platform)
    assert_identical(reference, elastic, "after recovery")


def test_fanout_identical_across_scoring_backends():
    """Satellite 1: the fan-out answer stream is backend-invariant.

    Builds one platform per available scoring backend (same seed, same
    traffic) and asserts the full neighbor stream matches byte for byte —
    first healthy, then degraded with a crashed primary so a replica
    answers for its shard through the fleet-level backend.
    """
    platforms = [
        make(scoring_backend=backend) for backend in available_backends()
    ]
    for platform in platforms:
        drive(platform)
        assert (
            platform.fleet.scoring_backend
            == platform.config.scoring_backend
        )
    healthy = [neighbor_stream(platform) for platform in platforms]
    for stream in healthy[1:]:
        assert stream == healthy[0], "healthy fan-out differs across backends"

    # Degrade every platform the same way: the shard-0 primary dies and
    # its freshest replica answers in its stead (no failover yet).
    for platform in platforms:
        platform.failures.crash_host(platform.fleet.servers[0].name)
    degraded = [neighbor_stream(platform) for platform in platforms]
    for stream in degraded[1:]:
        assert stream == degraded[0], "degraded fan-out differs across backends"
