"""Integration tests for the buy / auction / negotiation workflow (Figure 4.3)."""

import pytest

from repro.core.ratings import InteractionKind
from repro.ecommerce.transactions import TransactionKind
from repro.errors import SessionError
from repro.experiments.figures import TRADE_WORKFLOW_STEPS


@pytest.fixture
def shopping(platform):
    """A logged-in consumer with one query already done (so items are known)."""
    session = platform.login("alice")
    results = session.query("books")
    assert results, "the fixture platform must list books"
    return platform, session, results


class TestDirectPurchase:
    def test_buy_completes_and_returns_transaction(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        outcome = session.buy(hit.item, marketplace=hit.marketplace)
        assert outcome.succeeded
        assert outcome.transaction.kind is TransactionKind.DIRECT_PURCHASE
        assert outcome.price_paid == pytest.approx(hit.item.price)

    def test_all_figure_43_steps_present_in_order(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        start = len(platform.event_log)
        session.buy(hit.item, marketplace=hit.marketplace)
        workflow = [
            e.category
            for e in platform.event_log.events[start:]
            if e.category.startswith("workflow.")
        ]
        positions = []
        for step in TRADE_WORKFLOW_STEPS:
            assert step in workflow, f"missing workflow step {step}"
            positions.append(workflow.index(step))
        assert positions == sorted(positions)

    def test_stock_decremented_on_the_marketplace(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        marketplace = next(m for m in platform.marketplaces if m.name == hit.marketplace)
        stock_before = marketplace.catalog.listing(hit.item.item_id).stock
        session.buy(hit.item, marketplace=hit.marketplace)
        assert marketplace.catalog.listing(hit.item.item_id).stock == stock_before - 1

    def test_transaction_recorded_in_user_db(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        session.buy(hit.item, marketplace=hit.marketplace)
        transactions = platform.buyer_server.user_db.transactions_of("alice")
        assert len(transactions) == 1
        assert transactions[0].item_id == hit.item.item_id

    def test_purchase_updates_profile_with_buy_behaviour(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        events_before = platform.buyer_server.user_db.profile("alice").feedback_events
        session.buy(hit.item, marketplace=hit.marketplace)
        profile = platform.buyer_server.user_db.profile("alice")
        assert profile.feedback_events == events_before + 1
        interactions = platform.buyer_server.user_db.ratings.interactions_of("alice")
        assert any(i.kind is InteractionKind.BUY for i in interactions)

    def test_purchased_item_not_recommended_again(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        session.buy(hit.item, marketplace=hit.marketplace)
        recommendations = session.recommendations(k=10)
        assert all(rec.item_id != hit.item.item_id for rec in recommendations)


class TestAuction:
    def test_generous_bid_wins_the_auction(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        outcome = session.join_auction(
            hit.item, max_price=hit.price * 1.4, marketplace=hit.marketplace
        )
        assert outcome.succeeded
        assert outcome.transaction.kind is TransactionKind.AUCTION_WIN
        assert outcome.price_paid <= hit.price * 1.4
        assert outcome.outcome["rounds"] >= 1

    def test_lowball_bid_loses_but_behaviour_still_recorded(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        events_before = platform.buyer_server.user_db.profile("alice").feedback_events
        outcome = session.join_auction(
            hit.item, max_price=hit.price * 0.3, marketplace=hit.marketplace
        )
        assert not outcome.succeeded
        assert outcome.transaction is None
        profile = platform.buyer_server.user_db.profile("alice")
        assert profile.feedback_events == events_before + 1
        interactions = platform.buyer_server.user_db.ratings.interactions_of("alice")
        assert any(i.kind is InteractionKind.AUCTION_BID for i in interactions)

    def test_auction_requires_max_price(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        with pytest.raises(SessionError):
            session._trade("buyer.auction.join", hit.item, marketplace=hit.marketplace)


class TestNegotiation:
    def test_reasonable_budget_reaches_agreement(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        outcome = session.negotiate(
            hit.item, max_price=hit.price * 0.95, marketplace=hit.marketplace
        )
        assert outcome.succeeded
        assert outcome.transaction.kind is TransactionKind.NEGOTIATED_PURCHASE
        assert outcome.price_paid <= hit.price

    def test_tiny_budget_fails_to_agree(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        outcome = session.negotiate(
            hit.item, max_price=hit.price * 0.1, marketplace=hit.marketplace
        )
        assert not outcome.succeeded
        assert outcome.transaction is None

    def test_negotiated_price_never_exceeds_budget(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        budget = hit.price * 0.9
        outcome = session.negotiate(hit.item, max_price=budget, marketplace=hit.marketplace)
        if outcome.succeeded:
            assert outcome.price_paid <= budget + 1e-6


class TestTradeBookkeeping:
    def test_each_trade_dispatches_exactly_one_mba(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        history_before = len(platform.buyer_server.bsmdb.mba_history())
        session.buy(hit.item, marketplace=hit.marketplace)
        session.join_auction(hit.item, max_price=hit.price * 1.3, marketplace=hit.marketplace)
        history = platform.buyer_server.bsmdb.mba_history()
        assert len(history) == history_before + 2
        assert all(record.returned_at is not None for record in history)

    def test_logout_after_trading_disposes_the_bra(self, shopping):
        platform, session, results = shopping
        hit = results[0]
        session.buy(hit.item, marketplace=hit.marketplace)
        session.logout()
        assert platform.buyer_server.context.active_count("BRA") == 0
        assert platform.buyer_server.online_users() == []
