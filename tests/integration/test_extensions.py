"""Integration tests for the §5.2 future-work extensions exposed end-to-end:
explicit ratings, weekly hottest merchandise and tied-sale (cross-sell)
suggestions, plus the experiment runner CLI."""

import pytest

from repro.core.ratings import InteractionKind
from repro.errors import SessionError
from repro.experiments.__main__ import main as experiments_main


@pytest.fixture
def shopper(platform):
    session = platform.login("alice")
    results = session.query("books")
    assert results
    yield platform, session, results
    if session.is_active:
        session.logout()


class TestExplicitRatings:
    def test_rate_updates_profile_and_ratings_store(self, shopper):
        platform, session, results = shopper
        item = results[0].item
        events_before = platform.buyer_server.user_db.profile("alice").feedback_events
        returned = session.rate(item, 4.5)
        assert returned == 4.5
        user_db = platform.buyer_server.user_db
        assert user_db.profile("alice").feedback_events == events_before + 1
        interactions = user_db.ratings.interactions_of("alice")
        assert any(i.kind is InteractionKind.RATE and i.value == 4.5 for i in interactions)

    def test_out_of_range_rating_rejected(self, shopper):
        _, session, results = shopper
        with pytest.raises(SessionError):
            session.rate(results[0].item, 7.0)

    def test_higher_ratings_teach_more(self, platform):
        low = platform.login("low-rater")
        high = platform.login("high-rater")
        item = low.query("books")[0].item
        high.query("books")
        low.rate(item, 1.0)
        high.rate(item, 5.0)
        user_db = platform.buyer_server.user_db
        low_weight = user_db.profile("low-rater").category(item.category).preference
        high_weight = user_db.profile("high-rater").category(item.category).preference
        assert high_weight > low_weight
        low.logout()
        high.logout()


class TestWeeklyHottest:
    def test_hottest_reflects_recent_purchases(self, shopper):
        platform, session, results = shopper
        hit = results[0]
        session.buy(hit.item, marketplace=hit.marketplace)
        hottest = session.weekly_hottest(k=5)
        assert hottest
        assert hottest[0].item_id == hit.item.item_id
        assert hottest[0].source == "weekly-hottest"

    def test_hottest_empty_before_any_purchase(self, shopper):
        _, session, _ = shopper
        assert session.weekly_hottest(k=5) == []

    def test_hottest_category_filter(self, shopper):
        platform, session, results = shopper
        hit = results[0]
        session.buy(hit.item, marketplace=hit.marketplace)
        assert session.weekly_hottest(k=5, category="electronics") == []
        assert session.weekly_hottest(k=5, category=hit.item.category)


class TestCrossSell:
    def test_basket_suggestions_come_from_co_purchases(self, platform):
        # Two consumers buy the same pair of items; a third with one of them
        # in the basket should be offered the other.
        first_pair = None
        for name in ("buyer-1", "buyer-2"):
            session = platform.login(name)
            hits = session.query("books")
            pair = hits[:2]
            if first_pair is None:
                first_pair = pair
            for hit in pair:
                session.buy(hit.item, marketplace=hit.marketplace)
            session.logout()

        shopper = platform.login("buyer-3")
        shopper.query("books")
        suggestions = shopper.cross_sell(basket=[first_pair[0].item.item_id])
        assert suggestions
        assert suggestions[0].item_id == first_pair[1].item.item_id
        shopper.logout()

    def test_history_based_cross_sell(self, platform):
        # buyer-1 and buyer-2 share purchases, so buyer-1's history yields
        # suggestions drawn from the co-purchase matrix.
        sessions = {}
        for name in ("buyer-1", "buyer-2"):
            session = platform.login(name)
            hits = session.query("books")
            for hit in hits[:2]:
                session.buy(hit.item, marketplace=hit.marketplace)
            sessions[name] = session
        extra = sessions["buyer-2"].query("books")
        bought_extra = [h for h in extra if h.item.item_id not in {
            t.item_id for t in platform.buyer_server.user_db.transactions_of("buyer-2")
        }]
        if bought_extra:
            sessions["buyer-2"].buy(bought_extra[0].item, marketplace=bought_extra[0].marketplace)
        suggestions = sessions["buyer-1"].cross_sell(k=5)
        # buyer-1 already owns the shared pair, so only genuinely new items appear.
        owned = {t.item_id for t in platform.buyer_server.user_db.transactions_of("buyer-1")}
        assert all(rec.item_id not in owned for rec in suggestions)
        for session in sessions.values():
            session.logout()

    def test_cross_sell_requires_login(self, platform):
        from repro.ecommerce.session import ConsumerSession

        platform.register_consumer("stranger")
        session = ConsumerSession(platform.buyer_server, "stranger")
        with pytest.raises(SessionError):
            session.cross_sell()


class TestExperimentRunnerCLI:
    def test_list_mode(self, capsys):
        assert experiments_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig42" in out and "cap4-quality" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["--only", "not-an-experiment"])

    def test_quick_single_experiment_runs(self, capsys):
        assert experiments_main(["--quick", "--only", "fig41"]) == 0
        out = capsys.readouterr().out
        assert "FIG-4.1" in out
        assert "bootstrap_latency_ms" in out
