"""Integration tests for the merchandise query workflow (Figure 4.2)."""

import pytest

from repro.agents.lifecycle import AgletState
from repro.errors import SessionError
from repro.experiments.figures import QUERY_WORKFLOW_STEPS


@pytest.fixture
def query_run(platform):
    """Login, run one query, return (platform, session, results, events)."""
    session = platform.login("alice")
    start = len(platform.event_log)
    results = session.query("books")
    events = platform.event_log.events[start:]
    return platform, session, results, events


class TestQueryWorkflow:
    def test_query_returns_merchandise_from_marketplaces(self, query_run):
        _, _, results, _ = query_run
        assert results
        assert all(result.item.category == "books" or
                   result.item.matches_keyword("books") for result in results)
        assert {result.marketplace for result in results} <= {"marketplace-1", "marketplace-2"}

    def test_all_figure_42_steps_present_in_order(self, query_run):
        _, _, _, events = query_run
        workflow = [e.category for e in events if e.category.startswith("workflow.")]
        positions = []
        for step in QUERY_WORKFLOW_STEPS:
            assert step in workflow, f"missing workflow step {step}"
            positions.append(workflow.index(step))
        assert positions == sorted(positions), "workflow steps out of order"

    def test_bra_deactivated_while_mba_away_then_reactivated(self, query_run):
        _, _, _, events = query_run
        categories = [e.category for e in events if e.category.startswith("workflow.")]
        deactivated = categories.index("workflow.bra-deactivated")
        queried = categories.index("workflow.marketplace-queried")
        activated = categories.index("workflow.bra-activated")
        assert deactivated < queried < activated

    def test_mba_visits_every_marketplace(self, query_run):
        _, _, _, events = query_run
        visited = [
            e.target for e in events if e.category == "workflow.marketplace-queried"
        ]
        assert visited == ["marketplace-1", "marketplace-2"]

    def test_mba_authenticated_and_recorded_in_bsmdb(self, query_run):
        platform, _, _, _ = query_run
        history = platform.buyer_server.bsmdb.mba_history()
        assert len(history) == 1
        record = history[0]
        assert record.task == "query"
        assert record.returned_at is not None
        assert record.authenticated
        assert platform.buyer_server.context.auth.verified_count >= 1

    def test_mba_disposed_after_return(self, query_run):
        platform, _, _, _ = query_run
        assert platform.buyer_server.context.active_count("MBA") == 0

    def test_bra_is_active_again_after_the_query(self, query_run):
        platform, session, _, _ = query_run
        bra = platform.buyer_server.context.get_local(session.bra_id)
        assert bra.state is AgletState.ACTIVE

    def test_query_behaviour_updates_profile_and_ratings(self, query_run):
        platform, _, results, _ = query_run
        user_db = platform.buyer_server.user_db
        profile = user_db.profile("alice")
        assert profile.feedback_events > 0
        assert profile.has_category("books")
        assert user_db.ratings.has_user("alice")

    def test_recommendations_accompany_the_results(self, query_run):
        _, session, _, _ = query_run
        assert session.last_recommendations is not None

    def test_query_latency_reflects_marketplace_hops(self, query_run):
        platform, _, _, events = query_run
        workflow = [e for e in events if e.category.startswith("workflow.")]
        start = workflow[0].timestamp
        end = workflow[-1].timestamp
        # Two marketplaces, ~5ms per hop, at least 3 hops of travel.
        assert end - start >= 10.0

    def test_query_restricted_to_one_marketplace(self, platform):
        session = platform.login("bob")
        results = session.query("books", marketplaces=["marketplace-2"])
        assert all(result.marketplace == "marketplace-2" for result in results)
        session.logout()

    def test_query_requires_login(self, platform):
        from repro.ecommerce.session import ConsumerSession

        session = ConsumerSession(platform.buyer_server, "stranger")
        with pytest.raises(SessionError):
            session.query("books")

    def test_second_query_reuses_the_same_bra(self, query_run):
        platform, session, _, _ = query_run
        bra_before = session.bra_id
        session.query("electronics")
        assert session.bra_id == bra_before
        assert platform.buyer_server.context.active_count("BRA") == 1
