"""Integration tests for the Figure 4.1 creation protocol (experiment FIG-4.1)."""

import pytest

from repro.errors import RegistrationError
from repro.ecommerce.platform_builder import build_platform


@pytest.fixture(scope="module")
def built_platform():
    return build_platform(num_marketplaces=2, num_sellers=2, items_per_seller=10, seed=41)


class TestCreationProtocol:
    def test_bootstrap_creates_all_functional_agents(self, built_platform):
        server = built_platform.buyer_server
        assert server.is_ready
        context = server.context
        assert context.active_count("BSMA") == 1
        assert context.active_count("PA") == 1
        assert context.active_count("HttpA") == 1

    def test_bsma_was_created_on_coordinator_and_dispatched_here(self, built_platform):
        bsma = built_platform.buyer_server.bsma
        assert bsma.aglet_id.endswith("@coordinator")
        assert bsma.location == "buyer-agent-server"
        assert bsma.info.hops == 1

    def test_protocol_steps_recorded_in_order(self, built_platform):
        categories = [
            event.category
            for event in built_platform.event_log
            if event.category.startswith("creation.")
        ]
        # Step 1: the request; steps 2-3: BSMA created and dispatched;
        # steps 4-6 happen on arrival (databases, PA, HttpA).
        assert categories.index("creation.request-buyer-server") < categories.index(
            "creation.bsma-created"
        )
        assert categories.index("creation.bsma-created") < categories.index(
            "creation.databases-initialized"
        )
        assert categories.index("creation.pa-created") < categories.index(
            "creation.httpa-created"
        )
        assert "creation.buyer-server-ready" in categories

    def test_databases_initialised_and_topology_recorded(self, built_platform):
        bsmdb = built_platform.buyer_server.bsmdb
        assert bsmdb.coordinator == "coordinator"
        assert bsmdb.marketplaces == ["marketplace-1", "marketplace-2"]
        assert bsmdb.seller_servers == ["seller-1", "seller-2"]

    def test_coordinator_registry_knows_every_server(self, built_platform):
        topology = built_platform.coordinator.topology()
        assert topology["marketplaces"] == ["marketplace-1", "marketplace-2"]
        assert topology["seller_servers"] == ["seller-1", "seller-2"]
        assert topology["buyer_servers"] == ["buyer-agent-server"]

    def test_double_bootstrap_rejected(self, built_platform):
        with pytest.raises(RegistrationError):
            built_platform.buyer_server.bootstrap()

    def test_coordinator_rejects_unknown_role(self, built_platform):
        with pytest.raises(RegistrationError):
            built_platform.coordinator.register_server("warehouse", "somewhere")

    def test_bootstrap_costs_network_time(self, built_platform):
        # The BSMA dispatch and the topology query must have advanced the clock.
        assert built_platform.now > 0.0
