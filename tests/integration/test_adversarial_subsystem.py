"""Integration coverage for the adversarial subsystem end to end.

Ties the three tentpole layers together on live platforms: secured
trades leave verifiable transcripts the auditor re-checks; the
adversary driver's attack mix is shed while honest chains complete in
the same scheduler drains; and the capstone ``chaos_marketplace_day``
scenario finishes with a clean, deterministic invariant audit.  Also
proves the auditor is not vacuous — a planted corruption is caught.
"""

from __future__ import annotations

import pytest

from repro.workload import AdversaryDriver, ConcurrentDriver, ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner
from repro.adversarial.audit import InvariantAuditor
from repro.adversarial.handshake import TAMPER_MODES
from repro.ecommerce.platform_builder import build_platform

ADMISSION = {
    "reads": {"operations": ["query"], "capacity": 20, "refill_per_ms": 0.05},
    "trades": {"operations": ["join_auction"], "capacity": 8, "refill_per_ms": 0.02},
}


def _secured_platform(seed: int = 5, **overrides):
    defaults = dict(
        num_marketplaces=2,
        num_sellers=2,
        items_per_seller=10,
        seed=seed,
        num_buyer_servers=2,
        replication_factor=1,
        handshake_trades=True,
        api_admission_classes=ADMISSION,
    )
    defaults.update(overrides)
    return build_platform(**defaults)


class TestSecuredTrades:
    def test_every_purchase_path_leaves_a_transcript(self):
        platform = _secured_platform()
        gateway = platform.gateway()
        gateway.login("alice")
        listings = platform.marketplaces[0].catalog.listings()
        bought = gateway.buy("alice", listings[0].item)
        auctioned = gateway.join_auction(
            "alice", listings[1].item, max_price=listings[1].item.price * 3
        )
        negotiated = gateway.negotiate(
            "alice", listings[2].item, max_price=listings[2].item.price * 3
        )
        assert bought.ok and auctioned.ok and negotiated.ok

        market = platform.marketplaces[0]
        trades = [
            response.result.transaction
            for response in (bought, auctioned, negotiated)
            if getattr(response.result, "transaction", None) is not None
        ]
        assert trades, "at least the direct buy must record a transaction"
        for txn in trades:
            transcript = market.trade_handshakes[txn.transaction_id]
            assert transcript.verified
            assert transcript.handshake_id in market.handshakes.completed

        audit = InvariantAuditor(platform).audit()
        assert audit.ok, audit.violations
        assert audit.checks["handshake-backed-trades"] == len(trades)

    def test_auditor_catches_planted_corruption(self):
        platform = _secured_platform()
        gateway = platform.gateway()
        gateway.login("alice")
        item = platform.marketplaces[0].catalog.listings()[0].item
        assert gateway.buy("alice", item).ok

        market = platform.marketplaces[0]
        txn = market.transactions[0]

        # Plant 1: duplicate the marketplace ledger entry (double mint).
        market.transactions.append(txn)
        report = InvariantAuditor(platform).audit()
        assert not report.ok
        assert any("double purchase" in v for v in report.violations)
        market.transactions.pop()

        # Plant 2: strip the handshake transcript (unbacked trade).
        transcript = market.trade_handshakes.pop(txn.transaction_id)
        report = InvariantAuditor(platform).audit()
        assert any("unbacked trade" in v for v in report.violations)
        market.trade_handshakes[txn.transaction_id] = transcript

        # Restored state audits clean again.
        assert InvariantAuditor(platform).audit().ok


class TestAdversaryDriver:
    def test_attack_mix_is_shed_with_zero_protocol_success(self):
        platform = _secured_platform(seed=6)
        driver = AdversaryDriver(platform, seed=6)
        report = driver.run(
            scalpers=5, bids_per_scalper=4, protocol_rounds=2, flood_requests=30
        )

        assert report.attacker_success_rate == 0.0
        assert report.protocol_succeeded == 0
        for tamper in TAMPER_MODES:
            assert report.protocol_attempts[tamper] == 2
            assert report.protocol_rejected[tamper] == 2
        # The admission classes shed part of the hot-auction and flood load.
        assert report.scalper_shed > 0
        assert report.flood_shed > 0
        assert report.statuses.get("rejected", 0) > 0

        counters = platform.metrics.snapshot()["counters"]
        assert counters["adversary.protocol.rejected"] == float(
            2 * len(TAMPER_MODES)
        )
        assert "adversary.protocol.succeeded" not in counters
        assert counters["adversary.scalper.shed"] == float(report.scalper_shed)
        for tamper in TAMPER_MODES:
            assert counters[f"api.auth.rejected.{tamper}"] == 2.0

    def test_honest_chains_complete_alongside_the_attack(self):
        platform = _secured_platform(seed=8)
        population = ConsumerPopulation(12, seed=8)
        adversary = AdversaryDriver(platform, seed=8)
        honest = ConcurrentDriver(platform, population, seed=8)

        adversary.inject(
            scalpers=4, bids_per_scalper=3, protocol_rounds=1, flood_requests=15
        )
        honest_report = honest.run(
            sessions=10,
            queries_per_session=1,
            arrival_rate_per_ms=0.05,
            think_time_ms=100.0,
            recommendation_probability=0.2,
        )
        attack_report = adversary.collect()

        # Honest sessions completed despite sharing the drain with attacks.
        assert honest_report.completed == honest_report.requests
        assert attack_report.attacker_success_rate == 0.0

        merged_statuses = dict(honest_report.statuses)
        for status, count in attack_report.statuses.items():
            merged_statuses[status] = merged_statuses.get(status, 0) + count
        audit = InvariantAuditor(platform).audit(
            statuses=merged_statuses, error_codes=attack_report.error_codes
        )
        assert audit.ok, audit.violations

    def test_same_seed_attacks_are_identical(self):
        reports = []
        for _ in range(2):
            platform = _secured_platform(seed=9)
            reports.append(
                AdversaryDriver(platform, seed=9)
                .run(scalpers=3, bids_per_scalper=2,
                     protocol_rounds=1, flood_requests=10)
                .as_dict()
            )
        assert reports[0] == reports[1]


class TestChaosMarketplaceDay:
    def _run(self, seed: int = 11):
        platform = _secured_platform(seed=seed, num_buyer_servers=3)
        population = ConsumerPopulation(20, seed=seed)
        runner = ScenarioRunner(platform, population, seed=seed)
        return runner.chaos_marketplace_day(
            windows=3,
            sessions_per_window=10,
            chaos_outages=2,
            chaos_horizon_ms=4_000.0,
            chaos_mean_gap_ms=600.0,
            chaos_mean_outage_ms=1_500.0,
            scalpers=3,
            bids_per_scalper=2,
            protocol_rounds=1,
            flood_requests=10,
            seed=seed,
        )

    def test_chaos_day_finishes_with_a_clean_audit(self):
        report = self._run()
        assert report.scenario == "chaos_marketplace_day"
        assert report.audit["ok"], report.audit["violations"]
        assert report.attacker_success_rate == 0.0
        assert report.requests > 0
        assert report.outages > 0
        for tamper in TAMPER_MODES:
            assert report.auth_rejections.get(tamper, 0) > 0

    def test_chaos_day_is_deterministic(self):
        assert self._run(seed=12).as_dict() == self._run(seed=12).as_dict()

    def test_chaos_day_requires_a_secured_fleet(self):
        from repro.errors import WorkloadError

        unsecured = build_platform(
            num_marketplaces=1, num_sellers=1, items_per_seller=5, seed=1,
            num_buyer_servers=2, replication_factor=1,
        )
        runner = ScenarioRunner(unsecured, ConsumerPopulation(5, seed=1), seed=1)
        with pytest.raises(WorkloadError, match="handshake_trades"):
            runner.chaos_marketplace_day(windows=1, sessions_per_window=2)

        no_fleet = build_platform(
            num_marketplaces=1, num_sellers=1, items_per_seller=5, seed=1,
            handshake_trades=True,
        )
        runner = ScenarioRunner(no_fleet, ConsumerPopulation(5, seed=1), seed=1)
        with pytest.raises(WorkloadError, match="fleet"):
            runner.chaos_marketplace_day(windows=1, sessions_per_window=2)
