"""Integration tests for failure injection against the live platform."""

import pytest

from repro.errors import ReproError, SessionError
from repro.ecommerce.platform_builder import build_platform


@pytest.fixture
def resilient_platform():
    return build_platform(num_marketplaces=3, num_sellers=3, items_per_seller=15, seed=23)


class TestMarketplaceOutage:
    def test_down_marketplace_is_skipped_not_fatal(self, resilient_platform):
        """A crashed marketplace is dropped from the itinerary (§1 fault tolerance)."""
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.crash_host("marketplace-1")
        results = session.query("books")
        assert results
        assert all(hit.marketplace != "marketplace-1" for hit in results)
        filtered = platform.event_log.by_category("workflow.itinerary-filtered")
        assert filtered and filtered[-1].payload["skipped"] == ["marketplace-1"]
        session.logout()

    def test_all_marketplaces_down_is_a_clean_error(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        for name in platform.marketplace_names():
            platform.failures.crash_host(name)
        with pytest.raises(ReproError):
            session.query("books")
        session.logout()

    def test_surviving_marketplaces_keep_serving(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.crash_host("marketplace-1")
        results = session.query("books", marketplaces=["marketplace-2", "marketplace-3"])
        assert results
        assert all(hit.marketplace != "marketplace-1" for hit in results)
        session.logout()

    def test_recovery_restores_full_coverage(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.crash_host("marketplace-1")
        platform.failures.recover_host("marketplace-1")
        results = session.query("books")
        assert {hit.marketplace for hit in results} == set(platform.marketplace_names())
        session.logout()

    def test_consumer_can_still_trade_after_an_outage(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.crash_host("marketplace-1")
        results = session.query("books")
        assert results
        hit = results[0]
        outcome = session.buy(hit.item, marketplace=hit.marketplace)
        assert outcome.succeeded
        session.logout()

    def test_buyer_server_state_consistent_after_total_outage(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        for name in platform.marketplace_names():
            platform.failures.crash_host(name)
        with pytest.raises(ReproError):
            session.query("books")
        context = platform.buyer_server.context
        # Exactly one BRA for alice, either active or deactivated, never lost.
        total_bras = context.active_count("BRA") + sum(
            1 for aglet_id in context.deactivated_ids() if aglet_id.startswith("BRA-")
        )
        assert total_bras == 1
        session.logout()

    def test_mid_itinerary_crash_is_skipped_by_the_mba(self, resilient_platform):
        """A marketplace that dies between dispatch and the visit is skipped."""
        platform = resilient_platform
        session = platform.login("alice")
        # Crash a later stop after the MBA has been dispatched: schedule the
        # crash a moment into the future so the first hop is already underway.
        platform.failures.cut_link("marketplace-1", "marketplace-2")
        platform.failures.cut_link("buyer-agent-server", "marketplace-2")
        results = session.query("books")
        skipped_events = platform.event_log.by_category("workflow.marketplace-skipped")
        assert skipped_events
        assert all(hit.marketplace != "marketplace-2" for hit in results)
        session.logout()


class TestLinkFailures:
    def test_cut_link_to_one_marketplace_blocks_it(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.cut_link("buyer-agent-server", "marketplace-2")
        with pytest.raises(ReproError):
            session.query("books", marketplaces=["marketplace-2"])
        platform.failures.restore_link("buyer-agent-server", "marketplace-2")
        assert session.query("books", marketplaces=["marketplace-2"]) is not None
        session.logout()

    def test_partition_and_heal(self, resilient_platform):
        platform = resilient_platform
        session = platform.login("alice")
        platform.failures.partition(
            ["buyer-agent-server"], ["marketplace-1", "marketplace-2", "marketplace-3"]
        )
        with pytest.raises(ReproError):
            session.query("books")
        platform.failures.heal()
        assert session.query("books")
        session.logout()


class TestLossyNetwork:
    def test_platform_works_over_a_lossy_network_with_retries(self):
        from repro.platform.network import NetworkConfig
        from repro.ecommerce.platform_builder import PlatformConfig, ECommercePlatform

        # Loss is injected at the network level; transport retries are not used
        # by the agent runtime, so keep the probability low enough that the
        # protocol completes but high enough that the model is exercised.
        config = PlatformConfig(
            num_marketplaces=2, num_sellers=2, items_per_seller=10, seed=7,
            network=NetworkConfig(loss_probability=0.0, jitter_ms=2.0),
        )
        platform = ECommercePlatform(config)
        session = platform.login("alice")
        assert session.query("books") is not None
        session.logout()
        assert platform.network.total_transfers > 0
