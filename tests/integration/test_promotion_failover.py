"""Integration tests for replica *promotion* failover and quorum reads.

The PR-4 contract, pinned end to end:

- promotion performs **zero reads** against the crashed host's in-memory
  stores (poisoned-accessor enforcement, like the PR-3 drain tests);
- **no consumer re-registration**: the shard→owner map is updated in place —
  assignments, shard ids and registration timestamps are untouched, and the
  fleet's migration counter never moves;
- post-promotion fleet queries are byte-identical to a single server holding
  the whole community, for every consumer whose state reached the promoted
  replica;
- the dead primary's replication stream is retired: consumed replica
  discarded, frozen lag gauges removed, survivors that replicated to the
  dead host retargeted to a new live ring successor;
- double failures fall back to the next-freshest replica (or report lost
  consumers), and the quorum-aware degraded read answers an unreachable
  shard from its freshest replica, marked stale.
"""

import pytest

from repro.errors import ECommerceError, FleetUnavailableError
from repro.core.similarity import find_similar_users
from repro.ecommerce.platform_builder import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

CONSUMERS = [f"consumer-{index}" for index in range(10)]


def _build(num_buyer_servers=3, **overrides):
    return build_platform(seed=11, num_buyer_servers=num_buyer_servers, **overrides)


def _drive_workload(platform, consumers=CONSUMERS):
    keyword = next(iter(platform.catalog_view())).terms[0][0]
    for index, user_id in enumerate(consumers):
        session = platform.login(user_id)
        results = session.query(keyword)
        if results and index % 2 == 0:
            session.buy(results[0].item, marketplace=results[0].marketplace)
        session.logout()


def _consumer_state(user_db, user_id):
    return (
        user_db.profile(user_id).to_dict(),
        user_db.ratings.interactions_of(user_id),
        user_db.transactions_of(user_id),
    )


def _poison(user_db):
    """Make every UserDB (and ratings) accessor raise on touch."""

    def boom(*args, **kwargs):
        raise AssertionError("promotion failover read the crashed server's memory")

    for name in (
        "register", "unregister", "is_registered", "user", "record_login",
        "profile", "store_profile", "profiles", "profiles_version",
        "record_transaction", "transactions_of", "all_transactions",
        "record_interaction",
    ):
        setattr(user_db, name, boom)
    for name in ("add", "remove_user", "interactions_of", "user_vector", "items_of"):
        setattr(user_db.ratings, name, boom)


def _victim_shard(fleet):
    sizes = fleet.shard_sizes()
    return max(range(len(sizes)), key=lambda shard: (sizes[shard], -shard))


class TestPromotion:
    def test_promotion_is_in_place_and_byte_identical(self):
        """Zero dead reads, zero re-registration, single-server-identical."""
        platform = _build(replication_factor=1)
        reference = _build(num_buyer_servers=1)
        fleet = platform.fleet
        _drive_workload(platform)
        _drive_workload(reference)

        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)
        assert doomed, "the victim shard must own consumers for this test"
        expected_promoted = dead.replication.peers[0]

        reference_state = {
            user_id: _consumer_state(dead.user_db, user_id) for user_id in doomed
        }
        registered_at = {
            user_id: dead.user_db.user(user_id).registered_at for user_id in doomed
        }
        assignment_before = {user_id: fleet.shard_of(user_id) for user_id in CONSUMERS}
        migrations_before = fleet.migrated_consumers

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        moved = fleet.handle_server_failure(victim)

        assert moved == len(doomed)
        assert fleet.lost_consumers == 0
        assert fleet.promotions == 1
        assert fleet.promoted_consumers == len(doomed)
        # In-place ownership update: no re-registration, no assignment churn.
        assert fleet.migrated_consumers == migrations_before
        for user_id in CONSUMERS:
            assert fleet.shard_of(user_id) == assignment_before[user_id]
        for user_id in doomed:
            owner = fleet.server_for(user_id)
            assert owner is expected_promoted
            assert _consumer_state(owner.user_db, user_id) == reference_state[user_id]
            # The registration record survived verbatim — nobody re-registered.
            assert owner.user_db.user(user_id).registered_at == registered_at[user_id]
        # The promotion was recorded (and no drain ran).
        events = platform.event_log.by_category("fleet.failover-promotion")
        assert len(events) == 1
        assert events[0].payload["adopted"] == len(doomed)
        assert platform.event_log.by_category("fleet.failover-drain") == []
        # Post-promotion fleet answers are byte-identical to one server
        # holding the whole community.
        reference_db = reference.buyer_server.user_db
        config = reference.buyer_server.recommendations.similarity_config
        for user_id in CONSUMERS:
            brute = find_similar_users(
                reference_db.profile(user_id), reference_db.profiles(), config
            )
            assert fleet.find_similar(user_id) == brute

    def test_promotion_updates_coordinator_shard_map(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        promoted = dead.replication.peers[0]

        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim)

        topology = platform.coordinator.topology()
        shard_map = topology["shard_map"]
        assert dead.name not in shard_map
        assert victim in shard_map[promoted.name]
        assert dead.name not in topology["replica_map"]

    def test_promotion_retires_the_dead_wal_and_retargets_survivors(self):
        """Gauges of the retired stream vanish; survivors that replicated to
        the dead host pick a new live ring successor and converge onto it."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        upstream = next(
            server for server in fleet.servers
            if any(peer is dead for peer in server.replication.peers)
        )

        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim)

        # The dead primary's lag gauges are gone, not frozen at a stale value.
        prefix = f"replication.lag.{dead.name}->"
        assert not any(
            name.startswith(prefix) for name in platform.metrics.gauges()
        )
        # The survivor that streamed to the dead host no longer does...
        assert not any(peer is dead for peer in upstream.replication.peers)
        assert upstream.replication.peers, "the survivor must have a new peer"
        # ...its old gauge went with the peer...
        assert (
            f"replication.lag.{upstream.name}->{dead.name}"
            not in platform.metrics.gauges()
        )
        # ...and the new replica has fully caught up with the survivor's log.
        replacement = upstream.replication.peers[0]
        state = replacement.replication.hosted[upstream.name]
        assert state.applied_seq == upstream.replication.log.last_seq
        assert upstream.replication.lag_of(replacement.name) == 0

    def test_second_failure_promotes_the_promoted_servers_shards_onward(self):
        """A promoted server owns several shards; when it dies too, its own
        freshest replica adopts all of them — including the adopted ones,
        whose history reached it through the promoted server's WAL."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        promoted = dead.replication.peers[0]

        reference_neighbors = {
            user_id: fleet.find_similar(user_id) for user_id in CONSUMERS
        }
        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim)
        assert fleet.find_similar(CONSUMERS[0]) == reference_neighbors[CONSUMERS[0]]

        promoted_shard = fleet.servers.index(promoted)
        served_before = fleet.consumers_served_by(promoted)
        assert served_before  # owns its own shard plus the adopted one
        platform.failures.crash_host(promoted.name)
        _poison(promoted.user_db)
        moved = fleet.handle_server_failure(promoted_shard)

        assert moved == len(served_before)
        assert fleet.lost_consumers == 0
        survivor = next(
            server for server in fleet.servers
            if server.context.host.is_running
        )
        for user_id in CONSUMERS:
            assert fleet.server_for(user_id) is survivor
            assert fleet.find_similar(user_id) == reference_neighbors[user_id]


class TestAdoptedStateIsDurable:
    def test_adopted_login_history_reaches_the_promoted_servers_replicas(self):
        """The adopted consumers' aggregate login history is durable state:
        it must flow through the promoted server's WAL to its own replicas,
        not just be patched into its live UserDB."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)
        expected = {
            user_id: (
                dead.user_db.user(user_id).logins,
                dead.user_db.user(user_id).last_login_at,
            )
            for user_id in doomed
        }
        assert any(logins > 0 for logins, _ in expected.values())

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        fleet.handle_server_failure(victim)
        promoted = fleet.server_for(doomed[0])
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )

        peer = promoted.replication.peers[0]
        replica = peer.replication.hosted[promoted.name]
        assert promoted.replication.lag_of(peer.name) == 0
        for user_id in doomed:
            live = promoted.user_db.user(user_id)
            assert (live.logins, live.last_login_at) == expected[user_id]
            shadow = replica.db.user(user_id)
            assert (shadow.logins, shadow.last_login_at) == expected[user_id]


class TestDoubleFailure:
    def test_falls_back_to_next_freshest_replica(self):
        """Primary and its freshest replica both down: the next-freshest
        holder is promoted and every replicated consumer survives."""
        platform = _build(num_buyer_servers=4, replication_factor=2)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)
        assert doomed
        first_peer, second_peer = dead.replication.peers
        reference_state = {
            user_id: _consumer_state(dead.user_db, user_id) for user_id in doomed
        }

        platform.failures.crash_host(dead.name)
        platform.failures.crash_host(first_peer.name)
        _poison(dead.user_db)
        _poison(first_peer.user_db)
        moved = fleet.handle_server_failure(victim)

        assert moved == len(doomed)
        assert fleet.lost_consumers == 0
        for user_id in doomed:
            owner = fleet.server_for(user_id)
            assert owner is second_peer
            assert _consumer_state(owner.user_db, user_id) == reference_state[user_id]

    def test_consumers_beyond_every_live_replica_are_lost(self):
        """State that only ever reached now-dead replicas is reported lost,
        never resurrected empty."""
        platform = _build(num_buyer_servers=4, replication_factor=2)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        first_peer, second_peer = dead.replication.peers
        survivors_before = fleet.consumers_of(victim)

        # The second peer stops receiving anything; an orphan registers whose
        # state therefore only reaches the first peer.
        platform.network.cut_link(dead.name, second_peer.name, both_ways=False)
        orphan = next(
            f"orphan-{index}"
            for index in range(1000)
            if fleet.router.shard_for_user(f"orphan-{index}") == victim
        )
        platform.login(orphan).logout()
        assert fleet.shard_of(orphan) == victim
        assert dead.replication.lag_of(second_peer.name) > 0

        # Now both the primary and the only replica that knew the orphan die.
        platform.failures.crash_host(dead.name)
        platform.failures.crash_host(first_peer.name)
        _poison(dead.user_db)
        _poison(first_peer.user_db)
        moved = fleet.handle_server_failure(victim)

        assert moved == len(survivors_before)
        assert fleet.lost_consumers == 1
        assert not fleet.is_registered(orphan)
        lost_events = platform.event_log.by_category("fleet.consumer-lost")
        assert [event.payload["user_id"] for event in lost_events] == [orphan]
        # The lost consumer can register afresh on a live server.
        platform.login(orphan).logout()
        assert fleet.server_for(orphan).context.host.is_running


class TestPromotionRecovery:
    def test_recovered_host_is_purged_and_ownership_stays_promoted(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        promoted = dead.replication.peers[0]
        doomed = fleet.consumers_of(victim)

        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim)
        platform.failures.recover_host(dead.name)
        purged = fleet.handle_server_recovery(victim)

        assert purged == len(doomed)
        for user_id in doomed:
            assert not dead.user_db.is_registered(user_id)
        # Ownership is stable: a new consumer hashing to the victim shard is
        # served by the promoted server, not clawed back by the rejoiner.
        rejoiner = next(
            f"rejoin-{index}"
            for index in range(1000)
            if fleet.router.shard_for_user(f"rejoin-{index}") == victim
        )
        platform.login(rejoiner).logout()
        assert fleet.server_for(rejoiner) is promoted
        # Nobody is scored twice after recovery.
        for user_id in CONSUMERS:
            neighbors = fleet.find_similar(user_id)
            ids = [uid for uid, _ in neighbors]
            assert len(ids) == len(set(ids))
        # The recovered host dropped replicas for primaries that no longer
        # stream to it (they retargeted while it was down).
        for primary in fleet.servers:
            if primary is dead:
                continue
            if dead.name in {peer.name for peer in primary.replication.peers}:
                continue
            assert primary.name not in dead.replication.hosted

    def test_recovered_host_rejoins_the_replication_ring(self):
        """Recovery is not dead weight: primaries whose ideal ring successor
        is the recovered host swap their stand-in peer back for it, the new
        replica converges, and the host is a viable promotion target for the
        next failure."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        # With factor 1 and ring wiring, the dead host's predecessor ideally
        # streams to it.
        predecessor = next(
            server for server in fleet.servers
            if any(peer is dead for peer in server.replication.peers)
        )

        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim)
        # While down, the predecessor streams to a stand-in, not the dead host.
        assert not any(peer is dead for peer in predecessor.replication.peers)

        platform.failures.recover_host(dead.name)
        fleet.handle_server_recovery(victim)

        # The predecessor swapped back, the CA agrees, and the new replica
        # has fully caught up (snapshot/full-log bootstrap on rewire).
        assert any(peer is dead for peer in predecessor.replication.peers)
        assert predecessor.replication.lag_of(dead.name) == 0
        # The stand-in's replica of the predecessor was discarded at swap
        # time — no orphaned frozen shadow state accumulates.
        for stand_in in fleet.servers:
            if stand_in in (dead, predecessor):
                continue
            if any(peer is stand_in for peer in predecessor.replication.peers):
                continue
            assert predecessor.name not in stand_in.replication.hosted
        topology = platform.coordinator.topology()
        assert dead.name in topology["replica_map"][predecessor.name]
        state = dead.replication.hosted[predecessor.name]
        assert state.applied_seq == predecessor.replication.log.last_seq
        assert set(state.db.user_ids) == set(predecessor.user_db.user_ids)

        # And the recovered host really can be promoted when its primary dies.
        platform.failures.crash_host(predecessor.name)
        _poison(predecessor.user_db)
        moved = fleet.handle_server_failure(fleet.servers.index(predecessor))
        assert moved > 0
        for user_id in fleet.consumers_served_by(dead):
            assert fleet.server_for(user_id) is dead


class TestQuorumReads:
    def test_crashed_shard_is_answered_from_its_freshest_replica(self):
        """Before any failover runs, a fleet query answers the dead shard
        from its replica — byte-identical when the replica was caught up —
        and reports it stale instead of unreachable."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]

        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )
        full = fleet.query_similar(target)
        assert not full.degraded

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        result = fleet.query_similar(target)

        assert result.degraded
        assert result.unreachable_shards == ()
        assert result.stale_shards == {dead.name: 0}  # replica was caught up
        assert result.neighbors == full.neighbors  # nothing was actually stale

    def test_target_on_a_crashed_shard_is_resolved_from_the_replica(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        target = fleet.consumers_of(victim)[0]
        full = fleet.query_similar(target)

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        result = fleet.query_similar(target)

        assert result.degraded
        assert dead.name in result.stale_shards
        assert result.neighbors == full.neighbors

    def test_partitioned_shard_reports_its_exact_lag(self):
        """A partitioned (but running) primary's log is readable, so the
        stale answer carries the exact replica lag."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        isolated = fleet.servers[victim]
        peer = isolated.replication.peers[0]
        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )

        # Cut replication first so the replica lags, then partition the
        # primary away from everyone: queries must fall back to the replica.
        platform.network.cut_link(isolated.name, peer.name, both_ways=False)
        _drive_workload(platform)
        expected_lag = isolated.replication.lag_of(peer.name)
        assert expected_lag > 0
        others = [s.name for s in fleet.servers if s is not isolated]
        platform.failures.partition([isolated.name], others)

        result = fleet.query_similar(target)
        assert result.stale_shards == {isolated.name: expected_lag}

    def test_drained_shard_is_not_answered_from_its_consumed_replica(self):
        """After a drain the dead shard's community lives on survivors' live
        shards; answering from the consumed replica would score everyone
        twice with frozen pre-drain state.  PR-3 behavior is preserved: the
        shard is skipped and the query is not marked stale."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        reference = {user_id: fleet.find_similar(user_id) for user_id in CONSUMERS}

        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim, strategy="drain")
        result = fleet.query_similar(CONSUMERS[0])

        assert result.stale_shards == {}
        assert result.unreachable_shards == (dead.name,)
        # Every consumer is scored exactly once, from their live owner.
        for user_id in CONSUMERS:
            assert fleet.find_similar(user_id) == reference[user_id]

    def test_is_registered_never_reads_the_dead_hosts_memory(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        # Resolved from the live replica, not the poisoned dead UserDB.
        for user_id in doomed:
            assert fleet.is_registered(user_id)
        assert not fleet.is_registered("never-registered")

    def test_unreplicated_crashed_shard_stays_unreachable(self):
        platform = _build()  # no replication wired
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )
        platform.failures.crash_host(dead.name)

        result = fleet.query_similar(target)
        assert result.unreachable_shards == (dead.name,)
        assert result.stale_shards == {}


class TestReplicaIndexEquivalence:
    """Degraded/hedged reads answer from a per-replica neighbor index.

    :meth:`~repro.ecommerce.replication.ReplicaState.neighbor_index` must be
    a pure accelerator: byte-identical to brute-forcing the replica's shadow
    profiles at any lag (and hence to the primary's own answer at zero lag),
    re-indexing only the consumers the WAL touched in between, and — like
    every other failover read — never touching the dead primary's memory.
    """

    def _catch_up(self, platform):
        platform.scheduler.run_for(
            platform.config.replication_anti_entropy_interval_ms
        )

    def _replica_of(self, server):
        peer = server.replication.peers[0]
        return peer.replication.hosted[server.name]

    def test_zero_lag_answers_are_byte_identical_to_primary(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        self._catch_up(platform)

        for server in fleet.servers:
            state = self._replica_of(server)
            assert server.replication.lag_of(
                server.replication.peers[0].name
            ) == 0
            config = server.recommendations.similarity_config
            backend = server.recommendations.scoring_backend
            index = state.neighbor_index(backend=backend)
            for user_id in state.db.user_ids:
                target = state.db.profile(user_id)
                primary_answer = find_similar_users(
                    server.user_db.profile(user_id),
                    server.user_db.profiles(),
                    config,
                )
                assert index.find_similar(target, config=config) == primary_answer

    def test_lagging_replica_matches_brute_forced_shadow_profiles(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        isolated = fleet.servers[victim]
        peer = isolated.replication.peers[0]

        # Cut the replication link and keep writing: the replica now lags.
        platform.network.cut_link(isolated.name, peer.name, both_ways=False)
        _drive_workload(platform)
        assert isolated.replication.lag_of(peer.name) > 0

        state = peer.replication.hosted[isolated.name]
        config = isolated.recommendations.similarity_config
        backend = isolated.recommendations.scoring_backend
        index = state.neighbor_index(backend=backend)
        for user_id in state.db.user_ids:
            target = state.db.profile(user_id)
            assert index.find_similar(target, config=config) == find_similar_users(
                target, state.db.profiles(), config
            )

    def test_replica_index_reindexes_only_wal_touched_consumers(self):
        """Lazy by counter: K WAL applies touching one consumer cost one
        per-consumer rebuild at the next query, not a population sweep."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        self._catch_up(platform)
        server = fleet.servers[0]
        state = self._replica_of(server)
        config = server.recommendations.similarity_config
        index = state.neighbor_index(
            backend=server.recommendations.scoring_backend
        )
        # Same accessor, same cached index — the WAL-applied deltas must
        # land in this object, not a rebuilt-from-scratch replacement.
        assert state.neighbor_index(
            backend=server.recommendations.scoring_backend
        ) is index

        user_id = state.db.user_ids[0]
        index.find_similar(state.db.profile(user_id), config=config)
        rebuilds_before = index.rebuilds

        # Several durable writes, all for the same single consumer.
        keyword = next(iter(platform.catalog_view())).terms[0][0]
        session = platform.login(user_id)
        with pytest.warns(DeprecationWarning):
            results = session.query(keyword)
            assert results
            session.rate(results[0].item, 4.0)
            session.rate(results[0].item, 4.5)
        session.logout()
        self._catch_up(platform)

        answer = index.find_similar(state.db.profile(user_id), config=config)
        assert index.rebuilds == rebuilds_before + 1
        assert answer == find_similar_users(
            state.db.profile(user_id), state.db.profiles(), config
        )

    def test_degraded_read_equivalence_survives_a_poisoned_primary(self):
        """The replica-index answer for a crashed shard is produced without
        a single read against the dead host's memory (same poisoned-accessor
        discipline as promotion), and still equals the pre-crash answer."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        self._catch_up(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )
        full = fleet.query_similar(target)

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        result = fleet.query_similar(target)
        assert result.stale_shards == {dead.name: 0}
        assert result.neighbors == full.neighbors


class TestFleetUnavailable:
    def test_routing_with_every_server_down_raises_clearly(self):
        platform = _build()
        fleet = platform.fleet
        for server in fleet.servers:
            platform.failures.crash_host(server.name)
        with pytest.raises(FleetUnavailableError):
            fleet.register_consumer("nobody-home")
        with pytest.raises(FleetUnavailableError):
            fleet.shard_of("still-nobody-home")

    def test_drain_with_all_survivors_down_raises_clearly(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        assert fleet.consumers_of(victim)
        for server in fleet.servers:
            platform.failures.crash_host(server.name)
        with pytest.raises(FleetUnavailableError):
            fleet.handle_server_failure(victim, use_replicas=False)


class TestPromotionScenario:
    def test_promotion_failover_day_end_to_end(self):
        platform = _build(replication_factor=1)
        runner = ScenarioRunner(
            platform, ConsumerPopulation(12, groups=3, seed=11), seed=11
        )
        report = runner.promotion_failover_day(
            sessions=24, refresh_interval_ms=1000.0
        )
        assert report.sessions == 24
        assert report.lost_consumers == 0
        assert report.promoted_consumers > 0
        assert report.stale_shard_answers > 0
        assert report.recovered_purged == report.promoted_consumers
        assert report.batch_refreshes > 0
        events = platform.event_log.by_category("fleet.failover-promotion")
        assert len(events) == 1
        assert events[0].payload["adopted"] == report.promoted_consumers
        assert platform.event_log.by_category("fleet.failover-drain") == []
        victim = platform.fleet.servers[0]
        assert victim.context.host.is_running  # recovered by the scenario

    def test_scenario_requires_fleet_and_replication(self):
        from repro.errors import WorkloadError

        single = build_platform(seed=3)
        runner = ScenarioRunner(single, ConsumerPopulation(4, seed=3), seed=3)
        with pytest.raises(WorkloadError):
            runner.promotion_failover_day(sessions=3)

        unreplicated = build_platform(seed=3, num_buyer_servers=2)
        runner = ScenarioRunner(
            unreplicated, ConsumerPopulation(4, seed=3), seed=3
        )
        with pytest.raises(WorkloadError):
            runner.promotion_failover_day(sessions=3)


class TestDegradedReadLatencyParity:
    """Satellite (PR 9): replica answers must cost like primary answers.

    The degraded read serves a dead shard from its replica's incremental
    index — the same indexed path the primary uses — so a replica answer
    must stay within a small constant factor of a healthy answer, in both
    simulated charged latency and real compute time.  A regression that
    sent replica reads through the brute-force scan (or rebuilt the index
    per query) would blow well past the factor.
    """

    PARITY_FACTOR = 10.0

    def test_replica_answer_charges_simulated_latency_on_par(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )

        healthy = fleet.query_similar(target)
        healthy_ms = healthy.shard_latencies_ms[dead.name]
        assert healthy_ms > 0

        platform.failures.crash_host(dead.name)
        degraded = fleet.query_similar(target)
        assert degraded.degraded
        degraded_ms = degraded.shard_latencies_ms[dead.name]
        assert degraded_ms > 0
        assert degraded_ms <= healthy_ms * self.PARITY_FACTOR

    def test_replica_answer_wall_clock_within_factor_of_healthy(self):
        import statistics
        import time

        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        target = next(
            user_id for user_id in CONSUMERS if fleet.shard_of(user_id) != victim
        )

        def sample(repeats=40):
            samples = []
            for _ in range(repeats):
                start = time.perf_counter()
                fleet.query_similar(target)
                samples.append(time.perf_counter() - start)
            return statistics.median(samples)

        fleet.query_similar(target)  # warm both indexes
        healthy_s = sample()
        platform.failures.crash_host(dead.name)
        assert fleet.query_similar(target).degraded  # warm the replica path
        degraded_s = sample()
        assert degraded_s <= healthy_s * self.PARITY_FACTOR
