"""Integration tests for the elastic fleet (PR 9).

Live shard handback (:meth:`BuyerServerFleet.transfer_shard`), live shard
splitting (:meth:`BuyerServerFleet.split_shard`), server join/decommission
/resurrection through the platform facade, the coordinator's shard-map
sync, and the two elastic scenarios end to end.
"""

import pytest

from repro.ecommerce import AutoscalerPolicy, build_platform
from repro.errors import ECommerceError
from repro.workload import ConsumerPopulation, ScenarioRunner


def make_platform(**overrides):
    defaults = dict(num_buyer_servers=3, replication_factor=1, seed=9)
    defaults.update(overrides)
    return build_platform(**defaults)


def profile_snapshot(user_db, user_id):
    profile = user_db.profile(user_id)
    return {
        name: category.flattened_terms().as_dict()
        for name, category in profile.categories.items()
    }


def populate(platform, count=30, queries=2):
    gateway = platform.gateway()
    users = [f"user-{index}" for index in range(count)]
    for user_id in users:
        gateway.register(user_id)
        gateway.login(user_id)
        for _ in range(queries):
            gateway.query(user_id, "book")
        gateway.buy(user_id, "book-1")
        gateway.logout(user_id)
    return users


class TestTransferShard:
    def test_handback_moves_every_consumer_with_full_state(self):
        platform = make_platform()
        fleet = platform.fleet
        users = populate(platform)
        source = fleet.owner_of_shard(0)
        target = fleet.owner_of_shard(1)
        moved_users = fleet.consumers_of(0)
        before = {
            user_id: (
                source.user_db.user(user_id).logins,
                len(source.user_db.transactions_of(user_id)),
                profile_snapshot(source.user_db, user_id),
            )
            for user_id in moved_users
        }

        moved = fleet.transfer_shard(0, target)

        assert moved == len(moved_users) > 0
        assert fleet.owner_of_shard(0) is target
        for user_id in moved_users:
            assert not source.user_db.is_registered(user_id)
            logins, transactions, profile = before[user_id]
            assert target.user_db.user(user_id).logins == logins
            assert len(target.user_db.transactions_of(user_id)) == transactions
            assert profile_snapshot(target.user_db, user_id) == profile
        assert fleet.handbacks == 1
        assert fleet.transferred_consumers == moved
        assert fleet.lost_consumers == 0
        # Every user still answers through the fleet.
        for user_id in users:
            assert fleet.query_similar(user_id) is not None

    def test_transfer_syncs_the_coordinator(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        target = fleet.owner_of_shard(1)
        epoch_before = platform.coordinator.topology()["shard_map_epoch"]
        fleet.transfer_shard(0, target)
        topology = platform.coordinator.topology()
        assert topology["shard_map_epoch"] == fleet.shard_map.epoch
        assert topology["shard_map_epoch"] > epoch_before
        assert 0 in topology["shard_map"][target.name]

    def test_transfer_to_self_is_a_noop(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        owner = fleet.owner_of_shard(0)
        epoch = fleet.shard_map.epoch
        assert fleet.transfer_shard(0, owner) == 0
        assert fleet.shard_map.epoch == epoch

    def test_transfer_validates_target_and_source(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        other = build_platform(num_buyer_servers=2, seed=1)
        with pytest.raises(ECommerceError):
            fleet.transfer_shard(0, other.fleet.servers[0])
        victim = fleet.owner_of_shard(0)
        platform.failures.crash_host(victim.name)
        with pytest.raises(ECommerceError):
            fleet.transfer_shard(0, fleet.owner_of_shard(1))

    def test_gateway_follows_the_consumer_across_a_transfer(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=20)
        gateway = platform.gateway()
        moved_users = fleet.consumers_of(0)
        target = fleet.owner_of_shard(1)
        fleet.transfer_shard(0, target)
        for user_id in moved_users[:5]:
            response = gateway.login(user_id)
            assert response.ok
            response = gateway.query(user_id, "music")
            assert response.ok
            gateway.logout(user_id)


class TestSplitShard:
    def test_stepwise_split_keeps_the_fleet_serving(self):
        platform = make_platform()
        fleet = platform.fleet
        users = populate(platform)
        target = fleet.owner_of_shard(1)
        split = fleet.split_shard(0, target=target)
        assert split.child == fleet.num_shards - 1
        assert fleet.shard_map.state_of(split.child) == "migrating"
        while not split.done:
            split.step()
            for user_id in users[:8]:
                assert fleet.query_similar(user_id) is not None
        split.finalize()
        assert fleet.shard_map.state_of(split.child) == "steady"
        assert fleet.owner_of_shard(split.child) is target
        assert fleet.splits == 1
        assert fleet.lost_consumers == 0
        # The split sends roughly half of the parent's consumers away.
        movers = fleet.consumers_of(split.child)
        assert movers
        assert fleet.consumers_of(0)

    def test_split_in_place_relabels_without_moving_state(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform)
        owner = fleet.owner_of_shard(0)
        consumers_before = set(owner.user_db.user_ids)
        split = fleet.split_shard(0)  # target defaults to the owner
        split.run()
        assert fleet.owner_of_shard(split.child) is owner
        assert set(owner.user_db.user_ids) == consumers_before
        assert fleet.consumers_of(split.child)

    def test_finalize_before_done_is_rejected(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform)
        split = fleet.split_shard(0, target=fleet.owner_of_shard(1))
        if split.pending:
            with pytest.raises(ECommerceError):
                split.finalize()
            split.run()


class TestServerLifecycle:
    def test_add_buyer_server_joins_routing_and_replication(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        newcomer = platform.add_buyer_server()
        assert newcomer in fleet.servers
        assert not fleet.shards_of(newcomer)
        assert newcomer.replication is not None
        assert newcomer.replication.peers
        fleet.transfer_shard(0, newcomer)
        assert fleet.owner_of_shard(0) is newcomer

    def test_decommission_requires_empty_shards(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        with pytest.raises(ECommerceError):
            platform.remove_buyer_server(fleet.servers[0])

    def test_decommission_and_resurrect(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=18)
        newcomer = platform.add_buyer_server()
        fleet.transfer_shard(0, newcomer)
        fleet.transfer_shard(0, fleet.owner_of_shard(1))
        platform.remove_buyer_server(newcomer)
        assert newcomer.name in fleet.retired
        assert not newcomer.context.host.is_running
        # No survivor should still be streaming to or hosting the retiree.
        for server in fleet.servers:
            if server is newcomer or server.replication is None:
                continue
            assert newcomer.name not in server.replication.peers
            assert newcomer.name not in server.replication.hosted
        # Re-adding resurrects the same server instead of growing the list.
        back = platform.add_buyer_server()
        assert back is newcomer
        assert back.name not in fleet.retired
        assert back.context.host.is_running
        assert back.replication.peers

    def test_stats_carry_the_shard_map_and_fleet_summary(self):
        platform = make_platform()
        fleet = platform.fleet
        populate(platform, count=12)
        payload = platform.stats()
        assert payload["shard_map"]["epoch"] == fleet.shard_map.epoch
        assert payload["fleet"]["servers"] == 3
        assert payload["fleet"]["retired"] == []
        newcomer = platform.add_buyer_server()
        fleet.transfer_shard(0, newcomer)
        payload = platform.stats()
        assert payload["fleet"]["servers"] == 4
        assert payload["fleet"]["handbacks"] == 1
        assert payload["shard_map"]["assignments"][str(0) if isinstance(
            next(iter(payload["shard_map"]["assignments"])), str) else 0
        ] == newcomer.name


class TestElasticScenarios:
    def test_flash_crowd_scales_out_and_drains_back(self):
        platform = make_platform(seed=5)
        population = ConsumerPopulation(size=120, seed=5)
        runner = ScenarioRunner(platform, population, seed=5)
        report = runner.flash_crowd_day(
            sessions_per_window=60,
            policy=AutoscalerPolicy(cooldown_ticks=1),
        )
        assert report.peak_servers > report.initial_servers
        assert report.final_servers == report.initial_servers
        assert report.lost_consumers == 0
        assert report.missing_consumers == 0
        assert any(d["action"] == "scale-out" for d in report.decisions)
        assert any(d["action"] == "scale-in" for d in report.decisions)
        # The envelope taxonomy stays closed under elasticity.
        assert set(report.statuses) <= {
            "ok", "degraded", "failed", "unavailable", "rejected",
        }
        # The epoch only ever moves forward.
        assert report.epoch_trail == sorted(report.epoch_trail)

    def test_rolling_upgrade_restores_the_founding_topology(self):
        platform = make_platform(seed=5)
        population = ConsumerPopulation(size=100, seed=5)
        runner = ScenarioRunner(platform, population, seed=5)
        fleet = platform.fleet
        founding = {
            shard: fleet.shard_map.owner_of(shard)
            for shard in fleet.shard_map.shard_ids()
        }
        report = runner.rolling_upgrade_day(sessions_per_window=25)
        assert report.lost_consumers == 0
        assert report.missing_consumers == 0
        upgrades = [w for w in report.windows if "server" in w]
        assert len(upgrades) == 3
        assert all(w["ownership_restored"] for w in upgrades)
        assert {
            shard: fleet.shard_map.owner_of(shard)
            for shard in founding
        } == founding
        assert set(report.statuses) <= {
            "ok", "degraded", "failed", "unavailable", "rejected",
        }

    def test_rolling_upgrade_requires_replication(self):
        platform = make_platform(replication_factor=0)
        population = ConsumerPopulation(size=20, seed=5)
        runner = ScenarioRunner(platform, population, seed=5)
        with pytest.raises(Exception):
            runner.rolling_upgrade_day(sessions_per_window=5)
