"""Integration tests for replica-based failover of the buyer-server fleet.

The PR-3 contract, pinned end to end:

- the failover drain performs **zero reads** against the crashed host's
  in-memory stores (enforced by poisoning every accessor of the dead
  server's UserDB before draining);
- post-failover recommendations are byte-identical — to the same platform's
  no-failure (pre-crash) answers, to the legacy direct-memory drain, and to
  a single server holding the whole community (the single-server reference);
- consumers whose state never reached a replica are reported as lost, never
  silently resurrected empty;
- a recovered server is reconciled: stale copies purged, new registrations
  flowing again, no consumer ever owned (or scored) twice.
"""

import pytest

from repro.errors import ECommerceError, WorkloadError
from repro.core.similarity import find_similar_users
from repro.ecommerce.platform_builder import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

CONSUMERS = [f"consumer-{index}" for index in range(10)]


def _build(num_buyer_servers=3, **overrides):
    return build_platform(seed=11, num_buyer_servers=num_buyer_servers, **overrides)


def _drive_workload(platform, consumers=CONSUMERS):
    """A deterministic mixed workload giving every consumer a learned profile."""
    keyword = next(iter(platform.catalog_view())).terms[0][0]
    for index, user_id in enumerate(consumers):
        session = platform.login(user_id)
        results = session.query(keyword)
        if results and index % 2 == 0:
            session.buy(results[0].item, marketplace=results[0].marketplace)
        session.logout()


def _consumer_state(user_db, user_id):
    """The durable per-consumer state the replication contract covers."""
    return (
        user_db.profile(user_id).to_dict(),
        user_db.ratings.interactions_of(user_id),
        user_db.transactions_of(user_id),
    )


def _poison(user_db):
    """Make every UserDB (and ratings) accessor raise on touch."""

    def boom(*args, **kwargs):
        raise AssertionError("failover drain read the crashed server's memory")

    for name in (
        "register", "unregister", "is_registered", "user", "record_login",
        "profile", "store_profile", "profiles", "profiles_version",
        "record_transaction", "transactions_of", "all_transactions",
        "record_interaction",
    ):
        setattr(user_db, name, boom)
    for name in ("add", "remove_user", "interactions_of", "user_vector", "items_of"):
        setattr(user_db.ratings, name, boom)


def _victim_shard(fleet):
    """A shard that owns at least one consumer (deterministic choice)."""
    sizes = fleet.shard_sizes()
    return max(range(len(sizes)), key=lambda shard: (sizes[shard], -shard))


class TestReplicaOnlyDrain:
    def test_drain_with_poisoned_dead_userdb_is_byte_identical(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)

        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)
        assert doomed, "the victim shard must own consumers for this test"

        # The no-failure answers, captured on the same run before the crash.
        reference_neighbors = {
            user_id: fleet.find_similar(user_id) for user_id in CONSUMERS
        }
        reference_state = {
            user_id: _consumer_state(dead.user_db, user_id) for user_id in doomed
        }

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)

        moved = fleet.handle_server_failure(victim, strategy="drain")

        assert moved == len(doomed)
        assert fleet.lost_consumers == 0
        for user_id in doomed:
            owner = fleet.server_for(user_id)
            assert owner is not dead
            assert owner.user_db.is_registered(user_id)
            # Durable state restored from replicas, byte for byte.
            assert _consumer_state(owner.user_db, user_id) == reference_state[user_id]
        # Post-failover similar-consumer recommendations are byte-identical
        # to the no-failure run for every (non-lost) consumer.
        for user_id in CONSUMERS:
            assert fleet.find_similar(user_id) == reference_neighbors[user_id]

    def test_replica_drain_equals_legacy_memory_drain(self):
        """The replica drain reconstructs exactly what reading the dead host's
        memory would have produced — recommendations included.  (The drain
        strategy is requested explicitly: the default failover is now the
        promotion path, pinned by test_promotion_failover.py.)"""
        replica_run = _build(replication_factor=1)
        memory_run = _build(replication_factor=1)
        _drive_workload(replica_run)
        _drive_workload(memory_run)

        victim = _victim_shard(replica_run.fleet)
        assert victim == _victim_shard(memory_run.fleet)
        for platform, use_replicas in ((replica_run, True), (memory_run, False)):
            platform.failures.crash_host(platform.fleet.servers[victim].name)
            platform.fleet.handle_server_failure(
                victim, use_replicas=use_replicas, strategy="drain"
            )

        for user_id in CONSUMERS:
            replica_owner = replica_run.fleet.server_for(user_id)
            memory_owner = memory_run.fleet.server_for(user_id)
            assert replica_owner.name == memory_owner.name
            assert (
                replica_owner.user_db.profile(user_id).to_dict()
                == memory_owner.user_db.profile(user_id).to_dict()
            )
            assert replica_owner.recommendations.recommend(
                user_id, k=10
            ) == memory_owner.recommendations.recommend(user_id, k=10)
            assert replica_run.fleet.find_similar(user_id) == (
                memory_run.fleet.find_similar(user_id)
            )

    def test_post_failover_matches_single_server_reference(self):
        """After the drain the fleet still answers exactly like one server
        holding the whole community (the PR-2 equivalence, now crash-proof)."""
        fleet_run = _build(replication_factor=1)
        reference = _build(num_buyer_servers=1)
        _drive_workload(fleet_run)
        _drive_workload(reference)

        victim = _victim_shard(fleet_run.fleet)
        fleet_run.failures.crash_host(fleet_run.fleet.servers[victim].name)
        fleet_run.fleet.handle_server_failure(victim, strategy="drain")

        reference_db = reference.buyer_server.user_db
        config = reference.buyer_server.recommendations.similarity_config
        for user_id in CONSUMERS:
            brute = find_similar_users(
                reference_db.profile(user_id), reference_db.profiles(), config
            )
            assert fleet_run.fleet.find_similar(user_id) == brute

    def test_drain_without_replicas_still_requires_explicit_memory_path(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)
        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        # Take down the replica holders too: no live replica remains.
        platform.failures.crash_host(dead.name)
        for server, state in (
            (server, server.replication.hosted.get(dead.name))
            for server in fleet.servers
            if server is not dead
        ):
            if state is not None:
                platform.failures.crash_host(server.name)
        with pytest.raises(ECommerceError):
            fleet.handle_server_failure(victim, use_replicas=True)


class TestFreshestReplicaWins:
    def test_drain_prefers_the_caught_up_replica_over_a_lagging_one(self):
        """With factor >= 2 a lagging replica must never shadow a fresh one:
        the drain restores from the holder with the longest applied prefix."""
        platform = _build(replication_factor=2)
        fleet = platform.fleet
        _drive_workload(platform, CONSUMERS[:4])

        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        # Lag the peer that comes FIRST in fleet server order — exactly the
        # one a naive "first holder wins" drain would read from.
        first_holder = next(
            server for server in fleet.servers
            if server is not dead and any(p is server for p in dead.replication.peers)
        )

        # Cut only the link to that peer: its replica lags while the other
        # peer keeps acknowledging everything.  Re-driving every consumer
        # gives the already-replicated ones fresh post-cut mutations that
        # only the healthy replica sees.
        platform.network.cut_link(dead.name, first_holder.name, both_ways=False)
        _drive_workload(platform, CONSUMERS)
        # Heal the link but do NOT pump the scheduler: anti-entropy never
        # fires, so the lagging replica stays a stale prefix while the
        # no-failure reference below sees the full (unpartitioned) fleet.
        platform.network.restore_link(dead.name, first_holder.name, both_ways=False)
        doomed = fleet.consumers_of(victim)
        assert doomed
        reference_neighbors = {
            user_id: fleet.find_similar(user_id) for user_id in CONSUMERS
        }
        reference_state = {
            user_id: _consumer_state(dead.user_db, user_id) for user_id in doomed
        }
        lagging = any(
            dead.replication.lag_of(peer.name) > 0
            for peer in dead.replication.peers
        )

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        moved = fleet.handle_server_failure(victim, strategy="drain")

        assert moved == len(doomed)
        assert fleet.lost_consumers == 0
        for user_id in doomed:
            owner = fleet.server_for(user_id)
            assert _consumer_state(owner.user_db, user_id) == reference_state[user_id]
        for user_id in CONSUMERS:
            assert fleet.find_similar(user_id) == reference_neighbors[user_id]
        # The premise held: at least one replica really was lagging.
        assert lagging or not doomed


class TestLostConsumers:
    def test_consumer_registered_during_replication_outage_is_reported_lost(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)

        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        peer = dead.replication.peers[0]
        survivors_before = fleet.consumers_of(victim)

        # Replication outage: the victim can no longer reach its replica.
        platform.network.cut_link(dead.name, peer.name, both_ways=False)
        orphan = next(
            f"orphan-{index}"
            for index in range(1000)
            if fleet.router.shard_for_user(f"orphan-{index}") == victim
        )
        platform.login(orphan).logout()
        assert fleet.shard_of(orphan) == victim
        assert dead.replication.lag_of(peer.name) > 0

        platform.failures.crash_host(dead.name)
        _poison(dead.user_db)
        moved = fleet.handle_server_failure(victim, strategy="drain")

        # Everyone whose state reached the replica survives; the orphan is
        # reported lost, not resurrected empty.
        assert moved == len(survivors_before)
        assert fleet.lost_consumers == 1
        assert not fleet.is_registered(orphan)
        lost_events = platform.event_log.by_category("fleet.consumer-lost")
        assert [event.payload["user_id"] for event in lost_events] == [orphan]
        # The lost consumer can register afresh on a surviving server.
        platform.login(orphan).logout()
        assert fleet.server_for(orphan).context.host.is_running


class TestRecovery:
    def test_recovered_server_is_purged_and_rejoins(self):
        """Drain-strategy recovery: the recovered server keeps its shard, so
        new registrations hash back to it (promotion-strategy recovery —
        where ownership stays with the promoted server — is pinned in
        test_promotion_failover.py)."""
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        _drive_workload(platform)

        victim = _victim_shard(fleet)
        dead = fleet.servers[victim]
        doomed = fleet.consumers_of(victim)
        platform.failures.crash_host(dead.name)
        fleet.handle_server_failure(victim, strategy="drain")

        platform.failures.recover_host(dead.name)
        purged = fleet.handle_server_recovery(victim)

        assert purged == len(doomed)
        for user_id in doomed:
            assert not dead.user_db.is_registered(user_id)
        # Nobody is scored twice: every merged neighbour id is unique.
        for user_id in CONSUMERS:
            neighbors = fleet.find_similar(user_id)
            ids = [uid for uid, _ in neighbors]
            assert len(ids) == len(set(ids))
        # The recovered server accepts new registrations again.
        rejoiner = next(
            f"rejoin-{index}"
            for index in range(1000)
            if fleet.router.shard_for_user(f"rejoin-{index}") == victim
        )
        platform.login(rejoiner).logout()
        assert fleet.server_for(rejoiner) is dead

    def test_recovery_of_a_down_host_is_refused(self):
        platform = _build(replication_factor=1)
        fleet = platform.fleet
        platform.failures.crash_host(fleet.servers[0].name)
        with pytest.raises(ECommerceError):
            fleet.handle_server_recovery(0)


class TestFailoverScenario:
    def test_replicated_failover_day_end_to_end(self):
        platform = _build(replication_factor=1)
        runner = ScenarioRunner(
            platform, ConsumerPopulation(12, groups=3, seed=11), seed=11
        )
        report = runner.replicated_failover_day(
            sessions=24, refresh_interval_ms=1000.0
        )
        assert report.sessions == 24
        assert report.lost_consumers == 0
        assert report.recovered_purged == report.drained_consumers
        assert report.batch_refreshes > 0
        metrics = platform.metrics
        assert metrics.counter("replication.entries_shipped").value > 0
        # The crash was handled through the replica drain (one drain event,
        # nothing lost) and the victim is back in service afterwards.
        drain = platform.event_log.by_category("fleet.failover-drain")
        assert len(drain) == 1
        assert drain[0].payload["moved"] == report.drained_consumers
        assert drain[0].payload["lost"] == []
        victim = platform.fleet.servers[0]
        assert victim.context.host.is_running  # recovered by the scenario

    def test_scenario_requires_fleet_and_replication(self):
        single = build_platform(seed=3)
        runner = ScenarioRunner(single, ConsumerPopulation(4, seed=3), seed=3)
        with pytest.raises(WorkloadError):
            runner.replicated_failover_day(sessions=3)

        unreplicated = build_platform(seed=3, num_buyer_servers=2)
        runner = ScenarioRunner(
            unreplicated, ConsumerPopulation(4, seed=3), seed=3
        )
        with pytest.raises(WorkloadError):
            runner.replicated_failover_day(sessions=3)
