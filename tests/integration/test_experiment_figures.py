"""Smoke tests: every experiment of DESIGN.md's index runs and produces rows."""

import pytest

from repro.experiments import figures


class TestFigureExperiments:
    def test_fig31_platform_architecture(self):
        result = figures.fig31_platform_architecture(marketplace_counts=(1, 2), consumers=3)
        assert len(result.rows) == 2
        assert all(row["queries"] > 0 for row in result.rows)
        # More marketplaces -> higher mean query latency (serial itinerary).
        assert result.rows[1]["mean_query_latency_ms"] > result.rows[0]["mean_query_latency_ms"]

    def test_fig32_mechanism_concurrency(self):
        result = figures.fig32_mechanism_concurrency(consumer_counts=(3, 6))
        assert len(result.rows) == 2
        assert result.rows[1]["sessions"] == 6
        assert all(row["mean_request_latency_ms"] > 0 for row in result.rows)

    def test_fig41_creation_protocol(self):
        result = figures.fig41_creation_protocol(repeats=2)
        assert len(result.rows) == 2
        assert all(row["all_steps_present"] for row in result.rows)
        assert all(row["bootstrap_latency_ms"] > 0 for row in result.rows)

    def test_fig42_query_workflow(self):
        result = figures.fig42_query_workflow()
        assert "all Figure 4.2 steps observed" in result.notes[0]
        categories = result.column("category")
        assert categories[0] == "workflow.query-received"
        assert categories[-1] == "workflow.query-completed"

    def test_fig43_buy_auction_workflow(self):
        result = figures.fig43_buy_auction_workflow()
        rows = {row["trade"]: row for row in result.rows}
        assert set(rows) == {"direct-buy", "auction", "negotiation"}
        assert rows["direct-buy"]["succeeded"]
        assert all(row["all_steps_present"] for row in result.rows)

    def test_fig45_profile_learning(self):
        result = figures.fig45_profile_learning(
            event_counts=(5, 40), learning_rates=(0.3,)
        )
        assert len(result.rows) == 2
        small, large = result.rows[0], result.rows[1]
        assert large["mean_taste_alignment"] > small["mean_taste_alignment"]
        assert large["mean_taste_alignment"] > 0.9

    def test_fig45_similarity_scaling(self):
        result = figures.fig45_similarity_scaling(population_sizes=(20, 40))
        assert len(result.rows) == 2
        assert all(row["neighbours_found"] > 0 for row in result.rows)
        assert all(row["same_taste_group_fraction"] >= 0.5 for row in result.rows)

    def test_cap2_multi_marketplace(self):
        result = figures.cap2_multi_marketplace(marketplace_counts=(1, 2))
        assert len(result.rows) == 2
        assert result.rows[1]["items_found"] > result.rows[0]["items_found"]
        assert result.rows[1]["query_latency_ms"] > result.rows[0]["query_latency_ms"]

    def test_cap4_recommendation_quality(self):
        result = figures.cap4_recommendation_quality(num_consumers=20, events_per_user=20)
        names = {row["recommender"] for row in result.rows}
        assert names == {
            "agent-hybrid", "collaborative-filtering", "information-filtering", "popularity",
        }

    def test_cap4_cold_start(self):
        result = figures.cap4_cold_start(events_schedule=(3, 20), num_consumers=15)
        assert len(result.rows) == 2
        assert result.rows[0]["sparsity"] > result.rows[1]["sparsity"]

    def test_ablation_similarity_mix(self):
        result = figures.ablation_similarity_mix(
            mixes=((1.0, 0.0), (0.6, 0.4)), tolerances=(3.0,), k=5
        )
        assert len(result.rows) == 2
        assert all("f1@5" in row for row in result.rows)
