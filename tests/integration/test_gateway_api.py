"""Integration coverage for the gateway redesign's acceptance criteria.

- **Byte-identity**: gateway query / recommendation / find-similar results on
  one platform equal the legacy direct-session calls on a second platform
  built from the same seed, driven through the same operation sequence.
- **Crash during traffic**: with replication wired, a consumer whose primary
  crashes mid-session gets a ``degraded`` envelope (retry + promotion
  failover re-route), never an unhandled exception, with the failover and
  retry count in the provenance; fleet-wide lookups answer the dead shard
  from its freshest replica and report it stale (quorum fallback).
- **Deadline mid-fan-out**, **retry exhaustion against an all-down fleet**
  and **envelope byte-stability across seeds** — the middleware-chain test
  coverage the issue calls out.
- **Read-repair**: a stale-answered fleet query nudges an immediate
  anti-entropy catch-up for the answering replica and surfaces
  ``repaired`` provenance.
- **Fleet refresh reporting**: ``refresh_all`` reports consumers it could
  not refresh instead of silently dropping them.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api.envelope import ApiStatus
from repro.ecommerce.platform_builder import build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner

CONSUMERS = [f"consumer-{index}" for index in range(8)]


def _keyword(platform) -> str:
    return next(iter(platform.catalog_view())).terms[0][0]


def _fleet_platform(seed=11, **overrides):
    defaults = dict(num_buyer_servers=3, replication_factor=1)
    defaults.update(overrides)
    return build_platform(seed=seed, **defaults)


def _warm_gateway(platform, consumers=CONSUMERS, logout=False):
    """Drive one query per consumer through the gateway; keep sessions open."""
    gateway = platform.gateway()
    keyword = _keyword(platform)
    for user_id in consumers:
        assert gateway.login(user_id).ok
        assert gateway.query(user_id, keyword).ok
        if logout:
            gateway.logout(user_id)
    return gateway


class TestByteIdentityWithLegacySessions:
    """Gateway results must equal the pre-redesign direct calls, same seed."""

    def test_query_recommendations_and_similarity_match(self):
        seed = 23
        legacy = build_platform(seed=seed, num_buyer_servers=3)
        modern = build_platform(seed=seed, num_buyer_servers=3)
        keyword = _keyword(legacy)
        gateway = modern.gateway()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for user_id in CONSUMERS:
                legacy_session = legacy.login(user_id)
                legacy_hits = legacy_session.query(keyword)
                legacy_query_recs = list(legacy_session.last_recommendations)
                legacy_recs = legacy_session.recommendations(k=5)

                gateway.login(user_id)
                response = gateway.query(user_id, keyword)
                recs = gateway.recommendations(user_id, k=5)

                assert list(response.result.hits) == legacy_hits
                assert list(response.result.recommendations) == legacy_query_recs
                assert list(recs.result.recommendations) == legacy_recs

            for user_id in CONSUMERS:
                legacy_neighbors = legacy.fleet.query_similar(user_id).neighbors
                response = gateway.find_similar(user_id)
                assert list(response.result.neighbors) == legacy_neighbors
                assert response.status == ApiStatus.OK

        # Identical traffic ⇒ identical simulated clocks: the gateway charges
        # nothing on the happy path.
        assert modern.now == legacy.now


class TestCrashDuringTraffic:
    """The acceptance scenario: crash mid-traffic, degrade, never raise."""

    def test_quorum_fallback_marks_dead_shard_stale(self):
        platform = _fleet_platform()
        gateway = _warm_gateway(platform)
        fleet = platform.fleet
        victim = fleet.server_for(CONSUMERS[0])
        survivor_consumer = next(
            user_id for user_id in CONSUMERS
            if fleet.server_for(user_id) is not victim
        )
        platform.failures.crash_host(victim.name)

        response = gateway.find_similar(survivor_consumer)
        assert response.status == ApiStatus.DEGRADED
        assert victim.name in response.provenance.stale_shards
        assert response.provenance.unreachable_shards == ()
        assert response.error is None
        # The quorum answer is exact on the replicated prefix: every shard
        # contributed, so the neighbor list is non-trivially populated.
        assert response.result.neighbors

    def test_session_op_against_dead_primary_retries_promotes_and_degrades(self):
        platform = _fleet_platform()
        gateway = _warm_gateway(platform)
        fleet = platform.fleet
        victim = fleet.server_for(CONSUMERS[0])
        platform.failures.crash_host(victim.name)

        response = gateway.query(CONSUMERS[0], _keyword(platform))
        assert response.status == ApiStatus.DEGRADED
        assert response.error is None
        assert response.provenance.failed_over
        assert response.provenance.retries >= 1
        assert fleet.promotions == 1
        promoted = fleet.server_for(CONSUMERS[0])
        assert promoted is not victim
        assert promoted.context.host.is_running
        assert response.provenance.served_by == promoted.name
        assert response.result.hits  # the re-routed query really ran

        # Follow-up requests land on the promoted owner directly: plain ok.
        follow_up = gateway.recommendations(CONSUMERS[0], k=5)
        assert follow_up.status == ApiStatus.OK
        assert follow_up.provenance.retries == 0

    def test_crash_without_replicas_degrades_to_unavailable_not_raise(self):
        platform = build_platform(seed=11, num_buyer_servers=3)  # no replication
        gateway = _warm_gateway(platform)
        victim = platform.fleet.server_for(CONSUMERS[0])
        platform.failures.crash_host(victim.name)
        response = gateway.query(CONSUMERS[0], _keyword(platform))
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error.code == "host-unreachable"
        # No replica ⇒ the retry middleware must NOT run a memory drain.
        assert platform.fleet.promotions == 0
        assert not response.provenance.failed_over


class TestRetryExhaustionAllDown:
    def test_all_down_fleet_returns_unavailable_never_raises(self):
        platform = _fleet_platform()
        gateway = _warm_gateway(platform)
        for server in platform.fleet.servers:
            if server.context.host.is_running:
                platform.failures.crash_host(server.name)

        response = gateway.query(CONSUMERS[0], _keyword(platform))
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error is not None and response.error.retryable
        assert response.provenance.retries == platform.config.api_max_retries
        assert not response.provenance.failed_over

        # A brand-new consumer cannot be routed anywhere either.
        newcomer = gateway.login("newcomer")
        assert newcomer.status == ApiStatus.UNAVAILABLE
        assert newcomer.error.code in ("fleet-unavailable", "host-unreachable")


class TestDeadlineMidFanOut:
    def test_fanout_overrunning_its_budget_returns_deadline_exceeded(self):
        platform = _fleet_platform()
        gateway = _warm_gateway(platform)
        response = gateway.find_similar(CONSUMERS[0], deadline_ms=0.0001)
        assert response.status == ApiStatus.UNAVAILABLE
        assert response.error.code == "deadline-exceeded"
        assert response.result is None
        # Provenance of the work that was done survives: every shard had
        # already answered by the time the deadline fired.
        assert len(response.provenance.shard_latencies_ms) == len(
            platform.fleet.servers
        )
        assert platform.metrics.counter("api.deadline_exceeded").value == 1.0


class TestEnvelopeByteStability:
    """Same seed + same request stream ⇒ byte-identical envelopes."""

    @staticmethod
    def _drive(seed):
        platform = _fleet_platform(seed=seed)
        gateway = platform.gateway()
        keyword = _keyword(platform)
        envelopes = []
        for user_id in CONSUMERS[:4]:
            envelopes.append(gateway.login(user_id))
            envelopes.append(gateway.query(user_id, keyword))
            envelopes.append(gateway.recommendations(user_id, k=5))
            envelopes.append(gateway.find_similar(user_id))
        envelopes.append(gateway.admin_stats())
        return [repr(envelope) for envelope in envelopes]

    @pytest.mark.parametrize("seed", [5, 17])
    def test_repeated_runs_are_byte_identical(self, seed):
        assert self._drive(seed) == self._drive(seed)

    def test_different_seeds_diverge(self):
        # Sanity check that the stability assertion is not vacuous.
        assert self._drive(5) != self._drive(17)


class TestReadRepair:
    def test_stale_answer_triggers_catch_up_and_repaired_provenance(self):
        platform = _fleet_platform(seed=31)
        gateway = _warm_gateway(platform)
        fleet = platform.fleet
        origin = fleet.server_for(CONSUMERS[0])
        # The shard we will make unreachable: a primary that replicates TO a
        # third server (its holder), which must stay reachable from origin.
        primary = next(s for s in fleet.servers if s is not origin)
        holder = primary.replication.peers[0]

        # Build up replication lag: cut the primary→holder stream and let
        # the primary's consumers generate WAL entries.
        platform.network.cut_link(primary.name, holder.name, both_ways=False)
        lagging = [u for u in CONSUMERS if fleet.server_for(u) is primary]
        assert lagging, "seed must place at least one consumer on the primary"
        gateway.recommendations(lagging[0], k=3)
        gateway.rate(lagging[0], next(iter(platform.catalog_view())), 4.0)
        assert primary.replication.lag_of(holder.name) > 0

        # Heal the stream but cut the query path origin→primary: the next
        # fan-out answers the primary's shard from the (lagging) holder.
        platform.network.restore_link(primary.name, holder.name, both_ways=False)
        platform.network.cut_link(origin.name, primary.name, both_ways=False)

        response = gateway.find_similar(CONSUMERS[0])
        assert response.status == ApiStatus.DEGRADED
        assert primary.name in response.provenance.stale_shards
        assert response.provenance.stale_shards[primary.name] > 0
        # The read-repair nudge shipped the missing suffix immediately.
        assert primary.name in response.provenance.repaired_shards
        assert response.provenance.repaired
        assert primary.replication.lag_of(holder.name) == 0
        assert platform.metrics.counter("fleet.fanout.read_repairs").value == 1.0
        payload = platform.event_log.last_payload("fleet.read-repair")
        assert payload["lag_before"] > 0
        assert payload["lag_after"] == 0

    def test_crashed_primary_cannot_be_repaired(self):
        platform = _fleet_platform(seed=31)
        gateway = _warm_gateway(platform)
        fleet = platform.fleet
        victim = next(
            s for s in fleet.servers
            if s is not fleet.server_for(CONSUMERS[0])
        )
        platform.failures.crash_host(victim.name)
        response = gateway.find_similar(CONSUMERS[0])
        assert victim.name in response.provenance.stale_shards
        assert response.provenance.repaired_shards == ()
        assert not response.provenance.repaired


class TestFleetRefreshReporting:
    def test_complete_refresh_reports_no_gaps(self):
        platform = _fleet_platform(seed=11)
        _warm_gateway(platform)
        report = platform.fleet.refresh_all(k=3)
        assert set(report.results) == set(CONSUMERS)
        assert report.complete
        assert report.skipped_servers == []

    def test_down_server_consumers_are_reported_skipped(self):
        platform = _fleet_platform(seed=11)
        _warm_gateway(platform)
        fleet = platform.fleet
        victim = fleet.server_for(CONSUMERS[0])
        expected_skipped = set(fleet.consumers_served_by(victim))
        platform.failures.crash_host(victim.name)

        report = fleet.refresh_all(k=3)
        assert not report.complete
        assert victim.name in report.skipped_servers
        assert set(report.skipped_consumers) == expected_skipped
        assert set(report.results) == set(CONSUMERS) - expected_skipped

    def test_consumers_lost_to_a_crash_are_reported_missing(self):
        """Assignment says a live server owns them; its UserDB disagrees."""
        platform = _fleet_platform(seed=11)
        _warm_gateway(platform)
        fleet = platform.fleet
        server = fleet.server_for(CONSUMERS[0])
        # Simulate state loss behind the fleet's back (the mid-refresh-crash
        # shape: the assignment survived, the durable record did not).
        server.user_db.unregister(CONSUMERS[0])

        report = fleet.refresh_all(k=3)
        assert CONSUMERS[0] in report.missing_consumers
        assert CONSUMERS[0] not in report.results
        assert not report.complete
        payload = platform.event_log.last_payload("fleet.refresh-consumer-missing")
        assert payload["user_id"] == CONSUMERS[0]
        assert platform.metrics.counter("fleet.refresh.missing").value == 1.0

    def test_scheduled_tick_reports_missing_consumers_too(self):
        """The scheduled fleet tick shares refresh_all's reporting path."""
        platform = _fleet_platform(seed=11)
        _warm_gateway(platform)
        fleet = platform.fleet
        server = fleet.server_for(CONSUMERS[0])
        server.user_db.unregister(CONSUMERS[0])

        fleet.start_periodic_refresh(100.0, k=3)
        try:
            platform.scheduler.clock.advance_by(150.0)
            platform.scheduler.run_until(platform.now)
        finally:
            fleet.stop_periodic_refresh()
        assert platform.event_log.count("fleet.refresh-consumer-missing") >= 1
        assert platform.metrics.counter("fleet.refresh.missing").value >= 1.0


class TestWritesAreNotReplayed:
    def test_trade_is_not_retried_after_mid_flight_loss(self):
        """A reply lost after the marketplace applied a trade must surface as
        an envelope error, never be silently re-executed (double purchase)."""
        platform = _fleet_platform(seed=11)
        gateway = _warm_gateway(platform)
        user = CONSUMERS[0]
        hit = gateway.query(user, _keyword(platform)).result.hits[0]
        owner = platform.fleet.server_for(user)
        # Sever the owner's link to the marketplace that holds the item: the
        # trade MBA cannot be dispatched, a mid-flight network failure.
        platform.network.cut_link(owner.name, hit.marketplace)

        response = gateway.buy(user, hit.item, marketplace=hit.marketplace)
        assert response.failed
        assert response.provenance.retries == 0, "writes must not auto-retry"

    def test_mid_flight_host_unreachable_does_not_replay_a_trade(self):
        """Same error *code* as the gateway's pre-dispatch check, different
        origin: a crashed marketplace fails the trade MBA mid-flight, and
        the write must not be replayed just because the code matches."""
        platform = _fleet_platform(seed=11)
        gateway = _warm_gateway(platform)
        user = CONSUMERS[0]
        hit = gateway.query(user, _keyword(platform)).result.hits[0]
        platform.failures.crash_host(hit.marketplace)

        response = gateway.buy(user, hit.item, marketplace=hit.marketplace)
        assert response.failed
        assert response.provenance.retries == 0, "writes must not auto-retry"

    def test_trade_is_retried_when_routing_failed_before_any_work(self):
        """The gateway's own pre-dispatch liveness failure is retry-safe even
        for writes: no marketplace saw the request, so promotion + replay
        cannot double-apply anything."""
        platform = _fleet_platform(seed=11)
        gateway = _warm_gateway(platform)
        user = CONSUMERS[0]
        hit = gateway.query(user, _keyword(platform)).result.hits[0]
        platform.failures.crash_host(platform.fleet.server_for(user).name)

        response = gateway.buy(user, hit.item, marketplace=hit.marketplace)
        assert response.ok
        assert response.status == ApiStatus.DEGRADED
        assert response.provenance.failed_over
        assert response.provenance.retries >= 1


class TestScenariosRideTheGateway:
    def test_warm_up_drives_every_operation_through_the_gateway(self):
        platform = _fleet_platform(seed=7)
        population = ConsumerPopulation(8, groups=2, seed=7)
        runner = ScenarioRunner(platform, population, seed=7)
        report = runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
        assert report.sessions == 8
        assert report.failed_operations == 0
        requests = platform.metrics.counter("api.requests").value
        # login + 2 queries + recommendations + logout per consumer, plus trades.
        assert requests >= 8 * 5
        assert platform.metrics.counter("api.status.ok").value > 0
