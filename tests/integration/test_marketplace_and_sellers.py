"""Integration tests for marketplaces, seller servers and multi-marketplace
information gathering (capability CAP-2)."""

import pytest

from repro.agents.messages import Message, MessageKinds
from repro.ecommerce.platform_builder import build_platform
from repro.errors import ECommerceError


class TestSellerListing:
    def test_seller_lists_via_mobile_seller_agent(self, platform):
        seller = platform.sellers[0]
        marketplace = platform.marketplaces[1]  # not its round-robin target
        before = len(marketplace.catalog)
        added = seller.list_on_marketplace(marketplace.name)
        assert added == len(seller.catalog)
        assert len(marketplace.catalog) == before + added
        assert marketplace.name in seller.listed_on
        # The MSA went home and was disposed of.
        assert seller.context.active_count("MSA") == 0
        remote = platform.directory.context_for(marketplace.name)
        assert remote.active_count("MSA") == 0

    def test_seller_rejects_foreign_merchandise(self, platform, item_factory):
        seller = platform.sellers[0]
        foreign = item_factory("foreign-1", seller="somebody-else")
        with pytest.raises(ECommerceError):
            seller.add_merchandise(foreign)

    def test_seller_agent_reports_catalog_over_messages(self, platform):
        seller = platform.sellers[0]
        reply = seller.agent.proxy.request(
            MessageKinds.MARKET_CATALOG, sender="test", from_host=seller.name
        )
        assert reply.ok
        assert len(reply.value("listings")) == len(seller.catalog)


class TestMarketplaceServices:
    def test_market_agent_answers_query_messages(self, platform):
        marketplace = platform.marketplaces[0]
        reply = marketplace.agent.proxy.request(
            MessageKinds.MARKET_QUERY, sender="test", keyword="books",
        )
        assert reply.ok
        results = reply.value("results")
        assert all(entry["marketplace"] == marketplace.name for entry in results)

    def test_market_agent_rejects_unknown_item_purchase(self, platform):
        marketplace = platform.marketplaces[0]
        reply = marketplace.agent.proxy.request(
            MessageKinds.MARKET_BUY, sender="test", item_id="ghost", user_id="alice",
        )
        assert not reply.ok

    def test_direct_sale_records_transaction_and_stock(self, platform):
        marketplace = platform.marketplaces[0]
        listing = marketplace.catalog.listings()[0]
        stock_before = listing.stock
        transaction = marketplace.sell_direct(listing.item.item_id, "alice", timestamp=1.0)
        assert transaction.price == listing.item.price
        assert marketplace.catalog.listing(listing.item.item_id).stock == stock_before - 1
        assert transaction in marketplace.transactions

    def test_out_of_stock_item_cannot_be_auctioned(self, platform):
        marketplace = platform.marketplaces[0]
        listing = marketplace.catalog.listings()[0]
        listing.stock = 0
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            marketplace.auction_purchase(listing.item.item_id, "alice", 999.0, timestamp=0.0)

    def test_stats_reflect_activity(self, platform):
        marketplace = platform.marketplaces[0]
        listing = marketplace.catalog.listings()[0]
        marketplace.sell_direct(listing.item.item_id, "alice", timestamp=1.0)
        stats = marketplace.stats()
        assert stats["transactions"] == 1.0
        assert stats["sold"] == 1.0


class TestMultiMarketplaceCollection:
    """Capability CAP-2: the MBA collects information from many marketplaces."""

    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_coverage_grows_with_marketplace_count(self, count):
        platform = build_platform(
            num_marketplaces=count, num_sellers=count, items_per_seller=15,
            seed=13, replicate_listings=False,
        )
        session = platform.login("shopper")
        results = session.query("books")
        marketplaces_with_hits = {hit.marketplace for hit in results}
        assert len(marketplaces_with_hits) == count
        session.logout()

    def test_one_mba_serves_the_whole_itinerary(self):
        platform = build_platform(
            num_marketplaces=3, num_sellers=3, items_per_seller=15, seed=13,
        )
        session = platform.login("shopper")
        session.query("books")
        history = platform.buyer_server.bsmdb.mba_history()
        assert len(history) == 1
        assert history[0].itinerary == platform.marketplace_names()
        session.logout()

    def test_results_identify_the_cheapest_marketplace(self):
        platform = build_platform(
            num_marketplaces=3, num_sellers=3, items_per_seller=15, seed=13,
        )
        session = platform.login("shopper")
        results = session.query("books")
        assert results
        cheapest = min(results, key=lambda hit: hit.price)
        assert cheapest.marketplace in platform.marketplace_names()
        session.logout()

    def test_serial_visits_cost_latency_per_marketplace(self):
        latencies = {}
        for count in (1, 3):
            platform = build_platform(
                num_marketplaces=count, num_sellers=count, items_per_seller=10, seed=13,
            )
            session = platform.login("shopper")
            before = platform.now
            session.query("books")
            latencies[count] = platform.now - before
            session.logout()
        assert latencies[3] > latencies[1]
