"""Integration tests for the platform architecture (Figure 3.1) and the
recommendation mechanism serving a consumer community (Figure 3.2)."""

import pytest

from repro.errors import ECommerceError, LoginError, SessionError, UnknownUserError
from repro.ecommerce.platform_builder import PlatformConfig, build_platform
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


class TestPlatformAssembly:
    def test_all_server_roles_present(self, platform):
        assert platform.hosts["coordinator"].is_running
        assert len(platform.marketplaces) == 2
        assert len(platform.sellers) == 2
        assert platform.buyer_server.is_ready
        assert set(platform.marketplace_names()) == {"marketplace-1", "marketplace-2"}

    def test_sellers_listed_merchandise_on_marketplaces(self, platform):
        for marketplace in platform.marketplaces:
            assert len(marketplace.catalog) > 0
        # Round-robin distribution: the two marketplaces carry different stock.
        first = {item.item_id for item in platform.marketplaces[0].catalog.items()}
        second = {item.item_id for item in platform.marketplaces[1].catalog.items()}
        assert first.isdisjoint(second)

    def test_replicated_listings_mode(self):
        platform = build_platform(
            num_marketplaces=2, num_sellers=1, items_per_seller=10, seed=5,
            replicate_listings=True,
        )
        first = {item.item_id for item in platform.marketplaces[0].catalog.items()}
        second = {item.item_id for item in platform.marketplaces[1].catalog.items()}
        assert first == second

    def test_catalog_view_covers_all_sellers(self, platform):
        view = platform.catalog_view()
        total = sum(len(seller.catalog) for seller in platform.sellers)
        assert len(view) == total

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ECommerceError):
            build_platform(num_marketplaces=0)
        with pytest.raises(ECommerceError):
            PlatformConfig(num_sellers=0).validate()
        with pytest.raises(ECommerceError):
            build_platform(bogus_option=True)

    def test_stats_snapshot_structure(self, platform):
        stats = platform.stats()
        assert stats["consumers"] == 0
        assert set(stats["marketplaces"]) == set(platform.marketplace_names())
        assert stats["network"]["total_transfers"] > 0

    def test_platform_build_is_deterministic(self):
        first = build_platform(num_marketplaces=2, num_sellers=2, items_per_seller=10, seed=9)
        second = build_platform(num_marketplaces=2, num_sellers=2, items_per_seller=10, seed=9)
        first_items = [item.item_id for item in first.catalog_view()]
        second_items = [item.item_id for item in second.catalog_view()]
        assert first_items == second_items


class TestLoginLogoutLifecycle:
    def test_register_then_login_creates_bra(self, platform):
        platform.register_consumer("alice", "Alice")
        session = platform.login("alice", register=False)
        assert platform.buyer_server.context.active_count("BRA") == 1
        assert platform.buyer_server.online_users() == ["alice"]
        assert platform.buyer_server.user_db.user("alice").logins == 1
        session.logout()

    def test_login_without_registration_fails_when_not_auto(self, platform):
        from repro.ecommerce.session import ConsumerSession

        session = ConsumerSession(platform.buyer_server, "stranger")
        with pytest.raises(SessionError):
            session.login()

    def test_duplicate_login_rejected(self, platform):
        platform.login("alice")
        from repro.ecommerce.session import ConsumerSession

        duplicate = ConsumerSession(platform.buyer_server, "alice")
        with pytest.raises(SessionError):
            duplicate.login()

    def test_logout_disposes_bra_and_allows_relogin(self, platform):
        session = platform.login("alice")
        session.logout()
        assert platform.buyer_server.context.active_count("BRA") == 0
        again = platform.login("alice")
        assert platform.buyer_server.user_db.user("alice").logins == 2
        again.logout()

    def test_double_logout_rejected(self, platform):
        session = platform.login("alice")
        session.logout()
        with pytest.raises(SessionError):
            session.logout()

    def test_context_manager_logs_out_automatically(self, platform):
        platform.register_consumer("carol")
        from repro.ecommerce.session import ConsumerSession

        with ConsumerSession(platform.buyer_server, "carol") as session:
            assert session.is_active
        assert platform.buyer_server.online_users() == []

    def test_session_lookup(self, platform):
        session = platform.login("alice")
        assert platform.session("alice") is session
        with pytest.raises(UnknownUserError):
            platform.session("nobody")


class TestConsumerCommunity:
    def test_many_concurrent_consumers_each_get_their_own_bra(self, platform):
        sessions = [platform.login(f"user-{i}") for i in range(6)]
        assert platform.buyer_server.context.active_count("BRA") == 6
        assert len(platform.buyer_server.online_users()) == 6
        # Interleave activity across sessions.
        for session in sessions:
            session.query("books")
        for session in sessions:
            session.logout()
        assert platform.buyer_server.context.active_count("BRA") == 0

    def test_profiles_stay_per_consumer(self, platform):
        alice = platform.login("alice")
        bob = platform.login("bob")
        alice.query("books")
        bob.query("electronics")
        user_db = platform.buyer_server.user_db
        assert user_db.profile("alice").has_category("books")
        assert not user_db.profile("alice").has_category("electronics")
        assert user_db.profile("bob").has_category("electronics")
        alice.logout()
        bob.logout()

    def test_scenario_runner_warm_up(self, platform):
        population = ConsumerPopulation(6, groups=3, seed=2)
        runner = ScenarioRunner(platform, population, seed=3)
        report = runner.warm_up(sessions_per_consumer=1, queries_per_session=1)
        assert report.consumers == 6
        assert report.sessions == 6
        assert report.queries >= 1
        assert report.simulated_duration_ms > 0
        assert len(platform.buyer_server.user_db) == 6
        assert platform.buyer_server.online_users() == []  # everyone logged out

    def test_recommendations_draw_on_the_community(self, platform):
        population = ConsumerPopulation(8, groups=2, seed=5)
        runner = ScenarioRunner(platform, population, seed=6)
        runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
        target = population.consumers()[0]
        session = platform.login(target.user_id)
        recommendations = session.recommendations(k=5)
        assert recommendations
        session.logout()

    def test_stress_day_mixes_traffic_and_refreshes_batches(self, platform):
        population = ConsumerPopulation(10, groups=2, seed=7)
        runner = ScenarioRunner(platform, population, seed=8)
        report = runner.stress_day(
            sessions=25,
            buy_probability=0.5,
            auction_probability=0.2,
            negotiate_probability=0.1,
            recommendation_probability=0.5,
            batch_refresh_interval_ms=500.0,
        )
        assert report.consumers == 10
        assert report.sessions == 25
        assert report.queries >= 20
        assert report.purchases + report.auctions + report.negotiations > 0
        assert report.recommendations_requested > 0
        assert report.batch_refreshes >= 1
        assert report.as_dict()["batch_refreshes"] == report.batch_refreshes
        # The periodic refresh left precomputed lists behind for the community.
        service = platform.buyer_server.recommendations
        assert service.last_batch_refresh_at is not None
        refreshed = [
            user_id
            for user_id in platform.buyer_server.user_db.user_ids
            if service.cached_recommendations(user_id) is not None
        ]
        assert refreshed

    def test_stress_day_validates_parameters(self, platform):
        from repro.errors import WorkloadError

        population = ConsumerPopulation(4, groups=2, seed=7)
        runner = ScenarioRunner(platform, population, seed=8)
        with pytest.raises(WorkloadError):
            runner.stress_day(sessions=0)

    def test_sharded_stress_day_on_a_single_server(self, platform):
        """The scheduled-refresh scenario also runs on the classic platform."""
        population = ConsumerPopulation(8, groups=2, seed=7)
        runner = ScenarioRunner(platform, population, seed=8)
        report = runner.sharded_stress_day(sessions=25, refresh_interval_ms=400.0)
        assert report.sessions == 25
        assert report.batch_refreshes >= 1
        # The recurrence was stopped when the scenario finished.
        assert not platform.buyer_server.refresh_scheduled

    def test_sharded_stress_day_on_a_fleet(self):
        from repro.ecommerce.platform_builder import build_platform

        platform = build_platform(
            seed=13, num_buyer_servers=3, neighbor_shards=2, items_per_seller=12
        )
        population = ConsumerPopulation(12, groups=3, seed=5)
        runner = ScenarioRunner(platform, population, seed=2)
        runner.warm_up(sessions_per_consumer=1, queries_per_session=1)
        report = runner.sharded_stress_day(
            sessions=30, refresh_interval_ms=400.0, recommendation_probability=0.5
        )
        assert report.sessions == 30
        assert report.batch_refreshes >= 1
        # Consumers were spread over the fleet and each server only serves
        # (and refreshes) its own shard.
        sizes = [len(server.user_db) for server in platform.buyer_servers]
        assert sum(sizes) == 12
        assert sum(1 for size in sizes if size > 0) >= 2
        for server in platform.buyer_servers:
            cached = [
                user_id
                for user_id in server.user_db.user_ids
                if server.recommendations.cached_recommendations(user_id) is not None
            ]
            assert cached == server.user_db.user_ids

    def test_sharded_stress_day_validates_parameters(self, platform):
        from repro.errors import WorkloadError

        population = ConsumerPopulation(4, groups=2, seed=7)
        runner = ScenarioRunner(platform, population, seed=8)
        with pytest.raises(WorkloadError):
            runner.sharded_stress_day(sessions=0)
        with pytest.raises(WorkloadError):
            runner.sharded_stress_day(sessions=5, refresh_interval_ms=0.0)


class TestAgentFlexibility:
    """Capability claim 1 of §5.1: functional agents can be added or removed."""

    def test_extra_functional_agent_can_join_the_server(self, platform):
        from repro.agents.aglet import Aglet

        class AuditAgent(Aglet):
            agent_type = "Audit"

        context = platform.buyer_server.context
        audit = context.create(AuditAgent, owner="ops")
        assert context.active_count("Audit") == 1
        # Existing consumers are unaffected.
        session = platform.login("alice")
        assert session.query("books") is not None
        session.logout()
        context.dispose(audit)
        assert context.active_count("Audit") == 0

    def test_cloning_the_profile_agent_scales_it_out(self, platform):
        context = platform.buyer_server.context
        pa = context.active_aglets("PA")[0]
        clone = context.clone(pa)
        assert context.active_count("PA") == 2
        context.dispose(clone)
        assert context.active_count("PA") == 1
