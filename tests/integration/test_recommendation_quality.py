"""Integration tests for the recommendation-quality experiments (CAP-4).

These tests assert the *shape* of the paper's claims rather than absolute
numbers: the agent mechanism beats the individual baselines, cold-start hurts
pure collaborative filtering more than the hybrid, and profile learning
converges towards the consumers' true tastes.
"""

import pytest

from repro.core import metrics as quality_metrics
from repro.core.profile_learning import LearningConfig, ProfileLearner
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.experiments.harness import (
    build_standard_dataset,
    build_standard_recommenders,
    evaluate_recommenders,
)


@pytest.fixture(scope="module")
def standard_dataset():
    return build_standard_dataset(num_consumers=40, num_items=120, events_per_user=35, seed=51)


@pytest.fixture(scope="module")
def quality_rows(standard_dataset):
    recommenders = build_standard_recommenders(standard_dataset)
    rows = evaluate_recommenders(standard_dataset, recommenders, k=10)
    return {row["recommender"]: row for row in rows}


class TestQualityShape:
    def test_every_engine_evaluated_on_the_same_users(self, quality_rows):
        counts = {row["users"] for row in quality_rows.values()}
        assert len(counts) == 1
        assert counts.pop() > 0

    def test_hybrid_beats_pure_collaborative_filtering(self, quality_rows):
        assert (
            quality_rows["agent-hybrid"]["f1@10"]
            > quality_rows["collaborative-filtering"]["f1@10"]
        )

    def test_hybrid_beats_pure_information_filtering(self, quality_rows):
        assert (
            quality_rows["agent-hybrid"]["f1@10"]
            > quality_rows["information-filtering"]["f1@10"]
        )

    def test_hybrid_beats_popularity(self, quality_rows):
        assert quality_rows["agent-hybrid"]["precision@10"] > quality_rows["popularity"]["precision@10"]

    def test_popularity_has_poor_coverage(self, quality_rows):
        assert quality_rows["popularity"]["coverage"] < quality_rows["agent-hybrid"]["coverage"]
        assert quality_rows["popularity"]["coverage"] < quality_rows["information-filtering"]["coverage"]

    def test_all_metrics_in_valid_ranges(self, quality_rows):
        for row in quality_rows.values():
            for key, value in row.items():
                if key in ("recommender", "users"):
                    continue
                assert 0.0 <= value <= 1.0, f"{key}={value} out of range"


class TestColdStartShape:
    def test_sparsity_hurts_cf_more_than_the_hybrid(self):
        sparse = build_standard_dataset(num_consumers=30, events_per_user=3, seed=61)
        dense = build_standard_dataset(num_consumers=30, events_per_user=40, seed=61)

        def f1_of(dataset, name):
            recommenders = build_standard_recommenders(dataset)
            rows = evaluate_recommenders(dataset, {name: recommenders[name]}, k=10)
            return rows[0]["f1@10"]

        cf_drop = f1_of(dense, "collaborative-filtering") - f1_of(sparse, "collaborative-filtering")
        hybrid_sparse = f1_of(sparse, "agent-hybrid")
        cf_sparse = f1_of(sparse, "collaborative-filtering")
        # Under sparsity the hybrid must stay usable and ahead of pure CF.
        assert hybrid_sparse > cf_sparse
        assert cf_drop > 0

    def test_sparsity_measurement_increases_with_fewer_events(self):
        sparse = build_standard_dataset(num_consumers=30, events_per_user=3, seed=61)
        dense = build_standard_dataset(num_consumers=30, events_per_user=40, seed=61)
        assert sparse.build_ratings().sparsity() > dense.build_ratings().sparsity()


class TestProfileLearningConvergence:
    def test_more_events_improve_taste_recovery(self, standard_dataset):
        population = standard_dataset.population
        catalog = list(standard_dataset.catalog)
        consumer = population.consumers()[0]
        liked_first = sorted(catalog, key=lambda item: -consumer.utility(item))

        def correlation_after(count):
            from repro.core.profile import Profile
            from repro.core.profile_learning import FeedbackEvent
            from repro.core.ratings import InteractionKind

            learner = ProfileLearner(LearningConfig(learning_rate=0.3))
            profile = Profile(consumer.user_id)
            for index, item in enumerate(liked_first[:count]):
                kind = (
                    InteractionKind.BUY
                    if consumer.finds_relevant(item)
                    else InteractionKind.QUERY
                )
                learner.apply(profile, FeedbackEvent(consumer.user_id, item, kind,
                                                     timestamp=float(index)))
            return quality_metrics.spearman_rank_correlation(
                profile.preference_vector(), consumer.category_weights
            )

        assert correlation_after(60) >= correlation_after(4)
        assert correlation_after(60) > 0.0

    def test_similar_users_come_from_the_same_taste_group(self, standard_dataset):
        profiles = standard_dataset.build_profiles()
        population = standard_dataset.population
        target_id = standard_dataset.users[0]
        target_group = population.consumer(target_id).group
        neighbours = find_similar_users(
            profiles[target_id], profiles.values(), SimilarityConfig(top_k=5)
        )
        assert neighbours
        same_group = sum(
            1 for user, _ in neighbours if population.consumer(user).group == target_group
        )
        assert same_group >= len(neighbours) / 2


class TestSimilarityAblationShape:
    def test_mixed_similarity_not_worse_than_preference_only(self):
        dataset = build_standard_dataset(num_consumers=30, events_per_user=30, seed=71)

        def f1_with(config):
            recommenders = build_standard_recommenders(dataset, similarity_config=config)
            rows = evaluate_recommenders(
                dataset, {"agent-hybrid": recommenders["agent-hybrid"]}, k=10
            )
            return rows[0]["f1@10"]

        mixed = f1_with(SimilarityConfig(preference_weight=0.6, term_weight=0.4))
        preference_only = f1_with(SimilarityConfig(preference_weight=1.0, term_weight=0.0))
        assert mixed >= preference_only * 0.9  # mixed must not collapse

    def test_overly_tight_discard_tolerance_does_not_help(self):
        dataset = build_standard_dataset(num_consumers=30, events_per_user=30, seed=73)

        def recall_with(tolerance):
            config = SimilarityConfig(discard_tolerance=tolerance)
            recommenders = build_standard_recommenders(dataset, similarity_config=config)
            rows = evaluate_recommenders(
                dataset, {"agent-hybrid": recommenders["agent-hybrid"]}, k=10
            )
            return rows[0]["recall@10"]

        assert recall_with(3.0) >= recall_with(0.05)
