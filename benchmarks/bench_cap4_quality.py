"""Benchmark for CAP-4 — recommendation quality vs. the §2.3 baselines.

Measures the real cost of producing recommendations with each engine and
regenerates the quality comparison plus the cold-start/sparsity sweep.
"""

import pytest

from repro.experiments import figures
from repro.experiments.harness import (
    build_standard_dataset,
    build_standard_recommenders,
    evaluate_recommenders,
)


@pytest.fixture(scope="module")
def standard_setup():
    dataset = build_standard_dataset(num_consumers=60, num_items=150,
                                     events_per_user=40, seed=31)
    recommenders = build_standard_recommenders(dataset)
    return dataset, recommenders


@pytest.mark.parametrize(
    "engine",
    ["agent-hybrid", "collaborative-filtering", "information-filtering", "popularity"],
)
def test_recommendation_cost_per_engine(benchmark, standard_setup, engine):
    dataset, recommenders = standard_setup
    recommender = recommenders[engine]
    users = dataset.users[:20]

    def recommend_for_all():
        return [recommender.recommend(user, k=10) for user in users]

    lists = benchmark(recommend_for_all)
    assert len(lists) == len(users)


def test_cap4_quality_rows(benchmark, standard_setup, experiment_reporter):
    dataset, recommenders = standard_setup
    rows = benchmark.pedantic(
        evaluate_recommenders, args=(dataset, recommenders), kwargs={"k": 10},
        rounds=1, iterations=1,
    )
    from repro.experiments.harness import ExperimentResult

    result = ExperimentResult(name="CAP-4 recommendation quality", rows=rows)
    experiment_reporter(result)
    by_name = {row["recommender"]: row for row in rows}
    assert by_name["agent-hybrid"]["f1@10"] > by_name["collaborative-filtering"]["f1@10"]
    assert by_name["agent-hybrid"]["f1@10"] > by_name["information-filtering"]["f1@10"]
    assert by_name["agent-hybrid"]["precision@10"] > by_name["popularity"]["precision@10"]


def test_cap4_cold_start_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.cap4_cold_start,
        kwargs={"events_schedule": (2, 5, 10, 20, 40), "num_consumers": 30},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    sparsities = result.column("sparsity")
    assert sparsities == sorted(sparsities, reverse=True)
    # Under the sparsest setting the hybrid must stay ahead of pure CF.
    sparsest = result.rows[0]
    assert sparsest["agent-hybrid-f1@10"] >= sparsest["collaborative-filtering-f1@10"]
