"""Benchmark for FIG-4.5 — the profile learning rule and similarity algorithm.

Measures (a) the real cost of applying the learning rule, (b) the cost of a
similar-user search as the consumer community grows, and regenerates the two
FIG-4.5 experiments: learning convergence and similarity-search quality.
"""

import pytest

from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import InteractionKind
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.experiments import figures
from repro.experiments.harness import build_standard_dataset
from repro.workload.products import ProductGenerator


def test_profile_learning_rule_cost(benchmark):
    items = ProductGenerator(seed=21).generate(100, seller="bench")
    learner = ProfileLearner()
    events = [
        FeedbackEvent("bench-user", item, InteractionKind.BUY, timestamp=float(index))
        for index, item in enumerate(items)
    ]

    def learn():
        return learner.build_profile("bench-user", events)

    profile = benchmark(learn)
    assert profile.feedback_events == len(events)


@pytest.mark.parametrize("consumers", [50, 100, 200])
def test_similar_user_search_cost(benchmark, consumers):
    dataset = build_standard_dataset(num_consumers=consumers, num_items=120,
                                     events_per_user=20, seed=23)
    profiles = dataset.build_profiles()
    target = profiles[dataset.users[0]]
    config = SimilarityConfig(top_k=10)

    neighbours = benchmark(lambda: find_similar_users(target, profiles.values(), config))
    assert neighbours


def test_fig45_learning_convergence_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.fig45_profile_learning,
        kwargs={"event_counts": (5, 10, 20, 40, 80), "learning_rates": (0.1, 0.3, 0.6)},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    alignments = result.column("mean_taste_alignment")
    assert alignments[-1] > alignments[0] or max(alignments) > 0.9


def test_fig45_similarity_search_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.fig45_similarity_scaling,
        kwargs={"population_sizes": (20, 50, 100, 200)},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    for row in result.rows:
        assert row["same_taste_group_fraction"] > row["random_baseline_fraction"]
