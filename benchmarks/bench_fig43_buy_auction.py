"""Benchmark for FIG-4.3 — the buy / auction / negotiation workflow.

Measures the real cost of each trade style through the full agent pipeline
and prints the Figure 4.3 rows (success, price paid vs. list price, workflow
steps, simulated latency).
"""

import pytest

from repro.ecommerce.platform_builder import ECommercePlatform, PlatformConfig, build_platform
from repro.experiments import figures


@pytest.fixture
def trading_session():
    # A very deep stock so the benchmark can repeat the purchase thousands of
    # times without exhausting the listing.
    config = PlatformConfig(num_marketplaces=2, num_sellers=2, items_per_seller=25,
                            stock_per_item=1_000_000, seed=17)
    platform = ECommercePlatform(config)
    session = platform.login("bench-consumer")
    hits = session.query("books")
    assert hits
    return session, hits[0]


def test_direct_purchase_cost(benchmark, trading_session):
    session, hit = trading_session
    outcome = benchmark(lambda: session.buy(hit.item, marketplace=hit.marketplace))
    assert outcome.succeeded


def test_auction_cost(benchmark, trading_session):
    session, hit = trading_session
    outcome = benchmark(
        lambda: session.join_auction(hit.item, max_price=hit.price * 1.3,
                                     marketplace=hit.marketplace)
    )
    assert outcome.outcome["rounds"] >= 1


def test_negotiation_cost(benchmark, trading_session):
    session, hit = trading_session
    outcome = benchmark(
        lambda: session.negotiate(hit.item, max_price=hit.price * 0.95,
                                  marketplace=hit.marketplace)
    )
    assert outcome.outcome["rounds"] >= 1


def test_fig43_trade_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(figures.fig43_buy_auction_workflow, rounds=1, iterations=1)
    experiment_reporter(result)
    rows = {row["trade"]: row for row in result.rows}
    assert rows["direct-buy"]["succeeded"]
    assert all(row["all_steps_present"] for row in result.rows)
