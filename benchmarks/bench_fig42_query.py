"""Benchmark for FIG-4.2 — the merchandise query workflow.

Measures the real cost of one complete Figure 4.2 query (MBA round trip over
both marketplaces, profile update, similarity lookup, recommendation
generation) and prints the step-by-step trace with simulated latencies.
"""

from repro.ecommerce.platform_builder import build_platform
from repro.experiments import figures
from repro.experiments.figures import QUERY_WORKFLOW_STEPS


def test_query_workflow_cost(benchmark):
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=25, seed=13)
    session = platform.login("bench-consumer")
    results = benchmark(lambda: session.query("books"))
    assert results


def test_fig42_step_trace_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(figures.fig42_query_workflow, rounds=1, iterations=1)
    experiment_reporter(result)
    observed = result.column("category")
    for step in QUERY_WORKFLOW_STEPS:
        assert step in observed
