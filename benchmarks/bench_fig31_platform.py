"""Benchmark for FIG-3.1 — the end-to-end platform architecture.

Regenerates the Figure 3.1 experiment (all four server roles trading through
the agent pipeline) and measures the real cost of an end-to-end consumer
query as the number of marketplaces grows.
"""

import pytest

from repro.ecommerce.platform_builder import build_platform
from repro.experiments import figures


@pytest.mark.parametrize("marketplaces", [1, 2, 4])
def test_end_to_end_query_scales_with_marketplaces(benchmark, marketplaces):
    platform = build_platform(
        num_marketplaces=marketplaces, num_sellers=max(2, marketplaces),
        items_per_seller=20, seed=3,
    )
    session = platform.login("bench-consumer")

    def run_query():
        return session.query("books")

    results = benchmark(run_query)
    assert results is not None


def test_fig31_platform_architecture_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.fig31_platform_architecture,
        kwargs={"marketplace_counts": (1, 2, 4), "consumers": 4},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    latencies = result.column("mean_query_latency_ms")
    assert latencies[-1] > latencies[0]
