"""Benchmark: the marketplace under simultaneous chaos and attack.

One scenario-level measurement of the PR-10 adversarial subsystem:
``chaos_marketplace_day`` runs honest concurrent sessions against a
replicated three-server fleet with handshake-secured trades while a
seeded :class:`~repro.adversarial.chaos.ChaosSchedule` crashes and
partitions buyer servers and an
:class:`~repro.workload.adversary.AdversaryDriver` interleaves scalper
fleets, handshake protocol bots and a quota flood into the same
session-scheduler drains.  The run ends with the
:class:`~repro.adversarial.audit.InvariantAuditor` sweep, embedded
verbatim in the report.

The simulation is deterministic end to end, so the full report — chaos
event trail, per-window traffic, the adversary's fate, the
``api.auth.rejected.*`` counters and the audit — is checked in as
``BENCH_adversarial.json``, and regenerating the artifact must
reproduce it byte for byte.  The acceptance bars are the adversarial
contract itself: zero invariant violations, zero attacker success, and
an honest-goodput floor under fire.

Run ``python benchmarks/bench_adversarial.py`` to regenerate the
artifact after an intentional behaviour change.
"""

import json
import os
from pathlib import Path

from repro.api.envelope import ApiStatus
from repro.ecommerce import build_platform
from repro.workload import ConsumerPopulation, ScenarioRunner

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
ARTIFACT = Path(__file__).with_name("BENCH_adversarial.json")

SCENARIO = {
    "platform": {
        "seed": 7,
        "num_buyer_servers": 3,
        "replication_factor": 1,
        "handshake_trades": True,
        "api_admission_classes": {
            "reads": {"operations": ["query"], "capacity": 30, "refill_per_ms": 0.05},
            "trades": {
                "operations": ["join_auction"],
                "capacity": 12,
                "refill_per_ms": 0.02,
            },
        },
    },
    "population": 40,
    "seed": 7,
    "run": {
        "windows": 6,
        "sessions_per_window": 25,
        "queries_per_session": 1,
        "chaos_outages": 3,
        "chaos_horizon_ms": 10_000.0,
        "chaos_mean_gap_ms": 1_000.0,
        "chaos_mean_outage_ms": 2_500.0,
        "scalpers": 6,
        "bids_per_scalper": 3,
        "protocol_rounds": 2,
        "flood_requests": 30,
    },
}

#: Honest requests answered (ok/degraded) even under chaos + attack.
GOODPUT_FLOOR = 0.85

#: Window count used by the quick smoke test.
SMOKE_WINDOWS = 2


def run_scenario(windows=None) -> dict:
    """Run the chaos day on a fresh platform; return config + report."""
    spec = SCENARIO
    platform = build_platform(**spec["platform"])
    population = ConsumerPopulation(spec["population"], seed=spec["platform"]["seed"])
    runner = ScenarioRunner(platform, population, seed=spec["seed"])
    run_args = dict(spec["run"])
    run_args["seed"] = spec["seed"]
    if windows is not None:
        run_args["windows"] = windows
    report = runner.chaos_marketplace_day(**run_args)
    return {
        "config": {
            "platform": spec["platform"],
            "population": spec["population"],
            "seed": spec["seed"],
            "run": spec["run"],
        },
        "report": report.as_dict(),
    }


def generate_payload() -> dict:
    return {
        "benchmark": "adversarial",
        "scenarios": {"chaos_marketplace_day": run_scenario()},
    }


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_chaos_marketplace_smoke(benchmark):
    """Wall-clock cost of a smoke-sized chaos day + shape of the report."""
    outcome = benchmark.pedantic(
        lambda: run_scenario(windows=SMOKE_WINDOWS),
        rounds=1,
        iterations=1,
    )
    report = outcome["report"]
    assert report["scenario"] == "chaos_marketplace_day"
    assert report["requests"] > 0
    assert report["attacker_success_rate"] == 0.0
    assert report["audit"]["ok"], report["audit"]["violations"]


def test_artifact_matches_regeneration():
    """The checked-in artifact must reproduce byte for byte.

    The regression gate for the adversarial stack: the chaos schedule's
    RNG draws, the handshake broker's nonce/credential streams, the
    attack interleaving and the audit sweep all feed these bytes.
    """
    regenerated = render(generate_payload())
    checked_in = ARTIFACT.read_text()
    assert regenerated == checked_in, (
        "BENCH_adversarial.json drifted from regeneration — if the "
        "change is intentional, refresh it with "
        "`python benchmarks/bench_adversarial.py`"
    )


def test_artifact_meets_acceptance_bars():
    """The checked-in report must show the adversarial contract holding."""
    payload = json.loads(ARTIFACT.read_text())
    report = payload["scenarios"]["chaos_marketplace_day"]["report"]
    audit = report["audit"]

    # The invariant audit is clean: no double purchase, no lost paid
    # transaction, balanced ledgers, closed taxonomy, handshake-backed
    # trades — and it actually checked all of those.
    assert audit["ok"] and audit["violations"] == []
    for invariant in (
        "unique-transaction-ids",
        "no-lost-paid-transaction",
        "ledger-balance-totals",
        "replica-ledgers",
        "envelope-statuses",
        "envelope-error-codes",
        "handshake-backed-trades",
    ):
        assert audit["checks"].get(invariant, 0) > 0, invariant

    # Every protocol attack was refused with its own typed rejection;
    # none succeeded.
    assert report["attacker_success_rate"] == 0.0
    adversary = report["adversary"]
    assert adversary["protocol"]["succeeded"] == 0
    for kind in ("forged-nonce", "replayed-offer", "double-finalize",
                 "stale-credential"):
        assert adversary["protocol"]["rejected"].get(kind, 0) > 0, kind
        assert report["auth_rejections"].get(kind, 0) > 0, kind

    # Chaos actually happened — faults overlapped traffic — and honest
    # goodput stayed above the floor anyway.
    assert report["outages"] > 0
    assert any(window["hosts_down"] for window in report["windows"])
    assert report["honest_goodput"] >= GOODPUT_FLOOR
    assert set(report["statuses"]) <= set(ApiStatus.ALL)


if __name__ == "__main__":
    ARTIFACT.write_text(render(generate_payload()))
    print(f"wrote {ARTIFACT}")
