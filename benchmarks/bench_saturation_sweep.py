"""Benchmark: offered load vs goodput across overload-control configs.

The classic saturation sweep: the same session mix is offered at rising
arrival rates against four platforms that differ only in how they shed —

- ``open_door`` — no admission control at all; queueing absorbs
  everything and latency tells the story.
- ``single_bucket`` — one global admission token bucket (the PR-5
  configuration): shedding is blind to what it sheds.
- ``classed`` — per-operation admission classes: reads shed from their
  own bucket while session traffic (login/logout) keeps its tokens, so
  saturation degrades browsing before it breaks sessions.
- ``deadline_drops`` — the single bucket plus a request deadline, arming
  the queue's deadline-aware drop: work that would time out in queue is
  shed *before* occupying a server.
- ``hedged`` — the single bucket plus tail-latency hedging on the fleet
  fan-out (``fleet_hedge_delay_percentile``): every sweep point reports
  how many hedges armed and won at that offered load.

The ``hedged`` config's traffic adds a slice of fleet-wide find-similar
fan-outs (the request hedging acts on); the other configs keep the plain
PR-7 session mix so their curves stay comparable across artifacts.

Each sweep point runs on a fresh same-seed platform, so points are
independent measurements, not a warm-up curve.  The simulation is
deterministic end to end and the full sweep is checked in as
``BENCH_saturation_sweep.json``; regeneration must reproduce it byte for
byte — that check is the regression gate for the whole overload path
(admission classes, queue drops, per-server accounting).

Run ``python benchmarks/bench_saturation_sweep.py`` to regenerate the
artifact after an intentional behaviour change.
"""

import json
import os
from pathlib import Path

from repro.api.envelope import ApiStatus
from repro.ecommerce.platform_builder import build_platform
from repro.workload import ConsumerPopulation, ConcurrentDriver

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
ARTIFACT = Path(__file__).with_name("BENCH_saturation_sweep.json")

#: Offered session-arrival rates (sessions per simulated ms).  The low end
#: is comfortably under every config's capacity; the high end is far past
#: saturation for all of them.
OFFERED_LOADS = (0.05, 0.1, 0.2, 0.4, 0.8)

_BASE_PLATFORM = {
    "seed": 17,
    "num_buyer_servers": 4,
    "replication_factor": 1,
}

#: Admission classes for the ``classed`` config.  The concurrent driver
#: issues login / query / recommendations / logout; reads get a tight
#: bucket, session traffic a roomy one — under saturation the platform
#: sheds browsing, not sessions.
READ_VS_SESSION_CLASSES = {
    "read": {
        "operations": ["query", "recommendations", "find_similar",
                       "weekly_hottest", "cross_sell"],
        "capacity": 25,
        "refill_per_ms": 0.1,
    },
    "session": {
        "operations": ["login", "logout"],
        "capacity": 80,
        "refill_per_ms": 0.4,
    },
}

CONFIGS = {
    "open_door": {},
    "single_bucket": {
        "api_admission_capacity": 60,
        "api_admission_refill_per_ms": 0.25,
    },
    "classed": {
        "api_admission_classes": READ_VS_SESSION_CLASSES,
    },
    "deadline_drops": {
        "api_admission_capacity": 60,
        "api_admission_refill_per_ms": 0.25,
        "api_deadline_ms": 600.0,
    },
    "hedged": {
        "api_admission_capacity": 60,
        "api_admission_refill_per_ms": 0.25,
        "fleet_hedge_delay_percentile": 0.75,
    },
}

RUN = {
    "sessions": 250,
    "queries_per_session": 2,
    "think_time_ms": 100.0,
    "recommendation_probability": 0.25,
}

#: Per-config additions to ``RUN`` — the hedged config is the only one
#: whose sessions issue fan-out traffic for hedging to act on.
CONFIG_RUNS = {
    "hedged": {"find_similar_probability": 0.2},
}

POPULATION = 400

#: Sweep shape used by the quick smoke test: one config, two loads.
SMOKE_LOADS = (0.05, 0.4)


def run_point(config_name: str, offered_load: float) -> dict:
    """One sweep point on a fresh platform; returns the derived metrics."""
    overrides = dict(_BASE_PLATFORM)
    overrides.update(CONFIGS[config_name])
    platform = build_platform(**overrides)
    population = ConsumerPopulation(POPULATION, seed=_BASE_PLATFORM["seed"])
    driver = ConcurrentDriver(platform, population, seed=_BASE_PLATFORM["seed"])
    run_args = dict(RUN, **CONFIG_RUNS.get(config_name, {}))
    report = driver.run(arrival_rate_per_ms=offered_load, **run_args)

    d = report.as_dict()
    duration_ms = d["simulated_duration_ms"]
    good = d["statuses"].get(ApiStatus.OK, 0) + d["statuses"].get(
        ApiStatus.DEGRADED, 0
    )
    return {
        "offered_load_per_ms": offered_load,
        "requests": d["requests"],
        "completed": d["completed"],
        "shed": d["shed"],
        "shed_rate": d["shed_rate"],
        "queue_dropped": d["queue_dropped"],
        "good_responses": good,
        "goodput_per_s": (good / duration_ms * 1000.0) if duration_ms else 0.0,
        "statuses": d["statuses"],
        "latency_p95_ms": d["latency_ms"].get("p95", 0.0),
        "queue_wait_p95_ms": d["queue_wait_ms"].get("p95", 0.0),
        "hedges": int(platform.metrics.counter("fleet.fanout.hedges").value),
        "hedge_wins": int(
            platform.metrics.counter("fleet.fanout.hedge_wins").value
        ),
        "servers": d["servers"],
        "simulated_duration_ms": duration_ms,
    }


def generate_payload() -> dict:
    return {
        "benchmark": "saturation_sweep",
        "offered_loads_per_ms": list(OFFERED_LOADS),
        "run": dict(RUN, population=POPULATION),
        "configs": {
            name: {
                "platform": dict(_BASE_PLATFORM, **CONFIGS[name]),
                "run_overrides": CONFIG_RUNS.get(name, {}),
                "points": [run_point(name, load) for load in OFFERED_LOADS],
            }
            for name in sorted(CONFIGS)
        },
    }


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_saturation_point_smoke(benchmark):
    """Wall-clock cost of sweep points + taxonomy sanity of the output."""
    outcome = benchmark.pedantic(
        lambda: [run_point("single_bucket", load) for load in SMOKE_LOADS],
        rounds=1,
        iterations=1,
    )
    for point in outcome:
        assert set(point["statuses"]) <= set(ApiStatus.ALL)
        assert point["statuses"].get(ApiStatus.REJECTED, 0) == point["shed"]
        assert point["completed"] + point["shed"] == point["requests"]
        assert point["goodput_per_s"] > 0.0
    # More offered load cannot mean fewer requests observed.
    assert outcome[-1]["shed"] >= outcome[0]["shed"]


def test_artifact_matches_regeneration():
    """The checked-in sweep must reproduce byte for byte.

    Slower than the other artifact gates (20 full sweep points) but it is
    the only test that pins the queue-drop / admission-class / per-server
    numbers end to end, so it runs in the default suite.
    """
    regenerated = render(generate_payload())
    checked_in = ARTIFACT.read_text()
    assert regenerated == checked_in, (
        "BENCH_saturation_sweep.json drifted from regeneration — if the "
        "change is intentional, refresh it with "
        "`python benchmarks/bench_saturation_sweep.py`"
    )


def test_sweep_meets_acceptance_bars():
    """The checked-in curves must actually show saturation behaviour."""
    payload = json.loads(ARTIFACT.read_text())
    configs = payload["configs"]
    assert set(configs) == set(CONFIGS)
    for name, config in configs.items():
        points = config["points"]
        assert len(points) == len(OFFERED_LOADS)
        goodputs = [p["goodput_per_s"] for p in points]
        # Goodput climbs with offered load until the knee, then flattens
        # or falls — it must not be rising at the very last point only.
        knee = goodputs.index(max(goodputs))
        for left, right in zip(goodputs[:knee], goodputs[1 : knee + 1]):
            assert right >= left, (name, goodputs)
        for point in points:
            assert set(point["statuses"]) <= set(ApiStatus.ALL)
            assert point["statuses"].get("rejected", 0) == point["shed"]
            assert point["completed"] + point["shed"] == point["requests"]
            assert point["servers"], "per-server section must be populated"
            for stats in point["servers"].values():
                assert 0.0 <= stats["utilization"] <= 1.0
            assert 0 <= point["hedge_wins"] <= point["hedges"]
    # Only the hedged config arms hedges, and it must actually arm some.
    assert sum(p["hedges"] for p in configs["hedged"]["points"]) > 0
    for name in ("open_door", "single_bucket", "classed", "deadline_drops"):
        assert all(p["hedges"] == 0 for p in configs[name]["points"])

    # The open door never sheds; every admission config sheds at the top.
    assert all(p["shed"] == 0 for p in configs["open_door"]["points"])
    for name in ("single_bucket", "classed", "deadline_drops"):
        assert configs[name]["points"][-1]["shed"] > 0, name
    # The deadline config is the only one that drops in queue.
    assert any(
        p["queue_dropped"] > 0 for p in configs["deadline_drops"]["points"]
    )
    assert all(
        p["queue_dropped"] == 0
        for name in ("open_door", "single_bucket", "classed")
        for p in configs[name]["points"]
    )
    # Classed shedding protects sessions: at mid-sweep it sheds plenty of
    # reads while every session chain still runs to completion (the same
    # request count as the open door), whereas the blind bucket is
    # already shedding logins and killing whole chains at that load.
    open_requests = [p["requests"] for p in configs["open_door"]["points"]]
    classed_mid = configs["classed"]["points"][2]
    assert classed_mid["shed"] > 0
    assert classed_mid["requests"] == open_requests[2]
    assert configs["single_bucket"]["points"][2]["requests"] < open_requests[2]


if __name__ == "__main__":
    ARTIFACT.write_text(render(generate_payload()))
    print(f"wrote {ARTIFACT}")
