"""Shared helpers for the benchmark suite.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index.  Besides the pytest-benchmark timing table (real wall-clock cost of the
simulation), each bench prints the experiment's rows — the numbers quoted in
EXPERIMENTS.md — so running ``pytest benchmarks/ --benchmark-only -s``
reproduces both.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import format_table


def report(result: ExperimentResult) -> None:
    """Print an experiment's rows beneath the benchmark output."""
    print()
    print(f"== {result.name} ==")
    print(format_table(result.rows))
    for note in result.notes:
        print(f"note: {note}")


@pytest.fixture
def experiment_reporter():
    return report
