"""Benchmark for FIG-3.2 — the recommendation mechanism serving a community.

Measures consumer-session throughput of the buyer agent server (BSMA, HttpA,
PA, per-consumer BRAs and their MBAs) as the consumer community grows.
"""

import pytest

from repro.ecommerce.platform_builder import build_platform
from repro.experiments import figures
from repro.workload.consumers import ConsumerPopulation
from repro.workload.scenarios import ScenarioRunner


@pytest.mark.parametrize("consumers", [5, 10, 20])
def test_session_throughput(benchmark, consumers):
    def run_community():
        platform = build_platform(num_marketplaces=2, num_sellers=2,
                                  items_per_seller=20, seed=5)
        population = ConsumerPopulation(consumers, groups=4, seed=6)
        runner = ScenarioRunner(platform, population, seed=7)
        return runner.warm_up(sessions_per_consumer=1, queries_per_session=1)

    report = benchmark.pedantic(run_community, rounds=1, iterations=1)
    assert report.sessions == consumers


def test_fig32_mechanism_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.fig32_mechanism_concurrency,
        kwargs={"consumer_counts": (5, 10, 20)},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    assert all(row["sessions"] == row["consumers"] for row in result.rows)
