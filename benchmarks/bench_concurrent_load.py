"""Benchmark: gateway latency and shedding under overlapping session load.

The first benchmark in the repo where the middleware chain faces *real*
contention: thousands of sessions interleaved by the
:class:`~repro.api.concurrency.SessionScheduler`, per-server queueing, and
an admission bucket that actually sheds.  Two workloads:

- ``steady_overload`` — open-loop Poisson arrivals offered slightly above
  the admission refill rate; queueing dominates, shedding trims the peaks.
- ``burst`` — every session arrives at the same instant; the admission
  bucket does almost all the work.
- ``hedged_fanout`` — half the sessions issue a fleet-wide find-similar
  fan-out against a hedging fleet (``fleet_hedge_delay_percentile``), so
  the artifact pins how often tail-latency hedges arm — and win — under
  real concurrent load.

Because the simulation is deterministic, the full run's latency histograms
and shed rates are checked in as ``BENCH_concurrent_load.json`` and
regenerating the artifact must reproduce it byte for byte — that check IS
the benchmark's regression assertion (a scheduler or middleware change
that shifts any percentile shows up as a diff, not a flake).

Run ``python benchmarks/bench_concurrent_load.py`` to regenerate the
artifact after an intentional behaviour change.
"""

import json
import os
from pathlib import Path

from repro.ecommerce.platform_builder import build_platform
from repro.workload import ConsumerPopulation, ConcurrentDriver

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
ARTIFACT = Path(__file__).with_name("BENCH_concurrent_load.json")

#: The artifact's workloads.  ``sessions`` is the overlapping-session count
#: the acceptance bar cares about (>= 1k); ``platform`` holds the
#: build_platform overrides, everything else goes to ConcurrentDriver.run.
WORKLOADS = {
    "steady_overload": {
        "platform": {
            "seed": 11,
            "num_buyer_servers": 4,
            "replication_factor": 1,
            "api_admission_capacity": 80,
            "api_admission_refill_per_ms": 0.3,
        },
        "population": 1500,
        "seed": 11,
        "run": {
            "sessions": 1200,
            "queries_per_session": 2,
            "arrival_rate_per_ms": 0.2,
            "think_time_ms": 150.0,
            "recommendation_probability": 0.25,
        },
    },
    "burst": {
        "platform": {
            "seed": 23,
            "num_buyer_servers": 4,
            "replication_factor": 1,
            "api_admission_capacity": 100,
            "api_admission_refill_per_ms": 0.05,
        },
        "population": 1200,
        "seed": 23,
        "run": {
            "sessions": 1000,
            "queries_per_session": 1,
            "arrival_rate_per_ms": None,
            "think_time_ms": 0.0,
            "recommendation_probability": 0.0,
        },
    },
    "hedged_fanout": {
        "platform": {
            "seed": 31,
            "num_buyer_servers": 4,
            "replication_factor": 1,
            "fleet_hedge_delay_percentile": 0.75,
            "api_admission_capacity": 80,
            "api_admission_refill_per_ms": 0.3,
        },
        "population": 1200,
        "seed": 31,
        "run": {
            "sessions": 1000,
            "queries_per_session": 1,
            "arrival_rate_per_ms": 0.15,
            "think_time_ms": 150.0,
            "recommendation_probability": 0.1,
            "find_similar_probability": 0.5,
        },
    },
}

#: Session count used by the quick smoke test (full workloads still run in
#: the artifact-reproducibility test; this one just keeps the wall-clock
#: timing table cheap).
SMOKE_SESSIONS = 250


def run_workload(name: str, sessions=None) -> dict:
    """Run one named workload on a fresh platform; return config + report."""
    spec = WORKLOADS[name]
    platform = build_platform(**spec["platform"])
    population = ConsumerPopulation(spec["population"], seed=spec["platform"]["seed"])
    driver = ConcurrentDriver(platform, population, seed=spec["seed"])
    run_args = dict(spec["run"])
    if sessions is not None:
        run_args["sessions"] = sessions
    report = driver.run(**run_args)
    return {
        "config": {
            "platform": spec["platform"],
            "population": spec["population"],
            "seed": spec["seed"],
            "run": spec["run"],
        },
        "report": report.as_dict(),
        # Fan-out hedging counters (zero unless the workload configures a
        # hedge delay and issues find-similar traffic) — the artifact pins
        # how often tail hedges arm, and win, under this load.
        "hedging": {
            "hedges": int(platform.metrics.counter("fleet.fanout.hedges").value),
            "hedge_wins": int(
                platform.metrics.counter("fleet.fanout.hedge_wins").value
            ),
            "find_similar_requests": report.operations.get("find_similar", 0),
        },
    }


def generate_payload() -> dict:
    return {
        "benchmark": "concurrent_load",
        "workloads": {name: run_workload(name) for name in sorted(WORKLOADS)},
    }


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_concurrent_load_smoke(benchmark):
    """Wall-clock cost of a smoke-sized concurrent day + sanity of the report."""
    outcome = benchmark.pedantic(
        lambda: run_workload("steady_overload", sessions=SMOKE_SESSIONS),
        rounds=1,
        iterations=1,
    )
    report = outcome["report"]
    assert report["sessions"] == SMOKE_SESSIONS
    assert report["requests"] > SMOKE_SESSIONS  # sessions chain several requests
    assert report["latency_ms"]["count"] > 0
    assert report["queue_wait_ms"]["count"] > 0, "no queueing under overlap?"
    # Cumulative buckets: the +Inf bucket holds every dispatched request
    # and the counts are monotone nondecreasing toward it.
    assert report["histogram"][-1]["count"] == report["completed"]
    counts = [bucket["count"] for bucket in report["histogram"]]
    assert counts == sorted(counts)
    assert report["completed"] == report["requests"] - report["shed"]


def test_artifact_matches_regeneration():
    """The checked-in artifact must reproduce byte for byte.

    This is the regression gate for the whole concurrency stack: arrivals,
    the session scheduler's processing order, per-server queueing, per-call
    clocks and admission all feed these numbers.
    """
    regenerated = render(generate_payload())
    checked_in = ARTIFACT.read_text()
    assert regenerated == checked_in, (
        "BENCH_concurrent_load.json drifted from regeneration — if the "
        "change is intentional, refresh it with "
        "`python benchmarks/bench_concurrent_load.py`"
    )


def test_artifact_meets_acceptance_bars():
    """The checked-in numbers must show the load actually overlapped."""
    payload = json.loads(ARTIFACT.read_text())
    steady = payload["workloads"]["steady_overload"]["report"]
    burst = payload["workloads"]["burst"]["report"]
    assert steady["sessions"] >= 1000 and burst["sessions"] >= 1000
    for report in (steady, burst):
        assert report["shed"] > 0, "admission never shed — not a load test"
        assert 0.0 < report["shed_rate"] < 1.0
        assert report["latency_ms"]["count"] > 0
        assert any(bucket["count"] for bucket in report["histogram"])
    # Overlap is visible as queue waits in the steady workload.
    assert steady["queue_wait_ms"]["count"] > 0
    assert steady["queue_wait_ms"]["p95"] > 0.0


def test_artifact_measures_hedged_fanout():
    """The hedged workload must actually arm tail hedges under load."""
    payload = json.loads(ARTIFACT.read_text())
    hedged = payload["workloads"]["hedged_fanout"]
    assert hedged["report"]["sessions"] >= 1000
    assert hedged["hedging"]["find_similar_requests"] > 0
    assert hedged["hedging"]["hedges"] > 0, "no hedge ever armed"
    assert 0 <= hedged["hedging"]["hedge_wins"] <= hedged["hedging"]["hedges"]
    # The plain workloads configure no hedge delay: their counters stay 0.
    for name in ("steady_overload", "burst"):
        assert payload["workloads"][name]["hedging"]["hedges"] == 0


if __name__ == "__main__":
    ARTIFACT.write_text(render(generate_payload()))
    print(f"wrote {ARTIFACT}")
