"""Benchmark for FIG-4.1 — creation of the recommendation mechanism.

Measures the real cost of the full platform bootstrap (coordinator, agents,
marketplace stocking and the 6-step Figure 4.1 creation protocol) and checks
every protocol step is performed each time.
"""

from repro.ecommerce.platform_builder import build_platform
from repro.experiments import figures
from repro.experiments.figures import CREATION_PROTOCOL_STEPS


def test_platform_bootstrap(benchmark):
    platform = benchmark(
        lambda: build_platform(num_marketplaces=2, num_sellers=2,
                               items_per_seller=10, seed=9)
    )
    assert platform.buyer_server.is_ready


def test_fig41_creation_protocol_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.fig41_creation_protocol, kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    experiment_reporter(result)
    assert all(row["all_steps_present"] for row in result.rows)
    assert all(row["steps_observed"] >= len(CREATION_PROTOCOL_STEPS) for row in result.rows)
