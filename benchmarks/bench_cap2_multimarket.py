"""Benchmark for CAP-2 — multi-marketplace information gathering.

Measures query cost and coverage as the MBA's itinerary grows from one to
four marketplaces (capability claim 3 of §5.1: the MBA collects merchandise
information from more than two online marketplaces).
"""

import pytest

from repro.ecommerce.platform_builder import build_platform
from repro.experiments import figures


@pytest.mark.parametrize("marketplaces", [1, 2, 4])
def test_itinerary_cost(benchmark, marketplaces):
    platform = build_platform(
        num_marketplaces=marketplaces, num_sellers=marketplaces,
        items_per_seller=15, seed=27, replicate_listings=False,
    )
    session = platform.login("bench-consumer")
    results = benchmark(lambda: session.query("books"))
    assert len({hit.marketplace for hit in results}) == marketplaces


def test_cap2_coverage_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.cap2_multi_marketplace,
        kwargs={"marketplace_counts": (1, 2, 3, 4)},
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    found = result.column("items_found")
    assert found == sorted(found)  # coverage grows with the itinerary
