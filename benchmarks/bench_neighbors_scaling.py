"""Benchmark: brute-force vs indexed similar-user search across populations.

The Figure 4.5 similarity search is the mechanism's hot path; this benchmark
measures how the :class:`~repro.core.neighbors.ProfileNeighborIndex` scales
against the brute-force scan as the consumer community grows, verifying at
every size that the two return identical ranked neighbor lists.

Two modes, both pytest-runnable:

- **smoke** (default): small populations, finishes in a few seconds, suitable
  for tier-1 CI (``scripts/ci_check.sh`` runs it).
- **full**: set ``REPRO_BENCH_FULL=1`` to scale to 5000 consumers, where the
  indexed path is required to be at least 5x faster than brute force.

PR 8 adds the **scoring-kernel trajectory**: the same indexed search run
through the ``dict`` reference kernel and the vectorized ``numpy`` kernel
(when importable), equivalence-checked at every population size and timed
up to 50 000 consumers in full mode.  The trajectory is checked in as
``BENCH_neighbors_scaling.json`` — a byte-reproducible ``deterministic``
block (score checksums, skip counts; regenerated and compared by CI at
smoke sizes) plus a ``measured`` block recording the full-mode timings
(wall-clock, so recorded once, validated by invariants rather than
re-timed).  Regenerate with ``REPRO_BENCH_FULL=1 python
benchmarks/bench_neighbors_scaling.py`` after an intentional change.
"""

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from repro.core.neighbors import ProfileNeighborIndex
from repro.core.scoring import numpy_available
from repro.core.sharding import ShardedNeighborIndex
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.experiments.harness import ExperimentResult, build_standard_dataset

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
POPULATION_SIZES = (1000, 2500, 5000) if FULL_MODE else (150, 400)
ARTIFACT = Path(__file__).with_name("BENCH_neighbors_scaling.json")
#: Scoring-kernel trajectory sizes.  Brute force is never run past
#: :data:`KERNEL_BRUTE_CEILING` consumers (it would dominate the run for no
#: information — the indexed paths are equivalence-checked against each
#: other there, and against brute force at every smaller size).
KERNEL_SIZES = (1000, 5000, 50000) if FULL_MODE else (150, 400)
KERNEL_SMOKE_SIZES = (150, 400)
KERNEL_BRUTE_CEILING = 5000
#: Acceptance bar: the numpy kernel must beat the PR-2 dict-kernel indexed
#: path by at least this factor at 5000 consumers (full mode only; the
#: checked-in artifact records the measured value).
KERNEL_REQUIRED_SPEEDUP = 3.0
#: Minimum indexed-vs-brute speedup demanded at the largest population.
#: Enforced only in full mode: wall-clock assertions on a loaded CI runner
#: would flake, so the smoke run asserts equivalence and merely reports
#: timings (typically ~20x even at smoke sizes).
REQUIRED_SPEEDUP = 5.0
#: How many (target, category) queries are averaged per measurement.
QUERIES = 6
#: Shard counts swept by the sharded-index benchmark.
SHARD_SWEEP = (1, 2, 4, 8)
#: Routing strategies checked for equivalence (timings reported for both).
SWEEP_ROUTINGS = ("hash", "category")
#: Minimum best-sharded-config speedup over brute force, asserted even in
#: smoke mode: the margin is enormous (the index alone is ~20x), so a 2x bar
#: holds comfortably on a loaded CI runner while still catching a broken
#: fan-out/merge path that silently fell back to quadratic work.
SHARDED_MIN_SPEEDUP_VS_BRUTE = 2.0


def _build_profiles(consumers: int):
    dataset = build_standard_dataset(
        num_consumers=consumers,
        num_items=120,
        events_per_user=8,
        seed=37,
    )
    profiles = dataset.build_profiles()
    return dataset, profiles


def _query_plan(dataset, profiles):
    """A deterministic mix of open and category-filtered searches."""
    targets = [profiles[user_id] for user_id in dataset.users[:QUERIES]]
    plan = []
    for position, target in enumerate(targets):
        if position % 2 == 0:
            plan.append((target, None))
        else:
            names = target.category_names()
            plan.append((target, names[0] if names else None))
    return plan


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, (time.perf_counter() - started) * 1000.0


def run_scaling_experiment(population_sizes=POPULATION_SIZES) -> ExperimentResult:
    """Brute vs indexed latency per population size (medians over the plan)."""
    result = ExperimentResult(
        name="neighbor-index-scaling",
        description="brute-force vs indexed similar-user search latency",
    )
    config = SimilarityConfig(top_k=10)
    for consumers in population_sizes:
        dataset, profiles = _build_profiles(consumers)
        plan = _query_plan(dataset, profiles)

        brute_ms = 0.0
        brute_results = []
        for target, category in plan:
            neighbours, elapsed = _timed(
                lambda t=target, c=category: find_similar_users(
                    t, profiles.values(), config, category=c
                )
            )
            brute_results.append(neighbours)
            brute_ms += elapsed

        index = ProfileNeighborIndex(provider=profiles.values, config=config)
        _, build_ms = _timed(index.sync)
        indexed_ms = 0.0
        for position, (target, category) in enumerate(plan):
            neighbours, elapsed = _timed(
                lambda t=target, c=category: index.find_similar(t, category=c)
            )
            indexed_ms += elapsed
            assert neighbours == brute_results[position], (
                f"indexed search diverged from brute force at {consumers} "
                f"consumers (target={target.user_id!r}, category={category!r})"
            )

        brute_avg = brute_ms / len(plan)
        indexed_avg = indexed_ms / len(plan)
        result.add_row(
            consumers=consumers,
            brute_ms=round(brute_avg, 3),
            indexed_ms=round(indexed_avg, 3),
            index_build_ms=round(build_ms, 3),
            speedup=round(brute_avg / indexed_avg, 1) if indexed_avg > 0 else float("inf"),
        )
    result.add_note(
        "speedup = per-query brute-force latency / indexed latency; the index "
        "is built once and reused, matching how RecommendationService uses it"
    )
    result.add_note(f"mode: {'full' if FULL_MODE else 'smoke'} (REPRO_BENCH_FULL=1 for full)")
    return result


def run_shard_sweep_experiment(
    consumers=POPULATION_SIZES[-1],
    shard_counts=SHARD_SWEEP,
    routings=SWEEP_ROUTINGS,
) -> ExperimentResult:
    """Sharded vs single-index vs brute-force latency across shard counts.

    Every configuration is asserted byte-for-byte equal to the brute-force
    ranking before its timing is recorded.  The single index runs in its
    PR-1 configuration (no early termination); each shard of the sharded
    index runs with the Cauchy-Schwarz norm-bound candidate skipping on,
    which is where a sharded configuration gets to beat the monolithic index
    on the same total work.
    """
    result = ExperimentResult(
        name="neighbor-shard-sweep",
        description="sharded vs single-index similar-user search latency",
    )
    config = SimilarityConfig(top_k=10)
    dataset, profiles = _build_profiles(consumers)
    plan = _query_plan(dataset, profiles)

    brute_ms = 0.0
    brute_results = []
    for target, category in plan:
        neighbours, elapsed = _timed(
            lambda t=target, c=category: find_similar_users(
                t, profiles.values(), config, category=c
            )
        )
        brute_results.append(neighbours)
        brute_ms += elapsed
    brute_avg = brute_ms / len(plan)

    single = ProfileNeighborIndex(provider=profiles.values, config=config)
    _, single_build_ms = _timed(single.sync)
    single_ms = 0.0
    for position, (target, category) in enumerate(plan):
        neighbours, elapsed = _timed(
            lambda t=target, c=category: single.find_similar(t, category=c)
        )
        single_ms += elapsed
        assert neighbours == brute_results[position]
    single_avg = single_ms / len(plan)
    result.add_row(
        configuration="single-index",
        shards=1,
        routing="-",
        query_ms=round(single_avg, 3),
        build_ms=round(single_build_ms, 3),
        speedup_vs_brute=round(brute_avg / single_avg, 1) if single_avg > 0 else float("inf"),
        speedup_vs_index=1.0,
        bound_skips=0,
    )

    for routing in routings:
        for shards in shard_counts:
            index = ShardedNeighborIndex(
                provider=profiles.values,
                config=config,
                num_shards=shards,
                routing=routing,
            )
            _, build_ms = _timed(index.sync)
            sharded_ms = 0.0
            for position, (target, category) in enumerate(plan):
                neighbours, elapsed = _timed(
                    lambda t=target, c=category: index.find_similar(t, category=c)
                )
                sharded_ms += elapsed
                assert neighbours == brute_results[position], (
                    f"sharded search diverged from brute force at {consumers} "
                    f"consumers (shards={shards}, routing={routing!r}, "
                    f"target={target.user_id!r}, category={category!r})"
                )
            sharded_avg = sharded_ms / len(plan)
            result.add_row(
                configuration=f"sharded[{routing}]",
                shards=shards,
                routing=routing,
                query_ms=round(sharded_avg, 3),
                build_ms=round(build_ms, 3),
                speedup_vs_brute=round(brute_avg / sharded_avg, 1)
                if sharded_avg > 0
                else float("inf"),
                speedup_vs_index=round(single_avg / sharded_avg, 2)
                if sharded_avg > 0
                else float("inf"),
                bound_skips=index.bound_skips,
            )
    result.add_note(
        f"population: {consumers} consumers; brute force averages "
        f"{round(brute_avg, 3)}ms per query"
    )
    result.add_note(
        "each shard runs Cauchy-Schwarz norm-bound early termination; the "
        "single index runs the PR-1 configuration without it"
    )
    result.add_note(f"mode: {'full' if FULL_MODE else 'smoke'} (REPRO_BENCH_FULL=1 for full)")
    return result


def test_neighbor_index_scaling(experiment_reporter):
    result = run_scaling_experiment()
    experiment_reporter(result)

    speedups = result.column("speedup")
    largest = result.rows[-1]
    assert largest["consumers"] == POPULATION_SIZES[-1]
    # Equivalence was asserted per query inside run_scaling_experiment; the
    # timing bar only applies in full mode, where the populations are large
    # enough for wall-clock measurements to be stable.
    if FULL_MODE:
        assert largest["speedup"] >= REQUIRED_SPEEDUP, (
            f"indexed search must be ≥{REQUIRED_SPEEDUP}x faster than brute "
            f"force at {largest['consumers']} consumers, measured "
            f"{largest['speedup']}x"
        )
        # The advantage must not collapse as the population grows.
        assert min(speedups) > 1.0


def test_shard_sweep(experiment_reporter):
    """Equivalence always; speedup bars scaled to the mode.

    Smoke: the best sharded configuration must beat brute force by
    :data:`SHARDED_MIN_SPEEDUP_VS_BRUTE` (a deliberately low bar — the real
    margin is an order of magnitude — so CI never flakes on a loaded runner).
    Full (5k consumers): at least one sharded configuration must also beat
    the monolithic single-index path outright, which is the acceptance bar
    for the norm-bound early termination paying for the fan-out/merge.
    """
    result = run_shard_sweep_experiment()
    experiment_reporter(result)

    sharded_rows = [row for row in result.rows if row["configuration"] != "single-index"]
    assert sharded_rows, "sweep produced no sharded configurations"
    best_vs_brute = max(row["speedup_vs_brute"] for row in sharded_rows)
    assert best_vs_brute >= SHARDED_MIN_SPEEDUP_VS_BRUTE, (
        f"best sharded configuration must be ≥{SHARDED_MIN_SPEEDUP_VS_BRUTE}x "
        f"faster than brute force, measured {best_vs_brute}x"
    )
    # The norm bound must actually be skipping dot products somewhere.
    assert any(row["bound_skips"] > 0 for row in sharded_rows)
    if FULL_MODE:
        best_vs_index = max(row["speedup_vs_index"] for row in sharded_rows)
        assert best_vs_index > 1.0, (
            "at the full 5k-consumer run at least one sharded configuration "
            f"must beat the single-index path, best measured {best_vs_index}x"
        )


def test_tight_term_bound_skips_no_fewer(experiment_reporter):
    """The Hölder-tightened term bound must only ever skip *more* candidates.

    Runs the same query plan through two early-terminating indexes — one
    with the plain Cauchy-Schwarz ceiling (term cosine bounded by 1), one
    with the cached L1/L-inf Hölder tightening — and asserts identical
    rankings with a skip count that does not decrease.  Part of the CI
    smoke: a regression that loosens the bound (or breaks its correctness)
    fails here before it costs query latency in production configurations.
    """
    dataset, profiles = _build_profiles(POPULATION_SIZES[0])
    config = SimilarityConfig(top_k=10)
    plan = _query_plan(dataset, profiles)

    def run(tight: bool):
        index = ProfileNeighborIndex(
            provider=profiles.values,
            config=config,
            early_termination=True,
            tight_term_bound=tight,
        )
        index.sync()
        rankings = [
            index.find_similar(target, category=category)
            for target, category in plan
        ]
        return rankings, index.bound_skips

    plain_rankings, plain_skips = run(tight=False)
    tight_rankings, tight_skips = run(tight=True)
    assert tight_rankings == plain_rankings, (
        "the tightened term bound changed a ranking — it must be score-identical"
    )
    assert tight_skips >= plain_skips, (
        f"tight bound skipped {tight_skips} candidates, fewer than the plain "
        f"Cauchy-Schwarz bound's {plain_skips}"
    )
    print(
        f"\nnorm-bound skips over {len(plan)} queries at "
        f"{POPULATION_SIZES[0]} consumers: plain={plain_skips} tight={tight_skips}"
    )


# ---------------------------------------------------------------------------
# PR-8 scoring-kernel trajectory + checked-in artifact
# ---------------------------------------------------------------------------


#: Timed passes averaged per measurement (after one untimed warm pass, so
#: the numbers are steady-state — the index and its per-target caches are
#: built once and reused, exactly how RecommendationService serves).
KERNEL_TIMING_ROUNDS = 3


def _kernel_backends():
    return ["dict", "array", "numpy"] if numpy_available() else ["dict", "array"]


def _kernel_query_plan(dataset, profiles):
    """Open (category=None) searches only: the kernel trajectory measures
    full-population block scoring; category-filtered queries take the
    scalar path on every backend and are timed by the other experiments."""
    return [(profiles[user_id], None) for user_id in dataset.users[:QUERIES]]


def _ranking_checksum(rankings) -> str:
    """Stable digest of ranked (user_id, score) lists — float bit patterns
    included, so any scoring divergence changes the checksum."""
    blob = repr(rankings).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def run_kernel_point(consumers: int):
    """One trajectory point: equivalence-checked dict vs numpy kernel timings.

    Returns ``(deterministic_row, measured_row)``.  The deterministic row is
    derived from the dict reference kernel only, so it is byte-stable whether
    or not numpy is importable; cross-backend equality is *asserted* here but
    recorded in the measured row.
    """
    config = SimilarityConfig(top_k=10)
    dataset, profiles = _build_profiles(consumers)
    plan = _kernel_query_plan(dataset, profiles)

    # Pass 1 — determinism + equivalence, early termination ON: rankings,
    # float bit patterns and Cauchy-Schwarz/Hölder skip decisions must be
    # identical across every available backend.
    rankings = {}
    skips = {}
    for backend in _kernel_backends():
        index = ProfileNeighborIndex(
            provider=profiles.values,
            config=config,
            early_termination=True,
            backend=backend,
        )
        index.sync()
        rankings[backend] = [
            index.find_similar(target, category=category)
            for target, category in plan
        ]
        skips[backend] = index.bound_skips

    for backend in _kernel_backends()[1:]:
        assert rankings[backend] == rankings["dict"], (
            f"{backend} kernel diverged from the dict reference at "
            f"{consumers} consumers"
        )
        assert skips[backend] == skips["dict"], (
            f"{backend} kernel made different skip decisions at "
            f"{consumers} consumers: {skips[backend]} != {skips['dict']}"
        )

    # Pass 2 — steady-state timing on the PR-2 indexed configuration (no
    # early termination: the trajectory measures raw scoring throughput,
    # which is exactly what the vectorized kernel accelerates).  One warm
    # pass (also equivalence-checked), then the timed rounds.
    timings = {}
    for backend in _kernel_backends():
        index = ProfileNeighborIndex(
            provider=profiles.values, config=config, backend=backend
        )
        index.sync()
        warm = [
            index.find_similar(target, category=category)
            for target, category in plan
        ]
        assert warm == rankings["dict"], (
            f"{backend} kernel diverged on the timing pass at "
            f"{consumers} consumers"
        )
        total_ms = 0.0
        for _ in range(KERNEL_TIMING_ROUNDS):
            for target, category in plan:
                _, elapsed = _timed(
                    lambda t=target, c=category: index.find_similar(
                        t, category=c
                    )
                )
                total_ms += elapsed
        timings[backend] = total_ms / (len(plan) * KERNEL_TIMING_ROUNDS)

    brute_ms = None
    if consumers <= KERNEL_BRUTE_CEILING:
        total = 0.0
        for position, (target, category) in enumerate(plan):
            neighbours, elapsed = _timed(
                lambda t=target, c=category: find_similar_users(
                    t, profiles.values(), config, category=c
                )
            )
            total += elapsed
            assert neighbours == rankings["dict"][position]
        brute_ms = round(total / len(plan), 3)

    deterministic_row = {
        "consumers": consumers,
        "queries": len(plan),
        "bound_skips": skips["dict"],
        "score_checksum": _ranking_checksum(rankings["dict"]),
    }
    numpy_ms = timings.get("numpy")
    measured_row = {
        "consumers": consumers,
        "backends_identical": True,
        "dict_ms": round(timings["dict"], 3),
        "array_ms": round(timings["array"], 3),
        "numpy_ms": round(numpy_ms, 3) if numpy_ms is not None else None,
        "kernel_speedup": (
            round(timings["dict"] / numpy_ms, 1)
            if numpy_ms
            else None
        ),
        "brute_ms": brute_ms,
    }
    return deterministic_row, measured_row


def run_kernel_trajectory(sizes=KERNEL_SIZES):
    """(deterministic rows, measured rows, reportable ExperimentResult)."""
    result = ExperimentResult(
        name="scoring-kernel-trajectory",
        description="dict-kernel vs numpy-kernel indexed search latency",
    )
    deterministic, measured = [], []
    for consumers in sizes:
        det_row, meas_row = run_kernel_point(consumers)
        deterministic.append(det_row)
        measured.append(meas_row)
        result.add_row(**{**det_row, **meas_row})
    result.add_note(
        "both kernels run the same early-terminating index; equivalence "
        "(rankings, float bit patterns, skip counts) is asserted per point"
    )
    result.add_note(
        f"numpy available: {numpy_available()} "
        f"(REPRO_NO_NUMPY=1 forces the stdlib path)"
    )
    result.add_note(f"mode: {'full' if FULL_MODE else 'smoke'}")
    return deterministic, measured, result


def generate_kernel_payload() -> dict:
    """The checked-in artifact: smoke-size deterministic block (regenerated
    byte-for-byte by CI) + full-mode measured trajectory (recorded once)."""
    deterministic, _, _ = run_kernel_trajectory(sizes=KERNEL_SMOKE_SIZES)
    _, measured, _ = run_kernel_trajectory(sizes=KERNEL_SIZES)
    return {
        "benchmark": "neighbors_scaling_kernels",
        "config": {
            "top_k": 10,
            "queries": QUERIES,
            "dataset_seed": 37,
            "early_termination": True,
        },
        "deterministic": {
            "sizes": list(KERNEL_SMOKE_SIZES),
            "rows": deterministic,
        },
        "measured": {
            "mode": "full" if FULL_MODE else "smoke",
            "numpy": numpy_available(),
            "required_speedup_at_5000": KERNEL_REQUIRED_SPEEDUP,
            "sizes": list(KERNEL_SIZES),
            "rows": measured,
        },
    }


def render_deterministic(rows) -> str:
    return json.dumps(rows, indent=2, sort_keys=True)


def test_kernel_trajectory_equivalence(experiment_reporter):
    """Smoke: kernels agree at every size.  Full: numpy must also be fast."""
    _, measured, result = run_kernel_trajectory()
    experiment_reporter(result)
    assert all(row["backends_identical"] for row in measured)
    if FULL_MODE and numpy_available():
        at_5k = next(r for r in measured if r["consumers"] == 5000)
        assert at_5k["kernel_speedup"] >= KERNEL_REQUIRED_SPEEDUP, (
            f"numpy kernel must be ≥{KERNEL_REQUIRED_SPEEDUP}x over the dict "
            f"indexed path at 5000 consumers, measured {at_5k['kernel_speedup']}x"
        )


def test_artifact_deterministic_block_matches_regeneration():
    """The checked-in deterministic block must reproduce byte for byte —
    scores, skip counts and checksums are seeded, so any drift is a real
    scoring change (regenerate with REPRO_BENCH_FULL=1 python
    benchmarks/bench_neighbors_scaling.py if intentional)."""
    payload = json.loads(ARTIFACT.read_text())
    regenerated, _, _ = run_kernel_trajectory(sizes=KERNEL_SMOKE_SIZES)
    assert render_deterministic(regenerated) == render_deterministic(
        payload["deterministic"]["rows"]
    )
    assert payload["deterministic"]["sizes"] == list(KERNEL_SMOKE_SIZES)


def test_artifact_records_full_kernel_trajectory():
    """The checked-in measured block pins the PR-8 acceptance bars."""
    payload = json.loads(ARTIFACT.read_text())
    measured = payload["measured"]
    assert measured["mode"] == "full"
    assert measured["numpy"] is True
    sizes = [row["consumers"] for row in measured["rows"]]
    assert sizes == [1000, 5000, 50000]
    assert all(row["backends_identical"] for row in measured["rows"])
    at_5k = next(r for r in measured["rows"] if r["consumers"] == 5000)
    assert at_5k["kernel_speedup"] >= measured["required_speedup_at_5000"]
    at_50k = next(r for r in measured["rows"] if r["consumers"] == 50000)
    # Brute force is never run at 50k — the trajectory's whole point.
    assert at_50k["brute_ms"] is None
    assert at_50k["numpy_ms"] is not None and at_50k["dict_ms"] is not None


@pytest.mark.parametrize("consumers", [POPULATION_SIZES[0]])
def test_indexed_query_cost(benchmark, consumers):
    """pytest-benchmark timing table for one indexed query at steady state."""
    dataset, profiles = _build_profiles(consumers)
    config = SimilarityConfig(top_k=10)
    index = ProfileNeighborIndex(provider=profiles.values, config=config)
    index.sync()
    target = profiles[dataset.users[0]]

    neighbours = benchmark(lambda: index.find_similar(target))
    assert neighbours == find_similar_users(target, profiles.values(), config)


if __name__ == "__main__":
    if not FULL_MODE:
        raise SystemExit(
            "refusing to write BENCH_neighbors_scaling.json from a smoke "
            "run — set REPRO_BENCH_FULL=1 so the measured trajectory covers "
            "the 50000-consumer point"
        )
    if not numpy_available():
        raise SystemExit(
            "refusing to write BENCH_neighbors_scaling.json without numpy — "
            "the measured block must record the vectorized kernel"
        )
    ARTIFACT.write_text(
        json.dumps(generate_kernel_payload(), indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {ARTIFACT}")
