"""Benchmark: brute-force vs indexed similar-user search across populations.

The Figure 4.5 similarity search is the mechanism's hot path; this benchmark
measures how the :class:`~repro.core.neighbors.ProfileNeighborIndex` scales
against the brute-force scan as the consumer community grows, verifying at
every size that the two return identical ranked neighbor lists.

Two modes, both pytest-runnable:

- **smoke** (default): small populations, finishes in a few seconds, suitable
  for tier-1 CI (``scripts/ci_check.sh`` runs it).
- **full**: set ``REPRO_BENCH_FULL=1`` to scale to 5000 consumers, where the
  indexed path is required to be at least 5x faster than brute force.
"""

import os
import time

import pytest

from repro.core.neighbors import ProfileNeighborIndex
from repro.core.sharding import ShardedNeighborIndex
from repro.core.similarity import SimilarityConfig, find_similar_users
from repro.experiments.harness import ExperimentResult, build_standard_dataset

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
POPULATION_SIZES = (1000, 2500, 5000) if FULL_MODE else (150, 400)
#: Minimum indexed-vs-brute speedup demanded at the largest population.
#: Enforced only in full mode: wall-clock assertions on a loaded CI runner
#: would flake, so the smoke run asserts equivalence and merely reports
#: timings (typically ~20x even at smoke sizes).
REQUIRED_SPEEDUP = 5.0
#: How many (target, category) queries are averaged per measurement.
QUERIES = 6
#: Shard counts swept by the sharded-index benchmark.
SHARD_SWEEP = (1, 2, 4, 8)
#: Routing strategies checked for equivalence (timings reported for both).
SWEEP_ROUTINGS = ("hash", "category")
#: Minimum best-sharded-config speedup over brute force, asserted even in
#: smoke mode: the margin is enormous (the index alone is ~20x), so a 2x bar
#: holds comfortably on a loaded CI runner while still catching a broken
#: fan-out/merge path that silently fell back to quadratic work.
SHARDED_MIN_SPEEDUP_VS_BRUTE = 2.0


def _build_profiles(consumers: int):
    dataset = build_standard_dataset(
        num_consumers=consumers,
        num_items=120,
        events_per_user=8,
        seed=37,
    )
    profiles = dataset.build_profiles()
    return dataset, profiles


def _query_plan(dataset, profiles):
    """A deterministic mix of open and category-filtered searches."""
    targets = [profiles[user_id] for user_id in dataset.users[:QUERIES]]
    plan = []
    for position, target in enumerate(targets):
        if position % 2 == 0:
            plan.append((target, None))
        else:
            names = target.category_names()
            plan.append((target, names[0] if names else None))
    return plan


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, (time.perf_counter() - started) * 1000.0


def run_scaling_experiment(population_sizes=POPULATION_SIZES) -> ExperimentResult:
    """Brute vs indexed latency per population size (medians over the plan)."""
    result = ExperimentResult(
        name="neighbor-index-scaling",
        description="brute-force vs indexed similar-user search latency",
    )
    config = SimilarityConfig(top_k=10)
    for consumers in population_sizes:
        dataset, profiles = _build_profiles(consumers)
        plan = _query_plan(dataset, profiles)

        brute_ms = 0.0
        brute_results = []
        for target, category in plan:
            neighbours, elapsed = _timed(
                lambda t=target, c=category: find_similar_users(
                    t, profiles.values(), config, category=c
                )
            )
            brute_results.append(neighbours)
            brute_ms += elapsed

        index = ProfileNeighborIndex(provider=profiles.values, config=config)
        _, build_ms = _timed(index.sync)
        indexed_ms = 0.0
        for position, (target, category) in enumerate(plan):
            neighbours, elapsed = _timed(
                lambda t=target, c=category: index.find_similar(t, category=c)
            )
            indexed_ms += elapsed
            assert neighbours == brute_results[position], (
                f"indexed search diverged from brute force at {consumers} "
                f"consumers (target={target.user_id!r}, category={category!r})"
            )

        brute_avg = brute_ms / len(plan)
        indexed_avg = indexed_ms / len(plan)
        result.add_row(
            consumers=consumers,
            brute_ms=round(brute_avg, 3),
            indexed_ms=round(indexed_avg, 3),
            index_build_ms=round(build_ms, 3),
            speedup=round(brute_avg / indexed_avg, 1) if indexed_avg > 0 else float("inf"),
        )
    result.add_note(
        "speedup = per-query brute-force latency / indexed latency; the index "
        "is built once and reused, matching how RecommendationService uses it"
    )
    result.add_note(f"mode: {'full' if FULL_MODE else 'smoke'} (REPRO_BENCH_FULL=1 for full)")
    return result


def run_shard_sweep_experiment(
    consumers=POPULATION_SIZES[-1],
    shard_counts=SHARD_SWEEP,
    routings=SWEEP_ROUTINGS,
) -> ExperimentResult:
    """Sharded vs single-index vs brute-force latency across shard counts.

    Every configuration is asserted byte-for-byte equal to the brute-force
    ranking before its timing is recorded.  The single index runs in its
    PR-1 configuration (no early termination); each shard of the sharded
    index runs with the Cauchy-Schwarz norm-bound candidate skipping on,
    which is where a sharded configuration gets to beat the monolithic index
    on the same total work.
    """
    result = ExperimentResult(
        name="neighbor-shard-sweep",
        description="sharded vs single-index similar-user search latency",
    )
    config = SimilarityConfig(top_k=10)
    dataset, profiles = _build_profiles(consumers)
    plan = _query_plan(dataset, profiles)

    brute_ms = 0.0
    brute_results = []
    for target, category in plan:
        neighbours, elapsed = _timed(
            lambda t=target, c=category: find_similar_users(
                t, profiles.values(), config, category=c
            )
        )
        brute_results.append(neighbours)
        brute_ms += elapsed
    brute_avg = brute_ms / len(plan)

    single = ProfileNeighborIndex(provider=profiles.values, config=config)
    _, single_build_ms = _timed(single.sync)
    single_ms = 0.0
    for position, (target, category) in enumerate(plan):
        neighbours, elapsed = _timed(
            lambda t=target, c=category: single.find_similar(t, category=c)
        )
        single_ms += elapsed
        assert neighbours == brute_results[position]
    single_avg = single_ms / len(plan)
    result.add_row(
        configuration="single-index",
        shards=1,
        routing="-",
        query_ms=round(single_avg, 3),
        build_ms=round(single_build_ms, 3),
        speedup_vs_brute=round(brute_avg / single_avg, 1) if single_avg > 0 else float("inf"),
        speedup_vs_index=1.0,
        bound_skips=0,
    )

    for routing in routings:
        for shards in shard_counts:
            index = ShardedNeighborIndex(
                provider=profiles.values,
                config=config,
                num_shards=shards,
                routing=routing,
            )
            _, build_ms = _timed(index.sync)
            sharded_ms = 0.0
            for position, (target, category) in enumerate(plan):
                neighbours, elapsed = _timed(
                    lambda t=target, c=category: index.find_similar(t, category=c)
                )
                sharded_ms += elapsed
                assert neighbours == brute_results[position], (
                    f"sharded search diverged from brute force at {consumers} "
                    f"consumers (shards={shards}, routing={routing!r}, "
                    f"target={target.user_id!r}, category={category!r})"
                )
            sharded_avg = sharded_ms / len(plan)
            result.add_row(
                configuration=f"sharded[{routing}]",
                shards=shards,
                routing=routing,
                query_ms=round(sharded_avg, 3),
                build_ms=round(build_ms, 3),
                speedup_vs_brute=round(brute_avg / sharded_avg, 1)
                if sharded_avg > 0
                else float("inf"),
                speedup_vs_index=round(single_avg / sharded_avg, 2)
                if sharded_avg > 0
                else float("inf"),
                bound_skips=index.bound_skips,
            )
    result.add_note(
        f"population: {consumers} consumers; brute force averages "
        f"{round(brute_avg, 3)}ms per query"
    )
    result.add_note(
        "each shard runs Cauchy-Schwarz norm-bound early termination; the "
        "single index runs the PR-1 configuration without it"
    )
    result.add_note(f"mode: {'full' if FULL_MODE else 'smoke'} (REPRO_BENCH_FULL=1 for full)")
    return result


def test_neighbor_index_scaling(experiment_reporter):
    result = run_scaling_experiment()
    experiment_reporter(result)

    speedups = result.column("speedup")
    largest = result.rows[-1]
    assert largest["consumers"] == POPULATION_SIZES[-1]
    # Equivalence was asserted per query inside run_scaling_experiment; the
    # timing bar only applies in full mode, where the populations are large
    # enough for wall-clock measurements to be stable.
    if FULL_MODE:
        assert largest["speedup"] >= REQUIRED_SPEEDUP, (
            f"indexed search must be ≥{REQUIRED_SPEEDUP}x faster than brute "
            f"force at {largest['consumers']} consumers, measured "
            f"{largest['speedup']}x"
        )
        # The advantage must not collapse as the population grows.
        assert min(speedups) > 1.0


def test_shard_sweep(experiment_reporter):
    """Equivalence always; speedup bars scaled to the mode.

    Smoke: the best sharded configuration must beat brute force by
    :data:`SHARDED_MIN_SPEEDUP_VS_BRUTE` (a deliberately low bar — the real
    margin is an order of magnitude — so CI never flakes on a loaded runner).
    Full (5k consumers): at least one sharded configuration must also beat
    the monolithic single-index path outright, which is the acceptance bar
    for the norm-bound early termination paying for the fan-out/merge.
    """
    result = run_shard_sweep_experiment()
    experiment_reporter(result)

    sharded_rows = [row for row in result.rows if row["configuration"] != "single-index"]
    assert sharded_rows, "sweep produced no sharded configurations"
    best_vs_brute = max(row["speedup_vs_brute"] for row in sharded_rows)
    assert best_vs_brute >= SHARDED_MIN_SPEEDUP_VS_BRUTE, (
        f"best sharded configuration must be ≥{SHARDED_MIN_SPEEDUP_VS_BRUTE}x "
        f"faster than brute force, measured {best_vs_brute}x"
    )
    # The norm bound must actually be skipping dot products somewhere.
    assert any(row["bound_skips"] > 0 for row in sharded_rows)
    if FULL_MODE:
        best_vs_index = max(row["speedup_vs_index"] for row in sharded_rows)
        assert best_vs_index > 1.0, (
            "at the full 5k-consumer run at least one sharded configuration "
            f"must beat the single-index path, best measured {best_vs_index}x"
        )


def test_tight_term_bound_skips_no_fewer(experiment_reporter):
    """The Hölder-tightened term bound must only ever skip *more* candidates.

    Runs the same query plan through two early-terminating indexes — one
    with the plain Cauchy-Schwarz ceiling (term cosine bounded by 1), one
    with the cached L1/L-inf Hölder tightening — and asserts identical
    rankings with a skip count that does not decrease.  Part of the CI
    smoke: a regression that loosens the bound (or breaks its correctness)
    fails here before it costs query latency in production configurations.
    """
    dataset, profiles = _build_profiles(POPULATION_SIZES[0])
    config = SimilarityConfig(top_k=10)
    plan = _query_plan(dataset, profiles)

    def run(tight: bool):
        index = ProfileNeighborIndex(
            provider=profiles.values,
            config=config,
            early_termination=True,
            tight_term_bound=tight,
        )
        index.sync()
        rankings = [
            index.find_similar(target, category=category)
            for target, category in plan
        ]
        return rankings, index.bound_skips

    plain_rankings, plain_skips = run(tight=False)
    tight_rankings, tight_skips = run(tight=True)
    assert tight_rankings == plain_rankings, (
        "the tightened term bound changed a ranking — it must be score-identical"
    )
    assert tight_skips >= plain_skips, (
        f"tight bound skipped {tight_skips} candidates, fewer than the plain "
        f"Cauchy-Schwarz bound's {plain_skips}"
    )
    print(
        f"\nnorm-bound skips over {len(plan)} queries at "
        f"{POPULATION_SIZES[0]} consumers: plain={plain_skips} tight={tight_skips}"
    )


@pytest.mark.parametrize("consumers", [POPULATION_SIZES[0]])
def test_indexed_query_cost(benchmark, consumers):
    """pytest-benchmark timing table for one indexed query at steady state."""
    dataset, profiles = _build_profiles(consumers)
    config = SimilarityConfig(top_k=10)
    index = ProfileNeighborIndex(provider=profiles.values, config=config)
    index.sync()
    target = profiles[dataset.users[0]]

    neighbours = benchmark(lambda: index.find_similar(target))
    assert neighbours == find_similar_users(target, profiles.values(), config)
