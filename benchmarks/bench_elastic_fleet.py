"""Benchmark: the elastic fleet under a flash crowd and a rolling upgrade.

Two scenario-level measurements of the PR-9 elasticity machinery:

- ``flash_crowd`` — a 10x arrival spike against a three-server fleet with
  the autoscaler ticking between traffic windows: the spike must scale
  the fleet out (live shard splits / whole-shard handbacks onto joined
  servers) and the drain must shrink it back to the founding floor, with
  zero consumers lost or left behind.
- ``rolling_upgrade`` — every founding server crashed, promoted around,
  recovered and handed its original shards back, one server at a time
  under continuous traffic; the founding shard map must be restored
  exactly.

The simulation is deterministic end to end, so the full reports — the
autoscaler's decision trail, fleet-size and shard-map-epoch history,
per-window traffic summaries and the safety counters — are checked in as
``BENCH_elastic_fleet.json``, and regenerating the artifact must
reproduce it byte for byte.  That check is the regression gate for the
whole elastic stack: shard-map versioning, migration bookkeeping,
replica-bootstrap handback, split routing and the control loop's
thresholds all feed these numbers.

Run ``python benchmarks/bench_elastic_fleet.py`` to regenerate the
artifact after an intentional behaviour change.
"""

import json
import os
from pathlib import Path

from repro.api.envelope import ApiStatus
from repro.ecommerce import AutoscalerPolicy, build_platform
from repro.workload import ConsumerPopulation, ScenarioRunner

FULL_MODE = os.environ.get("REPRO_BENCH_FULL") == "1"
ARTIFACT = Path(__file__).with_name("BENCH_elastic_fleet.json")

SCENARIOS = {
    "flash_crowd": {
        "platform": {"seed": 5, "num_buyer_servers": 3, "replication_factor": 1},
        "population": 150,
        "seed": 5,
        "policy": {"cooldown_ticks": 1},
        "run": {
            "sessions_per_window": 80,
            "queries_per_session": 1,
            "baseline_rate_per_ms": 0.01,
            "spike_factor": 10.0,
            "baseline_windows": 1,
            "spike_windows": 2,
            "drain_windows": 3,
        },
    },
    "rolling_upgrade": {
        "platform": {"seed": 5, "num_buyer_servers": 3, "replication_factor": 1},
        "population": 120,
        "seed": 5,
        "policy": None,
        "run": {
            "sessions_per_window": 40,
            "queries_per_session": 1,
            "arrival_rate_per_ms": 0.02,
        },
    },
}

#: Window size used by the quick smoke test.
SMOKE_SESSIONS = 30


def run_scenario(name: str, sessions_per_window=None) -> dict:
    """Run one named scenario on a fresh platform; return config + report."""
    spec = SCENARIOS[name]
    platform = build_platform(**spec["platform"])
    population = ConsumerPopulation(spec["population"], seed=spec["platform"]["seed"])
    runner = ScenarioRunner(platform, population, seed=spec["seed"])
    run_args = dict(spec["run"])
    if sessions_per_window is not None:
        run_args["sessions_per_window"] = sessions_per_window
    if name == "flash_crowd":
        report = runner.flash_crowd_day(
            policy=AutoscalerPolicy(**spec["policy"]), **run_args
        )
    else:
        report = runner.rolling_upgrade_day(**run_args)
    return {
        "config": {
            "platform": spec["platform"],
            "population": spec["population"],
            "seed": spec["seed"],
            "policy": spec["policy"],
            "run": spec["run"],
        },
        "report": report.as_dict(),
    }


def generate_payload() -> dict:
    return {
        "benchmark": "elastic_fleet",
        "scenarios": {name: run_scenario(name) for name in sorted(SCENARIOS)},
    }


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_flash_crowd_smoke(benchmark):
    """Wall-clock cost of a smoke-sized flash crowd + shape of the report."""
    outcome = benchmark.pedantic(
        lambda: run_scenario("flash_crowd", sessions_per_window=SMOKE_SESSIONS),
        rounds=1,
        iterations=1,
    )
    report = outcome["report"]
    assert report["scenario"] == "flash_crowd_day"
    assert report["requests"] > 0
    assert report["lost_consumers"] == 0
    assert report["missing_consumers"] == 0
    assert len(report["windows"]) == 6  # 1 baseline + 2 spike + 3 drain
    assert report["epoch_trail"] == sorted(report["epoch_trail"])


def test_artifact_matches_regeneration():
    """The checked-in artifact must reproduce byte for byte.

    The regression gate for the elastic stack: shard-map epochs, the
    autoscaler's thresholds and tie-breaks, migration transfer order and
    the concurrent windows all feed these bytes.
    """
    regenerated = render(generate_payload())
    checked_in = ARTIFACT.read_text()
    assert regenerated == checked_in, (
        "BENCH_elastic_fleet.json drifted from regeneration — if the "
        "change is intentional, refresh it with "
        "`python benchmarks/bench_elastic_fleet.py`"
    )


def test_artifact_meets_acceptance_bars():
    """The checked-in reports must show real elasticity, safely."""
    payload = json.loads(ARTIFACT.read_text())
    flash = payload["scenarios"]["flash_crowd"]["report"]
    upgrade = payload["scenarios"]["rolling_upgrade"]["report"]

    # Flash crowd: the spike scaled the fleet out, the drain brought it
    # back to the founding floor, and nobody was lost on the way.
    assert flash["peak_servers"] > flash["initial_servers"]
    assert flash["final_servers"] == flash["initial_servers"]
    actions = [decision["action"] for decision in flash["decisions"]]
    assert "scale-out" in actions and "scale-in" in actions
    assert flash["splits"] + flash["handbacks"] > 0
    assert flash["transferred_consumers"] > 0

    # Rolling upgrade: every founding server cycled and took its original
    # shards back.
    upgrades = [w for w in upgrade["windows"] if "server" in w]
    assert len(upgrades) == upgrade["initial_servers"]
    assert all(w["ownership_restored"] for w in upgrades)
    assert upgrade["final_servers"] == upgrade["initial_servers"]

    for report in (flash, upgrade):
        assert report["lost_consumers"] == 0
        assert report["missing_consumers"] == 0
        # The envelope taxonomy stays closed under elasticity.
        assert set(report["statuses"]) <= set(ApiStatus.ALL)
        # Shard-map epochs only ever move forward.
        assert report["epoch_trail"] == sorted(report["epoch_trail"])


if __name__ == "__main__":
    ARTIFACT.write_text(render(generate_payload()))
    print(f"wrote {ARTIFACT}")
