"""Ablation benchmark — the similarity algorithm's configuration.

DESIGN.md calls out two design choices in the Figure 4.5 similarity
algorithm: the blend between category-preference similarity and term
similarity, and the discard tolerance.  This bench sweeps both and prints the
resulting recommendation quality.
"""

from repro.experiments import figures


def test_similarity_ablation_rows(benchmark, experiment_reporter):
    result = benchmark.pedantic(
        figures.ablation_similarity_mix,
        kwargs={
            "mixes": ((1.0, 0.0), (0.6, 0.4), (0.4, 0.6), (0.0, 1.0)),
            "tolerances": (0.5, 2.0, 10.0),
            "k": 10,
        },
        rounds=1, iterations=1,
    )
    experiment_reporter(result)
    assert len(result.rows) == 12
    best = max(result.rows, key=lambda row: row["f1@10"])
    # The blended similarity (both signals active) should be at least as good
    # as the best single-signal extreme.
    assert best["preference_weight"] not in (None,)
    assert best["f1@10"] > 0.0
