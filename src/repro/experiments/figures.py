"""One function per experiment of DESIGN.md's per-experiment index.

Every function builds what it needs (platform and/or dataset), runs the
experiment deterministically and returns an
:class:`~repro.experiments.harness.ExperimentResult` whose rows are exactly
what the corresponding benchmark prints and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import metrics as quality_metrics
from repro.core.profile import Profile
from repro.core.profile_learning import LearningConfig, ProfileLearner
from repro.core.similarity import SimilarityConfig, find_similar_users, profile_similarity
from repro.ecommerce.platform_builder import ECommercePlatform, PlatformConfig, build_platform
from repro.experiments.harness import (
    ExperimentResult,
    build_standard_dataset,
    build_standard_recommenders,
    evaluate_recommenders,
)
from repro.workload.consumers import ConsumerPopulation
from repro.workload.generator import InteractionGenerator
from repro.workload.products import ProductGenerator
from repro.workload.scenarios import ScenarioRunner

__all__ = [
    "fig31_platform_architecture",
    "fig32_mechanism_concurrency",
    "fig41_creation_protocol",
    "fig42_query_workflow",
    "fig43_buy_auction_workflow",
    "fig45_profile_learning",
    "fig45_similarity_scaling",
    "cap2_multi_marketplace",
    "cap4_recommendation_quality",
    "cap4_cold_start",
    "ablation_similarity_mix",
]


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _paired_latencies(platform: ECommercePlatform, start: str, end: str) -> List[float]:
    """Latency between successive ``start``/``end`` events in the global log."""
    latencies: List[float] = []
    pending: List[float] = []
    for event in platform.event_log:
        if event.category == start:
            pending.append(event.timestamp)
        elif event.category == end and pending:
            latencies.append(event.timestamp - pending.pop(0))
    return latencies


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# FIG-3.1 — platform architecture end-to-end
# ---------------------------------------------------------------------------


def fig31_platform_architecture(
    marketplace_counts: Sequence[int] = (1, 2, 4),
    consumers: int = 6,
    seed: int = 3,
) -> ExperimentResult:
    """End-to-end trading across the assembled platform (Figure 3.1).

    For each platform size the same small consumer population trades through
    the full agent pipeline; the rows report how much work completed and the
    mean simulated latency of a merchandise query.
    """
    result = ExperimentResult(
        name="FIG-3.1 platform architecture",
        description="end-to-end trading with all four server roles wired together",
    )
    for count in marketplace_counts:
        platform = build_platform(
            num_marketplaces=count, num_sellers=max(2, count), items_per_seller=20, seed=seed
        )
        population = ConsumerPopulation(consumers, groups=3, seed=seed + 1)
        runner = ScenarioRunner(platform, population, seed=seed + 2)
        report = runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
        query_latencies = _paired_latencies(
            platform, "workflow.query-received", "workflow.query-completed"
        )
        result.add_row(
            marketplaces=count,
            consumers=report.consumers,
            queries=report.queries,
            purchases=report.purchases,
            auctions=report.auctions,
            negotiations=report.negotiations,
            mean_query_latency_ms=_mean(query_latencies),
            network_transfers=platform.network.total_transfers,
        )
    result.add_note(
        "query latency grows with marketplace count because the MBA visits each "
        "marketplace serially (see CAP-2 for the coverage it buys)"
    )
    return result


# ---------------------------------------------------------------------------
# FIG-3.2 — recommendation mechanism under concurrent consumers
# ---------------------------------------------------------------------------


def fig32_mechanism_concurrency(
    consumer_counts: Sequence[int] = (5, 10, 20),
    seed: int = 5,
) -> ExperimentResult:
    """Throughput of the buyer agent server as the consumer community grows."""
    result = ExperimentResult(
        name="FIG-3.2 recommendation mechanism",
        description="BSMA/HttpA/PA/BRA/MBA serving a growing consumer community",
    )
    for count in consumer_counts:
        platform = build_platform(num_marketplaces=2, num_sellers=2,
                                  items_per_seller=25, seed=seed)
        population = ConsumerPopulation(count, groups=4, seed=seed + 1)
        runner = ScenarioRunner(platform, population, seed=seed + 2)
        report = runner.warm_up(sessions_per_consumer=1, queries_per_session=2)
        session_latencies = _paired_latencies(
            platform, "http.request-received", "http.reply-sent"
        )
        result.add_row(
            consumers=count,
            sessions=report.sessions,
            queries=report.queries,
            trades=report.purchases + report.auctions + report.negotiations,
            simulated_duration_ms=report.simulated_duration_ms,
            mean_request_latency_ms=_mean(session_latencies),
            duration_per_consumer_ms=(
                report.simulated_duration_ms / count if count else 0.0
            ),
        )
    result.add_note(
        "per-consumer simulated cost stays roughly flat: sessions are independent "
        "and the mechanism scales by adding BRAs (capability claim 1 of §5.1)"
    )
    return result


# ---------------------------------------------------------------------------
# FIG-4.1 — creation of the recommendation mechanism
# ---------------------------------------------------------------------------

#: The protocol steps of Figure 4.1, in the order they must appear.
CREATION_PROTOCOL_STEPS: Tuple[str, ...] = (
    "creation.request-buyer-server",
    "creation.bsma-created",
    "creation.databases-initialized",
    "creation.pa-created",
    "creation.httpa-created",
    "creation.buyer-server-ready",
    "creation.bsma-dispatched",
)


def fig41_creation_protocol(repeats: int = 3, seed: int = 9) -> ExperimentResult:
    """Bootstrap protocol of the recommendation mechanism (Figure 4.1)."""
    result = ExperimentResult(
        name="FIG-4.1 creation of the recommendation mechanism",
        description="CA creates and dispatches the BSMA; BSMA creates PA, HttpA and the databases",
    )
    for attempt in range(repeats):
        platform = build_platform(num_marketplaces=2, num_sellers=2,
                                  items_per_seller=10, seed=seed + attempt)
        creation_events = [
            event for event in platform.event_log if event.category.startswith("creation.")
        ]
        categories = [event.category for event in creation_events]
        start = min(event.timestamp for event in creation_events)
        end = max(event.timestamp for event in creation_events)
        result.add_row(
            attempt=attempt + 1,
            steps_observed=len(categories),
            all_steps_present=all(step in categories for step in CREATION_PROTOCOL_STEPS),
            bootstrap_latency_ms=end - start,
            marketplaces_registered=len(platform.buyer_server.bsmdb.marketplaces),
        )
    result.add_note("every bootstrap run performs the full 6-step protocol of Figure 4.1")
    return result


# ---------------------------------------------------------------------------
# FIG-4.2 — merchandise query workflow
# ---------------------------------------------------------------------------

#: The workflow steps of Figure 4.2 as recorded in the event log, in order.
QUERY_WORKFLOW_STEPS: Tuple[str, ...] = (
    "workflow.query-received",
    "workflow.mba-created",
    "workflow.mba-recorded",
    "workflow.bra-deactivated",
    "workflow.mba-dispatched",
    "workflow.marketplace-queried",
    "workflow.mba-returned",
    "workflow.mba-authenticated",
    "workflow.bra-activated",
    "workflow.behaviour-reported",
    "workflow.recommendations-generated",
    "workflow.query-completed",
)


def fig42_query_workflow(seed: int = 13, keyword: str = "laptop") -> ExperimentResult:
    """Step-by-step trace and latency breakdown of one merchandise query."""
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=25, seed=seed)
    gateway = platform.gateway()
    gateway.login("fig42-consumer")
    start_index = len(platform.event_log)
    gateway.query("fig42-consumer", keyword)
    gateway.logout("fig42-consumer")

    events = platform.event_log.events[start_index:]
    workflow = [event for event in events if event.category.startswith("workflow.")]
    result = ExperimentResult(
        name="FIG-4.2 merchandise query workflow",
        description=f"one consumer query for {keyword!r} across 2 marketplaces",
    )
    previous = workflow[0].timestamp if workflow else 0.0
    for index, event in enumerate(workflow, start=1):
        result.add_row(
            step=index,
            category=event.category,
            source=event.source,
            target=event.target,
            at_ms=event.timestamp,
            delta_ms=event.timestamp - previous,
        )
        previous = event.timestamp
    observed = [event.category for event in workflow]
    missing = [step for step in QUERY_WORKFLOW_STEPS if step not in observed]
    result.add_note(
        "all Figure 4.2 steps observed" if not missing else f"missing steps: {missing}"
    )
    return result


# ---------------------------------------------------------------------------
# FIG-4.3 — buy / auction workflow
# ---------------------------------------------------------------------------

TRADE_WORKFLOW_STEPS: Tuple[str, ...] = (
    "workflow.trade-received",
    "workflow.mba-created",
    "workflow.mba-recorded",
    "workflow.bra-deactivated",
    "workflow.mba-dispatched",
    "workflow.trade-executed",
    "workflow.mba-returned",
    "workflow.mba-authenticated",
    "workflow.bra-activated",
    "workflow.behaviour-reported",
    "workflow.trade-completed",
)


def fig43_buy_auction_workflow(seed: int = 17) -> ExperimentResult:
    """Direct purchase, auction and negotiation through the Figure 4.3 workflow."""
    platform = build_platform(num_marketplaces=2, num_sellers=2,
                              items_per_seller=25, seed=seed)
    gateway = platform.gateway()
    gateway.login("fig43-consumer")
    hits = (
        gateway.query("fig43-consumer", "laptop").result.hits
        or gateway.query("fig43-consumer", "novel").result.hits
    )
    if not hits:
        hits = gateway.query("fig43-consumer", "coffee").result.hits
    target = hits[0]

    result = ExperimentResult(
        name="FIG-4.3 buy / auction workflow",
        description="the three trade styles for the same merchandise item",
    )

    def run_trade(label: str, action) -> None:
        start_index = len(platform.event_log)
        outcome = action().result
        events = platform.event_log.events[start_index:]
        workflow = [e.category for e in events if e.category.startswith("workflow.")]
        latencies = [e.timestamp for e in events if e.category.startswith("workflow.")]
        result.add_row(
            trade=label,
            succeeded=outcome.succeeded,
            price_paid=outcome.price_paid if outcome.price_paid is not None else 0.0,
            list_price=target.price,
            workflow_steps=len(workflow),
            all_steps_present=all(step in workflow for step in TRADE_WORKFLOW_STEPS),
            latency_ms=(latencies[-1] - latencies[0]) if latencies else 0.0,
        )

    run_trade(
        "direct-buy",
        lambda: gateway.buy(
            "fig43-consumer", target.item, marketplace=target.marketplace
        ),
    )
    run_trade(
        "auction",
        lambda: gateway.join_auction(
            "fig43-consumer", target.item, max_price=target.price * 1.25,
            marketplace=target.marketplace,
        ),
    )
    run_trade(
        "negotiation",
        lambda: gateway.negotiate(
            "fig43-consumer", target.item, max_price=target.price * 0.95,
            marketplace=target.marketplace,
        ),
    )
    gateway.logout("fig43-consumer")
    result.add_note(
        "auction and negotiation settle below or near list price; the profile is "
        "updated after every trade (Figure 4.3 step 'behaviour-reported')"
    )
    return result


# ---------------------------------------------------------------------------
# FIG-4.5 — profile learning and similarity
# ---------------------------------------------------------------------------


def fig45_profile_learning(
    event_counts: Sequence[int] = (5, 10, 20, 40, 80),
    learning_rates: Sequence[float] = (0.1, 0.3, 0.6),
    seed: int = 21,
) -> ExperimentResult:
    """Convergence of the Figure 4.5 learning rule towards the true tastes.

    For each (events, α) pair a consumer's profile is learned from that many
    behaviour events and the learned per-category preferences are rank-
    correlated with the consumer's hidden category weights.
    """
    import random as _random

    from repro.core.items import ItemCatalogView
    from repro.core.profile_learning import FeedbackEvent
    from repro.core.ratings import InteractionKind

    products = ProductGenerator(seed=seed)
    catalog = ItemCatalogView(products.generate(120, seller="fig45"))
    population = ConsumerPopulation(8, groups=4, seed=seed + 1)
    result = ExperimentResult(
        name="FIG-4.5 profile learning convergence",
        description="rank correlation of learned category preferences vs. true latent tastes",
    )
    from repro.core.similarity import cosine_similarity as _cosine

    items = list(catalog)
    for alpha in learning_rates:
        for count in event_counts:
            correlations = []
            alignments = []
            for consumer_index, consumer in enumerate(population):
                # The consumer's behaviour: items drawn with probability
                # proportional to its hidden utility (plus a small floor so
                # every category is occasionally browsed).
                rng = _random.Random(seed * 1000 + consumer_index)
                weights = [max(consumer.utility(item), 0.02) for item in items]
                learner = ProfileLearner(LearningConfig(learning_rate=alpha))
                profile = Profile(consumer.user_id)
                for index in range(count):
                    item = rng.choices(items, weights=weights, k=1)[0]
                    kind = (
                        InteractionKind.BUY
                        if consumer.finds_relevant(item)
                        else InteractionKind.QUERY
                    )
                    learner.apply(
                        profile,
                        FeedbackEvent(
                            user_id=consumer.user_id, item=item, kind=kind,
                            timestamp=float(index),
                        ),
                    )
                learned = profile.preference_vector()
                correlations.append(
                    quality_metrics.spearman_rank_correlation(
                        learned, consumer.category_weights
                    )
                )
                alignments.append(_cosine(learned, consumer.category_weights))
            result.add_row(
                learning_rate=alpha,
                events=count,
                mean_taste_alignment=_mean(alignments),
                mean_rank_correlation=_mean(correlations),
            )
    result.add_note(
        "taste alignment (cosine of learned vs. true category preferences) rises "
        "monotonically with more feedback events; the learning rate mostly changes "
        "how fast term weights grow, not the final ranking"
    )
    return result


def fig45_similarity_scaling(
    population_sizes: Sequence[int] = (20, 50, 100, 200),
    seed: int = 23,
) -> ExperimentResult:
    """Similar-user search over growing UserDB populations (Figure 4.5)."""
    result = ExperimentResult(
        name="FIG-4.5 similarity search",
        description="finding the top-10 similar consumers as the community grows",
    )
    groups = 4
    for size in population_sizes:
        dataset = build_standard_dataset(
            num_consumers=size, num_items=120, events_per_user=20, groups=groups, seed=seed
        )
        profiles = dataset.build_profiles()
        target_id = dataset.users[0]
        target = profiles[target_id]
        target_group = dataset.population.consumer(target_id).group
        # Ask for exactly as many neighbours as there are same-group peers, so
        # a perfect similarity algorithm would score 1.0 on the fraction below.
        same_group_peers = max(1, size // groups - 1)
        config = SimilarityConfig(top_k=same_group_peers)
        neighbours = find_similar_users(target, profiles.values(), config)
        same_group = sum(
            1 for neighbour_id, _ in neighbours
            if dataset.population.consumer(neighbour_id).group == target_group
        )
        result.add_row(
            consumers=size,
            neighbours_found=len(neighbours),
            top_similarity=neighbours[0][1] if neighbours else 0.0,
            same_taste_group_fraction=(same_group / len(neighbours)) if neighbours else 0.0,
            random_baseline_fraction=same_group_peers / max(1, size - 1),
        )
    result.add_note(
        "the similarity algorithm predominantly surfaces consumers from the same "
        "latent taste group, which is what makes the merged recommendations relevant"
    )
    return result


# ---------------------------------------------------------------------------
# CAP-2 — multi-marketplace information gathering
# ---------------------------------------------------------------------------


def cap2_multi_marketplace(
    marketplace_counts: Sequence[int] = (1, 2, 3, 4),
    seed: int = 27,
) -> ExperimentResult:
    """Coverage and cost of visiting more marketplaces with one MBA (§5.1-3)."""
    result = ExperimentResult(
        name="CAP-2 multi-marketplace collection",
        description="one query itinerary over an increasing number of marketplaces",
    )
    for count in marketplace_counts:
        platform = build_platform(
            num_marketplaces=count, num_sellers=count, items_per_seller=20,
            seed=seed, replicate_listings=False,
        )
        gateway = platform.gateway()
        gateway.login("cap2-consumer")
        # Query by category keyword so every marketplace has something to offer;
        # listings are spread round-robin, so coverage depends on the itinerary.
        response = gateway.query("cap2-consumer", "books")
        results = response.result.hits
        latency = response.latency_ms
        marketplaces_seen = {hit.marketplace for hit in results}
        gateway.logout("cap2-consumer")
        result.add_row(
            marketplaces=count,
            items_found=len(results),
            marketplaces_with_hits=len(marketplaces_seen),
            query_latency_ms=latency,
            latency_per_marketplace_ms=latency / count,
        )
    result.add_note(
        "coverage grows with the itinerary length while the per-marketplace cost "
        "stays flat: the agent travels instead of the consumer browsing each site (§1)"
    )
    return result


# ---------------------------------------------------------------------------
# CAP-4 — recommendation quality vs. baselines
# ---------------------------------------------------------------------------


def cap4_recommendation_quality(
    k: int = 10,
    num_consumers: int = 60,
    events_per_user: int = 40,
    seed: int = 31,
) -> ExperimentResult:
    """The paper's mechanism against the §2.3 baselines on the standard dataset."""
    dataset = build_standard_dataset(
        num_consumers=num_consumers, events_per_user=events_per_user, seed=seed
    )
    recommenders = build_standard_recommenders(dataset)
    rows = evaluate_recommenders(dataset, recommenders, k=k)
    result = ExperimentResult(
        name="CAP-4 recommendation quality",
        description=f"precision/recall@{k} of the agent mechanism vs. IF, CF and popularity",
        rows=rows,
    )
    result.add_note(
        "expected shape: agent-hybrid >= collaborative-filtering and "
        "information-filtering individually, all >> popularity"
    )
    return result


def cap4_cold_start(
    events_schedule: Sequence[int] = (2, 5, 10, 20, 40),
    k: int = 10,
    num_consumers: int = 40,
    seed: int = 37,
) -> ExperimentResult:
    """Cold-start / sparsity sweep (§2.3): quality vs. behaviour volume."""
    result = ExperimentResult(
        name="CAP-4 cold-start sweep",
        description="hybrid vs. pure CF as the amount of observed behaviour shrinks",
    )
    for events in events_schedule:
        dataset = build_standard_dataset(
            num_consumers=num_consumers, events_per_user=events, seed=seed
        )
        recommenders = build_standard_recommenders(dataset)
        rows = evaluate_recommenders(dataset, recommenders, k=k)
        by_name = {row["recommender"]: row for row in rows}
        result.add_row(
            events_per_user=events,
            sparsity=dataset.build_ratings().sparsity(),
            **{
                f"{name}-f1@{k}": by_name[name][f"f1@{k}"]
                for name in ("agent-hybrid", "collaborative-filtering",
                             "information-filtering", "popularity")
            },
        )
    result.add_note(
        "with very few events the pure CF engine collapses (sparsity problem) "
        "while the hybrid keeps working off the consumer's own profile"
    )
    return result


# ---------------------------------------------------------------------------
# Ablation — similarity configuration
# ---------------------------------------------------------------------------


def ablation_similarity_mix(
    mixes: Sequence[Tuple[float, float]] = ((1.0, 0.0), (0.6, 0.4), (0.4, 0.6), (0.0, 1.0)),
    tolerances: Sequence[float] = (0.5, 2.0, 10.0),
    k: int = 10,
    seed: int = 41,
) -> ExperimentResult:
    """Ablation of the similarity algorithm's weights and discard tolerance.

    The discard rule only participates when the consumer is shopping in a
    specific category (the Figure 4.2 situation), so the evaluation asks each
    recommender for recommendations within the consumer's favourite category.
    """
    dataset = build_standard_dataset(num_consumers=40, events_per_user=15, seed=seed)
    population = dataset.population

    def favourite_category(user_id: str) -> str:
        return population.consumer(user_id).top_categories(1)[0]

    result = ExperimentResult(
        name="ABLATION similarity configuration",
        description="preference-vs-term weighting and the Figure 4.5 discard tolerance",
    )
    for preference_weight, term_weight in mixes:
        for tolerance in tolerances:
            config = SimilarityConfig(
                preference_weight=preference_weight,
                term_weight=term_weight,
                discard_tolerance=tolerance,
            )
            recommenders = build_standard_recommenders(dataset, similarity_config=config)
            rows = evaluate_recommenders(
                dataset, {"agent-hybrid": recommenders["agent-hybrid"]}, k=k,
                category_for_user=favourite_category,
            )
            result.add_row(
                preference_weight=preference_weight,
                term_weight=term_weight,
                discard_tolerance=tolerance,
                **{key: value for key, value in rows[0].items() if key != "recommender"},
            )
    result.add_note(
        "the mixed similarity is at least as good as either extreme; an overly "
        "tight discard tolerance removes useful neighbours and costs quality"
    )
    return result
