"""Plain-text reporting for experiment results."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "print_result"]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Render a list of row dicts as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def print_result(result: "ExperimentResult") -> None:  # noqa: F821 - forward ref
    """Print one experiment result the way EXPERIMENTS.md quotes them."""
    print(f"== {result.name} ==")
    if result.description:
        print(result.description)
    print(format_table(result.rows))
    for note in result.notes:
        print(f"note: {note}")
    print()
