"""Run every experiment of the paper's evaluation and print the results.

Usage::

    python -m repro.experiments            # full sweep (a few minutes)
    python -m repro.experiments --quick    # reduced parameters (~30 seconds)
    python -m repro.experiments --only fig42 cap4-quality

The printed tables are the ones recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.experiments import figures
from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import print_result


def _registry(quick: bool) -> Dict[str, Callable[[], ExperimentResult]]:
    """Experiment id -> runnable, with reduced parameters in quick mode."""
    if quick:
        return {
            "fig31": lambda: figures.fig31_platform_architecture((1, 2), consumers=3),
            "fig32": lambda: figures.fig32_mechanism_concurrency((5, 10)),
            "fig41": lambda: figures.fig41_creation_protocol(repeats=2),
            "fig42": figures.fig42_query_workflow,
            "fig43": figures.fig43_buy_auction_workflow,
            "fig45-learning": lambda: figures.fig45_profile_learning((5, 20, 40), (0.3,)),
            "fig45-similarity": lambda: figures.fig45_similarity_scaling((20, 50)),
            "cap2": lambda: figures.cap2_multi_marketplace((1, 2)),
            "cap4-quality": lambda: figures.cap4_recommendation_quality(
                num_consumers=25, events_per_user=25
            ),
            "cap4-cold-start": lambda: figures.cap4_cold_start((3, 20), num_consumers=15),
            "ablation": lambda: figures.ablation_similarity_mix(
                mixes=((1.0, 0.0), (0.6, 0.4)), tolerances=(0.5, 10.0)
            ),
        }
    return {
        "fig31": figures.fig31_platform_architecture,
        "fig32": figures.fig32_mechanism_concurrency,
        "fig41": figures.fig41_creation_protocol,
        "fig42": figures.fig42_query_workflow,
        "fig43": figures.fig43_buy_auction_workflow,
        "fig45-learning": figures.fig45_profile_learning,
        "fig45-similarity": figures.fig45_similarity_scaling,
        "cap2": figures.cap2_multi_marketplace,
        "cap4-quality": figures.cap4_recommendation_quality,
        "cap4-cold-start": figures.cap4_cold_start,
        "ablation": figures.ablation_similarity_mix,
    }


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every figure of the paper's evaluation.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="use reduced parameters for a fast sweep")
    parser.add_argument("--only", nargs="+", default=None, metavar="ID",
                        help="run only the listed experiment ids")
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    args = parser.parse_args(argv)

    registry = _registry(args.quick)
    if args.list:
        for name in registry:
            print(name)
        return 0

    selected = args.only if args.only else list(registry)
    unknown = [name for name in selected if name not in registry]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; use --list to see them")

    for name in selected:
        result = registry[name]()
        print_result(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
