"""Shared machinery for the experiments.

Everything here is deterministic given the seeds, so every experiment (and the
numbers quoted in EXPERIMENTS.md) can be regenerated exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import metrics as quality_metrics
from repro.core.collaborative import CollaborativeFilteringRecommender
from repro.core.hybrid import AgentHybridRecommender
from repro.core.information_filtering import InformationFilteringRecommender
from repro.core.items import ItemCatalogView
from repro.core.popularity import PopularityRecommender
from repro.core.profile import Profile
from repro.core.ratings import RatingsStore
from repro.core.recommender import Recommender
from repro.core.similarity import SimilarityConfig
from repro.workload.consumers import ConsumerPopulation
from repro.workload.generator import InteractionDataset, InteractionGenerator
from repro.workload.products import ProductGenerator

__all__ = [
    "ExperimentResult",
    "build_standard_dataset",
    "build_standard_recommenders",
    "evaluate_recommenders",
]


@dataclass
class ExperimentResult:
    """Rows produced by one experiment plus free-form notes."""

    name: str
    description: str = ""
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> Dict[str, object]:
        row = dict(values)
        self.rows.append(row)
        return row

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]


def build_standard_dataset(
    num_consumers: int = 60,
    num_items: int = 150,
    events_per_user: int = 40,
    groups: int = 4,
    exploration: float = 0.15,
    seed: int = 11,
) -> InteractionDataset:
    """The standard offline dataset used by the quality experiments."""
    products = ProductGenerator(seed=seed)
    catalog = ItemCatalogView(products.generate(num_items, seller="standard"))
    population = ConsumerPopulation(num_consumers, groups=groups, seed=seed + 1)
    generator = InteractionGenerator(seed=seed + 2)
    return generator.generate(
        population,
        catalog,
        events_per_user=events_per_user,
        exploration=exploration,
    )


def build_standard_recommenders(
    dataset: InteractionDataset,
    similarity_config: Optional[SimilarityConfig] = None,
) -> Dict[str, Recommender]:
    """The engine line-up compared throughout the quality experiments."""
    profiles = dataset.build_profiles()
    ratings = dataset.build_ratings()
    catalog = dataset.catalog

    def profile_of(user_id: str) -> Optional[Profile]:
        return profiles.get(user_id)

    def all_profiles():
        return list(profiles.values())

    return {
        "popularity": PopularityRecommender(ratings, catalog),
        "information-filtering": InformationFilteringRecommender(catalog, profile_of),
        "collaborative-filtering": CollaborativeFilteringRecommender(ratings, catalog),
        "agent-hybrid": AgentHybridRecommender(
            ratings=ratings,
            catalog=catalog,
            profile_of=profile_of,
            all_profiles=all_profiles,
            similarity_config=similarity_config or SimilarityConfig(),
        ),
    }


def evaluate_recommenders(
    dataset: InteractionDataset,
    recommenders: Dict[str, Recommender],
    k: int = 10,
    users: Optional[Sequence[str]] = None,
    category_for_user: Optional[Callable[[str], Optional[str]]] = None,
) -> List[Dict[str, object]]:
    """Average quality metrics of each recommender over the test users.

    Returns one row per recommender with precision/recall/F1/NDCG/hit-rate at
    ``k`` plus catalogue coverage, matching the layout EXPERIMENTS.md quotes
    for experiment CAP-4.  ``category_for_user`` optionally supplies the
    merchandise category each user is assumed to be shopping in (the Figure
    4.2 situation); it is what makes the Figure 4.5 discard rule take part in
    the evaluation.
    """
    selected = list(users) if users is not None else dataset.users
    rows: List[Dict[str, object]] = []
    for name, recommender in sorted(recommenders.items()):
        precisions: List[float] = []
        recalls: List[float] = []
        f1s: List[float] = []
        ndcgs: List[float] = []
        hits: List[float] = []
        all_lists: List[List[str]] = []
        evaluated = 0
        for user_id in selected:
            relevant = dataset.relevant_items(user_id)
            if not relevant:
                continue
            category = category_for_user(user_id) if category_for_user else None
            recommended = [
                rec.item_id for rec in recommender.recommend(user_id, k=k, category=category)
            ]
            all_lists.append(recommended)
            precisions.append(quality_metrics.precision_at_k(recommended, relevant, k))
            recalls.append(quality_metrics.recall_at_k(recommended, relevant, k))
            f1s.append(quality_metrics.f1_at_k(recommended, relevant, k))
            ndcgs.append(quality_metrics.ndcg_at_k(recommended, relevant, k))
            hits.append(quality_metrics.hit_rate_at_k(recommended, relevant, k))
            evaluated += 1

        def _mean(values: List[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        rows.append(
            {
                "recommender": name,
                "users": evaluated,
                f"precision@{k}": _mean(precisions),
                f"recall@{k}": _mean(recalls),
                f"f1@{k}": _mean(f1s),
                f"ndcg@{k}": _mean(ndcgs),
                f"hit-rate@{k}": _mean(hits),
                "coverage": quality_metrics.catalog_coverage(all_lists, len(dataset.catalog)),
            }
        )
    return rows
