"""Experiment harness regenerating every figure of the paper's evaluation.

The paper's evaluation consists of architecture/workflow figures and four
claimed capabilities rather than numeric tables; DESIGN.md maps each of them
to an executable experiment.  This package hosts those experiments so that the
benchmarks under ``benchmarks/`` and the scripts under ``examples/`` share one
implementation:

- :mod:`repro.experiments.figures` — one function per experiment id
  (FIG-3.1, FIG-3.2, FIG-4.1, FIG-4.2, FIG-4.3, FIG-4.5, CAP-2, CAP-4).
- :mod:`repro.experiments.harness` — shared machinery: building platforms and
  datasets, evaluating a set of recommenders, collecting rows.
- :mod:`repro.experiments.reporting` — plain-text table rendering used when an
  experiment is run as a script.
"""

from repro.experiments.harness import (
    ExperimentResult,
    build_standard_dataset,
    build_standard_recommenders,
    evaluate_recommenders,
)
from repro.experiments.reporting import format_table, print_result
from repro.experiments import figures

__all__ = [
    "ExperimentResult",
    "build_standard_dataset",
    "build_standard_recommenders",
    "evaluate_recommenders",
    "format_table",
    "print_result",
    "figures",
]
