"""Naming and location services for the agent runtime.

The directory answers two questions the runtime keeps asking:

1. *Which context runs on host X?*  (host name → :class:`AgletContext`)
2. *Where is agent Y right now?*    (agent id → host name)

The paper's BSMDB plays this role for the buyer agent server ("the on-line
BRA information and the corresponding MBA that migrate to marketplace will
also be recorded in BSMDB"); the directory is the platform-wide equivalent
that lets proxies stay location-transparent while agents migrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import AgentNotFoundError, HostUnreachableError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.agents.context import AgletContext

__all__ = ["ContextDirectory"]


class ContextDirectory:
    """Registry of contexts (one per host) and current agent locations."""

    def __init__(self) -> None:
        self._contexts: Dict[str, "AgletContext"] = {}
        self._locations: Dict[str, str] = {}

    # -- contexts -----------------------------------------------------------

    def register_context(self, context: "AgletContext") -> None:
        self._contexts[context.host_name] = context

    def unregister_context(self, host_name: str) -> None:
        self._contexts.pop(host_name, None)

    def context_for(self, host_name: str) -> "AgletContext":
        if host_name not in self._contexts:
            raise HostUnreachableError(f"no agent context registered on host {host_name!r}")
        return self._contexts[host_name]

    def has_context(self, host_name: str) -> bool:
        return host_name in self._contexts

    def contexts(self) -> List["AgletContext"]:
        return [self._contexts[name] for name in sorted(self._contexts)]

    # -- agent locations ----------------------------------------------------

    def record_location(self, agent_id: str, host_name: str) -> None:
        self._locations[agent_id] = host_name

    def forget(self, agent_id: str) -> None:
        self._locations.pop(agent_id, None)

    def locate(self, agent_id: str) -> str:
        if agent_id not in self._locations:
            raise AgentNotFoundError(f"agent {agent_id!r} has no known location")
        return self._locations[agent_id]

    def knows(self, agent_id: str) -> bool:
        return agent_id in self._locations

    def agents_on(self, host_name: str) -> List[str]:
        return sorted(
            agent_id for agent_id, host in self._locations.items() if host == host_name
        )

    def all_agents(self) -> Dict[str, str]:
        return dict(self._locations)
