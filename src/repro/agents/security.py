"""Authentication of mobile agents returning to their home server.

Principle 2 of §4.1: "MBA must authenticate itself to BSMA when MBA finishes
its work and migrates back to the recommendation mechanism."  Future-work item
4 asks for a stronger mechanism.  This module implements both:

- a **credential scheme**: before dispatch the home server issues the MBA an
  HMAC-signed credential binding the agent id, its owner and an expiry time;
  on return the server verifies the signature and freshness;
- an optional **challenge/response** step (the future-work hardening): the
  returning agent must answer a nonce challenge with an HMAC keyed by the
  credential's session key, proving it still holds the secret it left with.
"""

from __future__ import annotations

import hashlib
import hmac
import random
import secrets
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import AuthenticationError

__all__ = ["AgentCredential", "AuthenticationService"]


@dataclass(frozen=True)
class AgentCredential:
    """Signed credential issued to a mobile agent before dispatch."""

    agent_id: str
    owner: str
    issued_at: float
    expires_at: float
    session_key: str
    signature: str

    def is_expired(self, now: float) -> bool:
        return now > self.expires_at


class AuthenticationService:
    """Issues and verifies credentials for mobile agents (one per home server).

    By default the signing secret and the per-credential tokens draw from
    OS entropy (``secrets``), which is fine for a standalone service but
    breaks same-seed reproducibility of anything that stores a session key
    or nonce.  A simulated platform therefore passes both a derived
    ``secret`` *and* a seeded ``rng``: the tokens then come from the RNG
    (same 32-hex-char shape as ``secrets.token_hex(16)``) and an identical
    seed yields an identical credential/nonce stream.
    """

    def __init__(self, server_name: str, secret: Optional[bytes] = None,
                 credential_lifetime_ms: float = 600_000.0,
                 rng: Optional[random.Random] = None) -> None:
        self.server_name = server_name
        self._secret = secret if secret is not None else secrets.token_bytes(32)
        self.credential_lifetime_ms = credential_lifetime_ms
        self._rng = rng
        self._revoked: set = set()
        self._issued: Dict[str, AgentCredential] = {}
        self.issued_count = 0
        self.verified_count = 0
        self.rejected_count = 0

    def _token(self) -> str:
        """A fresh 128-bit token, deterministic when a seeded RNG was given."""
        if self._rng is not None:
            return "%032x" % self._rng.getrandbits(128)
        return secrets.token_hex(16)

    # -- issuing ------------------------------------------------------------

    def _sign(self, agent_id: str, owner: str, issued_at: float, expires_at: float,
              session_key: str) -> str:
        material = f"{self.server_name}|{agent_id}|{owner}|{issued_at}|{expires_at}|{session_key}"
        return hmac.new(self._secret, material.encode("utf-8"), hashlib.sha256).hexdigest()

    def issue(self, agent_id: str, owner: str, now: float) -> AgentCredential:
        """Issue a fresh credential for ``agent_id`` owned by ``owner``."""
        session_key = self._token()
        expires_at = now + self.credential_lifetime_ms
        signature = self._sign(agent_id, owner, now, expires_at, session_key)
        credential = AgentCredential(
            agent_id=agent_id,
            owner=owner,
            issued_at=now,
            expires_at=expires_at,
            session_key=session_key,
            signature=signature,
        )
        self._issued[agent_id] = credential
        self.issued_count += 1
        return credential

    def revoke(self, agent_id: str) -> None:
        """Revoke any credential issued to ``agent_id``."""
        self._revoked.add(agent_id)

    # -- verification -------------------------------------------------------

    def verify(self, credential: AgentCredential, now: float) -> bool:
        """Verify a returning agent's credential; raise on any failure."""
        if credential.agent_id in self._revoked:
            self.rejected_count += 1
            raise AuthenticationError(
                f"credential for agent {credential.agent_id!r} has been revoked"
            )
        if credential.is_expired(now):
            self.rejected_count += 1
            raise AuthenticationError(
                f"credential for agent {credential.agent_id!r} expired at "
                f"{credential.expires_at:.1f}ms (now {now:.1f}ms)"
            )
        expected = self._sign(
            credential.agent_id,
            credential.owner,
            credential.issued_at,
            credential.expires_at,
            credential.session_key,
        )
        if not hmac.compare_digest(expected, credential.signature):
            self.rejected_count += 1
            raise AuthenticationError(
                f"credential signature mismatch for agent {credential.agent_id!r}"
            )
        self.verified_count += 1
        return True

    # -- challenge / response (future-work hardening) ------------------------

    def challenge(self) -> str:
        """Produce a fresh nonce for the challenge/response exchange."""
        return self._token()

    @staticmethod
    def respond(credential: AgentCredential, challenge: str) -> str:
        """Compute the response an agent must give for ``challenge``."""
        return hmac.new(
            credential.session_key.encode("utf-8"),
            challenge.encode("utf-8"),
            hashlib.sha256,
        ).hexdigest()

    def verify_response(
        self, credential: AgentCredential, challenge: str, response: str, now: float
    ) -> bool:
        """Verify the challenge/response pair on top of the credential check."""
        self.verify(credential, now)
        expected = self.respond(credential, challenge)
        if not hmac.compare_digest(expected, response):
            self.rejected_count += 1
            raise AuthenticationError(
                f"challenge/response failed for agent {credential.agent_id!r}"
            )
        return True
