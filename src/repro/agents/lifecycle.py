"""Agent lifecycle states and legal transitions.

The Aglet model has four externally visible states.  An aglet is *active*
while it lives in a context's memory, *deactivated* while serialized to the
context's storage (the paper's BSMA deactivates a BRA while its MBA is away,
§4.1-3), *in transit* during a dispatch, and *disposed* once destroyed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.errors import AgentLifecycleError

__all__ = ["AgletState", "LEGAL_TRANSITIONS", "check_transition", "AgletInfo"]


class AgletState(enum.Enum):
    """Externally visible lifecycle state of an aglet."""

    ACTIVE = "active"
    DEACTIVATED = "deactivated"
    IN_TRANSIT = "in-transit"
    DISPOSED = "disposed"


LEGAL_TRANSITIONS: Dict[AgletState, FrozenSet[AgletState]] = {
    AgletState.ACTIVE: frozenset(
        {AgletState.DEACTIVATED, AgletState.IN_TRANSIT, AgletState.DISPOSED}
    ),
    AgletState.DEACTIVATED: frozenset({AgletState.ACTIVE, AgletState.DISPOSED}),
    AgletState.IN_TRANSIT: frozenset({AgletState.ACTIVE, AgletState.DISPOSED}),
    AgletState.DISPOSED: frozenset(),
}


def check_transition(current: AgletState, target: AgletState) -> None:
    """Raise :class:`AgentLifecycleError` when ``current -> target`` is illegal."""
    if target not in LEGAL_TRANSITIONS[current]:
        raise AgentLifecycleError(
            f"illegal aglet state transition {current.value} -> {target.value}"
        )


@dataclass
class AgletInfo:
    """Bookkeeping record a context keeps about each aglet it ever hosted."""

    aglet_id: str
    agent_type: str
    owner: str
    created_at: float
    state: AgletState = AgletState.ACTIVE
    location: str = ""
    origin: str = ""
    hops: int = 0
    messages_handled: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def transition(self, target: AgletState) -> None:
        """Validate and apply a state transition."""
        check_transition(self.state, target)
        self.state = target
