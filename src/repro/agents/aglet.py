"""The :class:`Aglet` base class.

An aglet is an autonomous object hosted by an :class:`AgletContext`.  Its
observable behaviour is defined by overriding lifecycle callbacks and
``handle_message``; everything else (creation, migration, deactivation,
message routing) is handled by the context.

The callback vocabulary mirrors IBM Aglets:

============================  =================================================
Callback                      Called when
============================  =================================================
``on_creation(**kwargs)``     the aglet is created (once, on its origin host)
``on_clone(original)``        a clone has been created from ``original``
``on_dispatching(dest)``      just before the aglet leaves its current host
``on_arrival(origin)``        just after the aglet arrives on a new host
``on_reverting(dest)``        just before a retraction pulls the aglet home
``on_deactivating()``         just before state capture for deactivation
``on_activation()``           just after reactivation from storage
``on_disposing()``            just before the aglet is destroyed
``handle_message(message)``   a message addressed to the aglet arrives
============================  =================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.errors import AgentLifecycleError, MessageDeliveryError
from repro.agents.lifecycle import AgletInfo, AgletState
from repro.agents.messages import Message, Reply

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.context import AgletContext
    from repro.agents.proxy import AgletProxy

__all__ = ["Aglet"]


class Aglet:
    """Base class for every agent in the system.

    Subclasses override the lifecycle callbacks they care about and
    ``handle_message``.  Instance attributes set in ``on_creation`` travel
    with the aglet when it migrates or is deactivated.
    """

    #: Human-readable agent type used in ids and the directory; subclasses
    #: override it (``"BRA"``, ``"MBA"``, ``"BSMA"`` ...).
    agent_type: str = "Aglet"

    def __init__(self) -> None:
        self._context: Optional["AgletContext"] = None
        self._proxy: Optional["AgletProxy"] = None
        self._info: Optional[AgletInfo] = None

    # -- runtime bindings ----------------------------------------------------

    def bind(self, context: "AgletContext", info: AgletInfo, proxy: "AgletProxy") -> None:
        """Bind the aglet to its hosting context (called by the runtime)."""
        self._context = context
        self._info = info
        self._proxy = proxy

    def unbind(self) -> None:
        """Detach the aglet from its context (migration / deactivation)."""
        self._context = None

    @property
    def context(self) -> "AgletContext":
        if self._context is None:
            raise AgentLifecycleError(
                f"aglet {self.aglet_id} is not bound to a context (deactivated or in transit)"
            )
        return self._context

    @property
    def proxy(self) -> "AgletProxy":
        if self._proxy is None:
            raise AgentLifecycleError("aglet has not been created through a context")
        return self._proxy

    @property
    def info(self) -> AgletInfo:
        if self._info is None:
            raise AgentLifecycleError("aglet has not been created through a context")
        return self._info

    @property
    def aglet_id(self) -> str:
        return self._info.aglet_id if self._info is not None else f"unbound-{id(self)}"

    @property
    def state(self) -> AgletState:
        return self.info.state

    @property
    def location(self) -> str:
        """Name of the host currently running this aglet."""
        return self.info.location

    @property
    def owner(self) -> str:
        return self.info.owner

    @property
    def now(self) -> float:
        """Current simulated time as seen from the hosting context."""
        return self.context.now

    # -- lifecycle callbacks (no-ops by default) ------------------------------

    def on_creation(self, **kwargs: Any) -> None:
        """Initialise agent state; called exactly once at creation time."""

    def on_clone(self, original: "Aglet") -> None:
        """Called on the *clone* right after cloning."""

    def on_dispatching(self, destination: str) -> None:
        """Called just before the aglet migrates to ``destination``."""

    def on_arrival(self, origin: str) -> None:
        """Called right after the aglet arrives from ``origin``."""

    def on_reverting(self, destination: str) -> None:
        """Called just before a retraction pulls the aglet back home."""

    def on_deactivating(self) -> None:
        """Called just before the aglet is serialized to storage."""

    def on_activation(self) -> None:
        """Called right after the aglet is restored from storage."""

    def on_disposing(self) -> None:
        """Called just before the aglet is destroyed."""

    # -- messaging -----------------------------------------------------------

    def handle_message(self, message: Message) -> Reply:
        """Handle one message; subclasses override.

        The default implementation rejects every message so protocol gaps are
        loud in tests rather than silently ignored.
        """
        return Reply.failure(
            message.kind,
            f"{type(self).__name__} does not handle message kind {message.kind!r}",
            message.correlation_id,
        )

    def send_to(self, target: Any, message_kind: str, **payload: Any) -> Reply:
        """Send a message to another agent and wait for its reply.

        ``target`` may be an :class:`AgletProxy`, an aglet id string, or an
        :class:`Aglet` instance.  Delivery is charged to the simulated network
        when the target lives on another host.  The parameter is named
        ``message_kind`` (not ``kind``) so payloads may carry their own
        ``kind`` argument.
        """
        message = Message(kind=message_kind, payload=payload, sender=self.aglet_id)
        return self.context.send_message(target, message)

    # -- convenience operations ----------------------------------------------

    def dispatch_to(self, destination: str) -> "AgletProxy":
        """Migrate this aglet to ``destination`` (a host name)."""
        return self.context.dispatch(self, destination)

    def deactivate(self) -> None:
        """Ask the hosting context to deactivate this aglet to storage."""
        self.context.deactivate(self)

    def dispose(self) -> None:
        """Destroy this aglet."""
        self.context.dispose(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._info.state.value if self._info else "unbound"
        return f"{type(self).__name__}(id={self.aglet_id!r}, state={state})"
