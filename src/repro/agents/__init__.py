"""Aglet-style mobile agent runtime.

The paper builds on IBM Aglets: Java objects that migrate between hosts with
their code and state, exchange messages, and can be deactivated to storage and
re-activated later.  This package reimplements that programming model in pure
Python on top of the simulated platform:

- :mod:`repro.agents.lifecycle` — agent states and legal transitions.
- :mod:`repro.agents.messages` — typed messages and replies.
- :mod:`repro.agents.aglet` — the :class:`Aglet` base class with the standard
  lifecycle callbacks (``on_creation``, ``on_arrival``, ``on_deactivating`` ...).
- :mod:`repro.agents.context` — the per-host :class:`AgletContext` runtime
  offering create / clone / dispatch / retract / deactivate / activate /
  dispose, exactly the operations §3.1 lists for the mobile agent platform.
- :mod:`repro.agents.proxy` — location-transparent handles used to message
  agents wherever they currently are.
- :mod:`repro.agents.directory` — naming: host name → context, agent id →
  location.
- :mod:`repro.agents.serialization` — state capture/restore for migration and
  deactivation.
- :mod:`repro.agents.security` — authentication of returning mobile agents
  (§4.1 principle 2 and future-work item 4).
"""

from repro.agents.lifecycle import AgletState, AgletInfo
from repro.agents.messages import Message, Reply
from repro.agents.aglet import Aglet
from repro.agents.context import AgletContext
from repro.agents.proxy import AgletProxy
from repro.agents.directory import ContextDirectory
from repro.agents.security import AuthenticationService, AgentCredential
from repro.agents.serialization import capture_state, restore_state

__all__ = [
    "AgletState",
    "AgletInfo",
    "Message",
    "Reply",
    "Aglet",
    "AgletContext",
    "AgletProxy",
    "ContextDirectory",
    "AuthenticationService",
    "AgentCredential",
    "capture_state",
    "restore_state",
]
