"""Typed messages exchanged between agents.

The paper's recommendation mechanism coordinates its functional agents purely
through message passing (§4.1 principle 6) and requires all MBAs to use the
same message type (§4.1 principle 5).  A :class:`Message` therefore carries a
``kind`` string — the message type — plus an arbitrary payload dictionary, and
every handled message produces a :class:`Reply`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["Message", "Reply", "MessageKinds"]

_message_ids = itertools.count(1)


class MessageKinds:
    """Well-known message kinds used by the e-commerce platform.

    Centralizing the strings keeps the platform honest about §4.1 principle 5:
    every mobile buyer agent speaks the same message vocabulary.
    """

    # Buyer-side protocol (Figures 4.2 / 4.3)
    LOGIN = "buyer.login"
    LOGOUT = "buyer.logout"
    REGISTER = "buyer.register"
    QUERY = "buyer.query"
    BUY = "buyer.buy"
    AUCTION_JOIN = "buyer.auction.join"
    NEGOTIATE = "buyer.negotiate"
    RECOMMENDATIONS = "buyer.recommendations"
    RATE = "buyer.rate"
    HOTTEST = "buyer.hottest"
    CROSS_SELL = "buyer.cross-sell"
    BEHAVIOUR_REPORT = "profile.behaviour-report"
    PROFILE_UPDATE = "profile.update"
    PROFILE_LOAD = "profile.load"

    # Marketplace-side protocol
    MARKET_QUERY = "market.query"
    MARKET_BUY = "market.buy"
    MARKET_AUCTION_BID = "market.auction.bid"
    MARKET_AUCTION_OPEN = "market.auction.open"
    MARKET_NEGOTIATE = "market.negotiate"
    MARKET_CATALOG = "market.catalog"

    # Platform management protocol (Figure 4.1)
    SERVER_REGISTER = "platform.server-register"
    CREATE_BUYER_SERVER = "platform.create-buyer-server"
    AGENT_ARRIVED = "platform.agent-arrived"
    AGENT_RETURNED = "platform.agent-returned"
    AUTHENTICATE = "platform.authenticate"


@dataclass
class Message:
    """A message addressed to an agent.

    Attributes:
        kind: the message type (see :class:`MessageKinds`).
        payload: message arguments.
        sender: the aglet id or logical name of the sender.
        correlation_id: stable id used to relate replies to requests.
    """

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    sender: str = ""
    correlation_id: int = field(default_factory=lambda: next(_message_ids))

    def argument(self, key: str, default: Any = None) -> Any:
        """Fetch one payload argument with a default."""
        return self.payload.get(key, default)

    def require(self, key: str) -> Any:
        """Fetch one payload argument, raising ``KeyError`` when it is absent."""
        if key not in self.payload:
            raise KeyError(f"message {self.kind!r} is missing required argument {key!r}")
        return self.payload[key]

    def reply(self, ok: bool = True, **payload: Any) -> "Reply":
        """Build a reply correlated with this message."""
        return Reply(kind=self.kind, ok=ok, payload=payload, correlation_id=self.correlation_id)


@dataclass
class Reply:
    """The response produced by handling a :class:`Message`."""

    kind: str
    ok: bool = True
    payload: Dict[str, Any] = field(default_factory=dict)
    correlation_id: int = 0
    error: str = ""

    @classmethod
    def failure(cls, kind: str, error: str, correlation_id: int = 0) -> "Reply":
        return cls(kind=kind, ok=False, payload={}, correlation_id=correlation_id, error=error)

    def value(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)

    def require(self, key: str) -> Any:
        if key not in self.payload:
            raise KeyError(f"reply to {self.kind!r} is missing value {key!r}")
        return self.payload[key]
