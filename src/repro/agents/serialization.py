"""State capture and restore for migrating or deactivated aglets.

When an aglet is dispatched to another host or deactivated to storage, the
runtime captures its instance state (everything except its binding to the
local context) and later restores it — the Python analogue of Aglets moving
"program code as well as the states of all the objects it is carrying".

Capture uses :func:`copy.deepcopy` so an agent deactivated to storage cannot
be mutated behind the runtime's back, and the captured blob size is estimated
so the network model can charge migration payloads realistically.
"""

from __future__ import annotations

import copy
import sys
from typing import Any, Dict, Tuple

from repro.errors import SerializationError

__all__ = ["capture_state", "restore_state", "estimate_payload_bytes", "StateSnapshot"]

#: Instance attributes owned by the runtime rather than the agent; they are
#: never part of a migration payload and are re-bound on arrival.
RUNTIME_ATTRIBUTES = ("_context", "_proxy", "_info")


class StateSnapshot(dict):
    """A captured agent state: a plain dict with a payload-size estimate."""

    @property
    def payload_bytes(self) -> int:
        return estimate_payload_bytes(self)


def _estimate(value: Any, depth: int = 0) -> int:
    """Rough, deterministic size estimate of a Python value in bytes."""
    if depth > 8:
        return 64
    if value is None or isinstance(value, bool):
        return 8
    if isinstance(value, (int, float)):
        return 16
    if isinstance(value, str):
        return 48 + len(value)
    if isinstance(value, bytes):
        return 48 + len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 56 + sum(_estimate(item, depth + 1) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            _estimate(key, depth + 1) + _estimate(item, depth + 1)
            for key, item in value.items()
        )
    if hasattr(value, "__dict__"):
        return 64 + _estimate(vars(value), depth + 1)
    return int(sys.getsizeof(value)) if hasattr(sys, "getsizeof") else 64


def estimate_payload_bytes(state: Dict[str, Any]) -> int:
    """Estimate how many bytes a captured state occupies on the wire."""
    return _estimate(state)


def capture_state(agent: Any) -> StateSnapshot:
    """Capture the migratable state of ``agent``.

    Runtime bindings (context, proxy, info record) are excluded; everything
    else is deep-copied.  Objects that cannot be deep-copied make the agent
    non-migratable, which surfaces as :class:`SerializationError`.
    """
    state: Dict[str, Any] = {}
    for key, value in vars(agent).items():
        if key in RUNTIME_ATTRIBUTES:
            continue
        try:
            state[key] = copy.deepcopy(value)
        except Exception as exc:  # pragma: no cover - defensive
            raise SerializationError(
                f"attribute {key!r} of {type(agent).__name__} cannot be serialized: {exc}"
            ) from exc
    return StateSnapshot(state)


def restore_state(agent: Any, snapshot: Dict[str, Any]) -> None:
    """Restore a previously captured state onto ``agent``."""
    if not isinstance(snapshot, dict):
        raise SerializationError(
            f"state snapshot must be a dict, got {type(snapshot).__name__}"
        )
    for key, value in snapshot.items():
        if key in RUNTIME_ATTRIBUTES:
            continue
        setattr(agent, key, copy.deepcopy(value))
