"""Location-transparent handles to aglets.

A proxy is what other agents and the application layer hold instead of a raw
aglet reference.  Messages sent through a proxy are routed by the directory to
wherever the aglet currently lives, so callers never care whether the agent
has migrated, and the runtime can charge the network model for remote hops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import AgentNotFoundError
from repro.agents.messages import Message, Reply

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.directory import ContextDirectory

__all__ = ["AgletProxy"]


class AgletProxy:
    """Handle to an aglet, valid across migrations and deactivations."""

    def __init__(self, aglet_id: str, agent_type: str, directory: "ContextDirectory") -> None:
        self.aglet_id = aglet_id
        self.agent_type = agent_type
        self._directory = directory

    @property
    def location(self) -> str:
        """Host currently running (or storing) the aglet."""
        return self._directory.locate(self.aglet_id)

    @property
    def exists(self) -> bool:
        """Whether the directory still knows about the aglet."""
        return self._directory.knows(self.aglet_id)

    def send(self, message: Message, from_host: str = "") -> Reply:
        """Deliver ``message`` to the aglet wherever it is and return the reply.

        ``from_host`` names the sending host so the network model can charge
        the hop; an empty string means "same host as the target" (no network
        charge), which is what agent-internal calls use.
        """
        host = self.location
        context = self._directory.context_for(host)
        return context.deliver(self.aglet_id, message, from_host=from_host)

    def request(self, kind: str, from_host: str = "", sender: str = "", **payload: Any) -> Reply:
        """Convenience wrapper building the :class:`Message` for the caller."""
        return self.send(Message(kind=kind, payload=payload, sender=sender), from_host=from_host)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AgletProxy) and other.aglet_id == self.aglet_id

    def __hash__(self) -> int:
        return hash(self.aglet_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = self.location if self.exists else "<gone>"
        return f"AgletProxy({self.aglet_id!r} @ {where})"
