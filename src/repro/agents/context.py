"""The per-host aglet runtime (context).

An :class:`AgletContext` is the Python analogue of an Aglet server running on
one host.  It supports the full operation set the paper's mobile agent
platform layer promises (§3.1): creation, cloning, deletion (dispose) and
migration (dispatch/retract) of mobile agents, plus deactivation to storage
and reactivation — the operations BSMA applies to BRAs while their MBAs are
away (§4.1 principle 3).

All inter-host traffic (messages to remote agents, migrations) is charged to
the simulated network through the shared :class:`Transport`, so workflow
latencies in the benchmarks reflect the number of network hops each figure's
protocol requires.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.errors import (
    AgentLifecycleError,
    AgentNotFoundError,
    DispatchError,
    MessageDeliveryError,
)
from repro.agents.aglet import Aglet
from repro.agents.directory import ContextDirectory
from repro.agents.lifecycle import AgletInfo, AgletState
from repro.agents.messages import Message, Reply
from repro.agents.proxy import AgletProxy
from repro.agents.serialization import capture_state, restore_state
from repro.agents.security import AuthenticationService
from repro.platform.host import Host
from repro.platform.transport import Transport

__all__ = ["AgletContext"]

#: Default payload size charged for a plain inter-agent message.
MESSAGE_PAYLOAD_BYTES = 256


class AgletContext:
    """Runtime hosting aglets on one simulated host."""

    def __init__(
        self,
        host: Host,
        transport: Transport,
        directory: ContextDirectory,
        auth: Optional[AuthenticationService] = None,
    ) -> None:
        self.host = host
        self.transport = transport
        self.directory = directory
        self.auth = auth if auth is not None else AuthenticationService(host.name)
        self._active: Dict[str, Aglet] = {}
        self._storage: Dict[str, Tuple[Type[Aglet], Dict[str, Any], AgletInfo, AgletProxy]] = {}
        # Per-context sequence: aglet ids embed the host name, so a local
        # counter still yields platform-unique ids while keeping whole runs
        # reproducible — a process-global counter would leak state between
        # same-seed platforms (id string lengths feed payload-size estimates,
        # and therefore the simulated clock).
        self._id_counter = itertools.count(1)
        directory.register_context(self)
        host.attach_service("aglet-context", self)

    # -- identity -------------------------------------------------------------

    @property
    def host_name(self) -> str:
        return self.host.name

    @property
    def now(self) -> float:
        return self.transport.scheduler.clock.now

    def _new_id(self, agent_type: str) -> str:
        return f"{agent_type}-{next(self._id_counter)}@{self.host_name}"

    # -- creation / cloning / disposal ----------------------------------------

    def create(self, aglet_class: Type[Aglet], owner: str = "", **kwargs: Any) -> Aglet:
        """Create an aglet of ``aglet_class`` on this host and return it.

        ``kwargs`` are passed to the aglet's ``on_creation`` callback.
        """
        aglet = aglet_class()
        info = AgletInfo(
            aglet_id=self._new_id(aglet_class.agent_type),
            agent_type=aglet_class.agent_type,
            owner=owner,
            created_at=self.now,
            state=AgletState.ACTIVE,
            location=self.host_name,
            origin=self.host_name,
        )
        proxy = AgletProxy(info.aglet_id, info.agent_type, self.directory)
        aglet.bind(self, info, proxy)
        self._active[info.aglet_id] = aglet
        self.directory.record_location(info.aglet_id, self.host_name)
        aglet.on_creation(**kwargs)
        self.transport.metrics.counter("agents.created").increment()
        self.transport.event_log.record(
            self.now, "agent.created", self.host_name, info.aglet_id,
            agent_type=info.agent_type, owner=owner,
        )
        return aglet

    def clone(self, aglet: Aglet) -> Aglet:
        """Create a clone of ``aglet`` on this host (same state, new identity)."""
        self._require_active(aglet)
        snapshot = capture_state(aglet)
        duplicate = type(aglet)()
        info = AgletInfo(
            aglet_id=self._new_id(aglet.info.agent_type),
            agent_type=aglet.info.agent_type,
            owner=aglet.info.owner,
            created_at=self.now,
            state=AgletState.ACTIVE,
            location=self.host_name,
            origin=self.host_name,
        )
        proxy = AgletProxy(info.aglet_id, info.agent_type, self.directory)
        duplicate.bind(self, info, proxy)
        restore_state(duplicate, snapshot)
        self._active[info.aglet_id] = duplicate
        self.directory.record_location(info.aglet_id, self.host_name)
        duplicate.on_clone(aglet)
        self.transport.metrics.counter("agents.cloned").increment()
        return duplicate

    def dispose(self, aglet: Aglet) -> None:
        """Destroy ``aglet``: it leaves the directory and cannot be used again."""
        self._require_active(aglet)
        aglet.on_disposing()
        aglet.info.transition(AgletState.DISPOSED)
        self._active.pop(aglet.aglet_id, None)
        self.directory.forget(aglet.aglet_id)
        aglet.unbind()
        self.transport.metrics.counter("agents.disposed").increment()
        self.transport.event_log.record(
            self.now, "agent.disposed", self.host_name, aglet.aglet_id,
        )

    # -- migration -------------------------------------------------------------

    def dispatch(self, aglet: Aglet, destination: str) -> AgletProxy:
        """Migrate ``aglet`` to ``destination`` and return its (unchanged) proxy."""
        self._require_active(aglet)
        if destination == self.host_name:
            return aglet.proxy
        if not self.directory.has_context(destination):
            raise DispatchError(f"no aglet context on destination host {destination!r}")

        aglet.on_dispatching(destination)
        aglet.info.transition(AgletState.IN_TRANSIT)
        snapshot = capture_state(aglet)
        payload = max(512, snapshot.payload_bytes)
        try:
            self.transport.deliver(
                self.host_name, destination, "agent-dispatch", payload_bytes=payload
            )
        except Exception:
            # Migration failed: the agent stays home and becomes active again.
            aglet.info.transition(AgletState.ACTIVE)
            raise

        self._active.pop(aglet.aglet_id, None)
        target = self.directory.context_for(destination)
        target._receive(aglet, snapshot, origin=self.host_name)
        self.transport.metrics.counter("agents.dispatched").increment()
        return aglet.proxy

    def _receive(self, aglet: Aglet, snapshot: Dict[str, Any], origin: str) -> None:
        """Install a migrating aglet arriving from ``origin``."""
        restore_state(aglet, snapshot)
        aglet.bind(self, aglet.info, aglet.proxy)
        aglet.info.transition(AgletState.ACTIVE)
        aglet.info.location = self.host_name
        aglet.info.hops += 1
        self._active[aglet.aglet_id] = aglet
        self.directory.record_location(aglet.aglet_id, self.host_name)
        aglet.on_arrival(origin)
        self.transport.event_log.record(
            self.now, "agent.arrived", origin, self.host_name, aglet_id=aglet.aglet_id,
        )

    def retract(self, aglet_id: str) -> Aglet:
        """Pull a previously dispatched aglet back to this host."""
        location = self.directory.locate(aglet_id)
        if location == self.host_name:
            return self.get_local(aglet_id)
        remote = self.directory.context_for(location)
        aglet = remote.get_local(aglet_id)
        aglet.on_reverting(self.host_name)
        remote.dispatch(aglet, self.host_name)
        return self.get_local(aglet_id)

    # -- deactivation ------------------------------------------------------------

    def deactivate(self, aglet: Aglet) -> None:
        """Serialize ``aglet`` to this context's storage (Aglet.deactivate())."""
        self._require_active(aglet)
        aglet.on_deactivating()
        snapshot = capture_state(aglet)
        aglet.info.transition(AgletState.DEACTIVATED)
        self._storage[aglet.aglet_id] = (type(aglet), dict(snapshot), aglet.info, aglet.proxy)
        self._active.pop(aglet.aglet_id, None)
        aglet.unbind()
        self.transport.metrics.counter("agents.deactivated").increment()
        self.transport.event_log.record(
            self.now, "agent.deactivated", self.host_name, aglet.aglet_id,
        )

    def activate(self, aglet_id: str) -> Aglet:
        """Restore a deactivated aglet from storage (Aglet.activate())."""
        if aglet_id not in self._storage:
            raise AgentNotFoundError(
                f"aglet {aglet_id!r} is not deactivated on host {self.host_name!r}"
            )
        aglet_class, snapshot, info, proxy = self._storage.pop(aglet_id)
        aglet = aglet_class()
        aglet.bind(self, info, proxy)
        restore_state(aglet, snapshot)
        info.transition(AgletState.ACTIVE)
        info.location = self.host_name
        self._active[aglet_id] = aglet
        self.directory.record_location(aglet_id, self.host_name)
        aglet.on_activation()
        self.transport.metrics.counter("agents.activated").increment()
        self.transport.event_log.record(
            self.now, "agent.activated", self.host_name, aglet_id,
        )
        return aglet

    def is_deactivated(self, aglet_id: str) -> bool:
        return aglet_id in self._storage

    # -- messaging ----------------------------------------------------------------

    def deliver(self, aglet_id: str, message: Message, from_host: str = "") -> Reply:
        """Deliver ``message`` to a local aglet, charging the network if remote.

        ``from_host`` identifies the sending host; when it differs from this
        context's host the request and the reply each cost one network hop.
        """
        remote = bool(from_host) and from_host != self.host_name
        if remote:
            self.transport.deliver(
                from_host, self.host_name, "message", payload_bytes=MESSAGE_PAYLOAD_BYTES
            )
        if aglet_id in self._storage:
            raise MessageDeliveryError(
                f"aglet {aglet_id!r} is deactivated on {self.host_name!r}; "
                "activate it before sending messages"
            )
        if aglet_id not in self._active:
            raise AgentNotFoundError(
                f"aglet {aglet_id!r} is not active on host {self.host_name!r}"
            )
        aglet = self._active[aglet_id]
        aglet.info.messages_handled += 1
        self.transport.metrics.counter("messages.delivered").increment()
        reply = aglet.handle_message(message)
        if reply is None:
            reply = Reply(kind=message.kind, ok=True, correlation_id=message.correlation_id)
        if remote:
            self.transport.deliver(
                self.host_name, from_host, "message-reply", payload_bytes=MESSAGE_PAYLOAD_BYTES
            )
        return reply

    def send_message(self, target: Any, message: Message) -> Reply:
        """Send ``message`` to ``target`` (proxy, aglet id or aglet instance)."""
        aglet_id = self._resolve_target(target)
        location = self.directory.locate(aglet_id)
        destination = self.directory.context_for(location)
        return destination.deliver(aglet_id, message, from_host=self.host_name)

    @staticmethod
    def _resolve_target(target: Any) -> str:
        if isinstance(target, AgletProxy):
            return target.aglet_id
        if isinstance(target, Aglet):
            return target.aglet_id
        if isinstance(target, str):
            return target
        raise MessageDeliveryError(f"cannot address message target {target!r}")

    # -- introspection --------------------------------------------------------------

    def get_local(self, aglet_id: str) -> Aglet:
        """Return the locally active aglet with ``aglet_id``."""
        if aglet_id not in self._active:
            raise AgentNotFoundError(
                f"aglet {aglet_id!r} is not active on host {self.host_name!r}"
            )
        return self._active[aglet_id]

    def active_aglets(self, agent_type: Optional[str] = None) -> List[Aglet]:
        """All active aglets on this host, optionally filtered by type."""
        aglets = list(self._active.values())
        if agent_type is not None:
            aglets = [a for a in aglets if a.info.agent_type == agent_type]
        return aglets

    def active_count(self, agent_type: Optional[str] = None) -> int:
        return len(self.active_aglets(agent_type))

    def deactivated_ids(self) -> List[str]:
        return sorted(self._storage)

    # -- internal helpers -------------------------------------------------------------

    def _require_active(self, aglet: Aglet) -> None:
        if aglet.aglet_id not in self._active:
            raise AgentLifecycleError(
                f"aglet {aglet.aglet_id!r} is not active on host {self.host_name!r}"
            )
        if aglet.state is not AgletState.ACTIVE:
            raise AgentLifecycleError(
                f"aglet {aglet.aglet_id!r} is in state {aglet.state.value!r}, expected active"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AgletContext(host={self.host_name!r}, active={len(self._active)}, "
            f"deactivated={len(self._storage)})"
        )
