"""Transport layer: moving bytes between hosts on the simulated clock.

Both agent messages and agent migrations (dispatch/retract) ultimately become
payload transfers between two hosts.  The :class:`Transport` charges the
network model for each transfer, advances the shared clock and records the
transfer in the platform event log so the workflow figures can be replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NetworkError
from repro.platform.clock import Scheduler
from repro.platform.events import EventLog
from repro.platform.metrics import MetricsRegistry
from repro.platform.network import SimulatedNetwork, TransferOutcome

__all__ = ["TransferReceipt", "Transport"]


@dataclass(frozen=True)
class TransferReceipt:
    """Receipt returned for a completed transfer."""

    source: str
    destination: str
    kind: str
    payload_bytes: int
    departed_at: float
    arrived_at: float

    @property
    def latency_ms(self) -> float:
        return self.arrived_at - self.departed_at


class Transport:
    """Moves messages and migrating agents between hosts.

    The transport is synchronous from the caller's perspective — the calling
    workflow step blocks while simulated time advances by the transfer's
    latency — which matches how every numbered step of Figures 4.2/4.3 is a
    blocking hop in the paper's workflow.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        scheduler: Scheduler,
        event_log: Optional[EventLog] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.network = network
        self.scheduler = scheduler
        self.event_log = event_log if event_log is not None else EventLog()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def deliver(
        self,
        source: str,
        destination: str,
        kind: str,
        payload_bytes: int = 256,
        retries: int = 0,
    ) -> TransferReceipt:
        """Transfer ``payload_bytes`` from ``source`` to ``destination``.

        ``kind`` labels the transfer for the event log (``"message"``,
        ``"agent-dispatch"``, ``"agent-retract"`` ...).  Transfers dropped by
        the loss model are retried up to ``retries`` times before the error
        propagates to the caller.
        """
        departed_at = self.scheduler.clock.now
        attempts = 0
        while True:
            try:
                outcome = self.network.transfer_latency(source, destination, payload_bytes)
                break
            except NetworkError:
                attempts += 1
                if attempts > retries:
                    self.metrics.counter("transport.failures").increment()
                    raise
                self.metrics.counter("transport.retries").increment()

        arrived_at = self.scheduler.clock.advance_by(outcome.latency_ms)
        receipt = TransferReceipt(
            source=source,
            destination=destination,
            kind=kind,
            payload_bytes=payload_bytes,
            departed_at=departed_at,
            arrived_at=arrived_at,
        )
        self.event_log.record(
            arrived_at,
            f"transfer.{kind}",
            source,
            destination,
            payload_bytes=payload_bytes,
            latency_ms=receipt.latency_ms,
        )
        self.metrics.counter(f"transport.{kind}.count").increment()
        self.metrics.timer(f"transport.{kind}.latency_ms").record(receipt.latency_ms)
        return receipt
