"""Simulated network between agent servers.

The paper's platform spans a coordinator server, several marketplaces, buyer
agent servers and seller servers connected by a campus network.  This module
models that network: every pair of registered hosts gets a :class:`Link` with
configurable base latency, per-byte transfer cost, jitter and loss.  The model
is deterministic given the seed, so the same benchmark run always produces the
same latencies.

The network also supports partitions and administrative link cuts, which the
failure-injection tests use to exercise the robustness claims of mobile agents
("robust and fault-tolerant", §1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple
import random

from repro.errors import (
    HostUnreachableError,
    LinkDownError,
    NetworkError,
    TransferDroppedError,
)

__all__ = ["NetworkConfig", "Link", "SimulatedNetwork", "TransferOutcome"]


@dataclass
class NetworkConfig:
    """Parameters of the simulated network.

    Attributes:
        base_latency_ms: one-way propagation delay between two distinct hosts.
        local_latency_ms: delay for a host talking to itself (loopback).
        bandwidth_kb_per_ms: transfer rate used to charge for payload size.
        jitter_ms: maximum uniform jitter added to each transfer.
        loss_probability: probability a transfer is dropped outright.
        seed: seed of the private RNG, making jitter and loss reproducible.
    """

    base_latency_ms: float = 5.0
    local_latency_ms: float = 0.05
    bandwidth_kb_per_ms: float = 100.0
    jitter_ms: float = 0.0
    loss_probability: float = 0.0
    seed: int = 0

    def validate(self) -> None:
        if self.base_latency_ms < 0 or self.local_latency_ms < 0:
            raise NetworkError("latencies must be non-negative")
        if self.bandwidth_kb_per_ms <= 0:
            raise NetworkError("bandwidth must be positive")
        if self.jitter_ms < 0:
            raise NetworkError("jitter must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise NetworkError("loss probability must be in [0, 1)")


@dataclass
class Link:
    """State of the (directed) connectivity between two hosts."""

    source: str
    destination: str
    latency_ms: float
    up: bool = True
    transfers: int = 0
    bytes_moved: int = 0

    def key(self) -> Tuple[str, str]:
        return (self.source, self.destination)


@dataclass(frozen=True)
class TransferOutcome:
    """Result of charging one transfer to the network model."""

    latency_ms: float
    bytes_moved: int
    source: str
    destination: str


class SimulatedNetwork:
    """Latency/bandwidth/loss model over a set of named hosts."""

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config or NetworkConfig()
        self.config.validate()
        self._rng = random.Random(self.config.seed)
        self._hosts: Set[str] = set()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._down_hosts: Set[str] = set()
        self._partitions: List[Set[str]] = []
        self.total_transfers = 0
        self.total_bytes = 0
        self.dropped_transfers = 0

    # -- topology -----------------------------------------------------------

    def register_host(self, name: str) -> None:
        """Add ``name`` to the topology, creating links to existing hosts."""
        if name in self._hosts:
            return
        for other in self._hosts:
            self._ensure_link(name, other)
            self._ensure_link(other, name)
        self._ensure_link(name, name)
        self._hosts.add(name)

    def _ensure_link(self, source: str, destination: str) -> Link:
        key = (source, destination)
        if key not in self._links:
            latency = (
                self.config.local_latency_ms
                if source == destination
                else self.config.base_latency_ms
            )
            self._links[key] = Link(source, destination, latency)
        return self._links[key]

    @property
    def hosts(self) -> List[str]:
        return sorted(self._hosts)

    def link(self, source: str, destination: str) -> Link:
        if source not in self._hosts or destination not in self._hosts:
            raise HostUnreachableError(
                f"link {source}->{destination}: one of the hosts is not registered"
            )
        return self._ensure_link(source, destination)

    def set_latency(self, source: str, destination: str, latency_ms: float) -> None:
        """Override the one-way latency of a specific directed link."""
        if latency_ms < 0:
            raise NetworkError("latency must be non-negative")
        self.link(source, destination).latency_ms = latency_ms

    # -- failures -----------------------------------------------------------

    def cut_link(self, source: str, destination: str, both_ways: bool = True) -> None:
        self.link(source, destination).up = False
        if both_ways:
            self.link(destination, source).up = False

    def restore_link(self, source: str, destination: str, both_ways: bool = True) -> None:
        self.link(source, destination).up = True
        if both_ways:
            self.link(destination, source).up = True

    def take_host_down(self, name: str) -> None:
        if name not in self._hosts:
            raise HostUnreachableError(f"unknown host {name!r}")
        self._down_hosts.add(name)

    def bring_host_up(self, name: str) -> None:
        self._down_hosts.discard(name)

    def is_host_up(self, name: str) -> bool:
        return name in self._hosts and name not in self._down_hosts

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Split the network so the two groups cannot reach each other."""
        set_a, set_b = set(group_a), set(group_b)
        overlap = set_a & set_b
        if overlap:
            raise NetworkError(f"partition groups overlap: {sorted(overlap)}")
        self._partitions.append(set_a)
        self._partitions.append(set_b)

    def heal_partitions(self) -> None:
        self._partitions.clear()

    def _partitioned(self, source: str, destination: str) -> bool:
        for index in range(0, len(self._partitions), 2):
            group_a = self._partitions[index]
            group_b = self._partitions[index + 1]
            if (source in group_a and destination in group_b) or (
                source in group_b and destination in group_a
            ):
                return True
        return False

    # -- transfers ----------------------------------------------------------

    def transfer_latency(
        self, source: str, destination: str, payload_bytes: int = 0
    ) -> TransferOutcome:
        """Charge one transfer and return its latency.

        Raises:
            HostUnreachableError: unknown host, down host or partition.
            LinkDownError: the directed link was administratively cut.
            TransferDroppedError: the loss model dropped this transfer.
        """
        if source not in self._hosts:
            raise HostUnreachableError(f"unknown source host {source!r}")
        if destination not in self._hosts:
            raise HostUnreachableError(f"unknown destination host {destination!r}")
        if source in self._down_hosts:
            raise HostUnreachableError(f"source host {source!r} is down")
        if destination in self._down_hosts:
            raise HostUnreachableError(f"destination host {destination!r} is down")
        if self._partitioned(source, destination):
            raise HostUnreachableError(
                f"hosts {source!r} and {destination!r} are in different partitions"
            )
        link = self._ensure_link(source, destination)
        if not link.up:
            raise LinkDownError(f"link {source}->{destination} is down")
        if self.config.loss_probability and (
            self._rng.random() < self.config.loss_probability
        ):
            self.dropped_transfers += 1
            raise TransferDroppedError(
                f"transfer {source}->{destination} dropped by loss model"
            )

        payload_bytes = max(0, int(payload_bytes))
        serialization_ms = (payload_bytes / 1024.0) / self.config.bandwidth_kb_per_ms
        jitter = self._rng.uniform(0.0, self.config.jitter_ms) if self.config.jitter_ms else 0.0
        latency = link.latency_ms + serialization_ms + jitter

        link.transfers += 1
        link.bytes_moved += payload_bytes
        self.total_transfers += 1
        self.total_bytes += payload_bytes
        return TransferOutcome(latency, payload_bytes, source, destination)

    def round_trip_latency(
        self,
        source: str,
        destination: str,
        request_bytes: int = 0,
        response_bytes: int = 0,
    ) -> float:
        """Charge one request/response round trip; return its total latency.

        Two directed transfers (``source → destination`` carrying the
        request, ``destination → source`` carrying the response) are charged
        to the model; the caller decides what to do with the summed latency
        — notably the fleet fan-out charges the *maximum* round trip across
        all shards to the clock instead of letting each transfer advance it
        sequentially.  Any failure (down host, partition, cut link, loss)
        raises like :meth:`transfer_latency`; a response-leg failure after a
        successful request leg is exactly a timed-out RPC.
        """
        request = self.transfer_latency(source, destination, request_bytes)
        response = self.transfer_latency(destination, source, response_bytes)
        return request.latency_ms + response.latency_ms

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Aggregate counters used by the platform benchmarks."""
        return {
            "hosts": float(len(self._hosts)),
            "total_transfers": float(self.total_transfers),
            "total_bytes": float(self.total_bytes),
            "dropped_transfers": float(self.dropped_transfers),
        }
