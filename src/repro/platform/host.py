"""Simulated hosts (machines) of the platform.

A :class:`Host` stands for one machine of the paper's testbed: the coordinator
server, a marketplace, a buyer agent server or a seller server.  A host owns a
name on the network, a lifecycle state and a bag of named services (the agent
context, databases, catalogues ... are attached by the layers above so the
platform layer stays free of upward dependencies).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Optional

from repro.errors import HostError
from repro.platform.clock import Scheduler
from repro.platform.network import SimulatedNetwork

__all__ = ["HostState", "Host"]


class HostState(enum.Enum):
    """Lifecycle of a simulated machine."""

    STOPPED = "stopped"
    RUNNING = "running"
    CRASHED = "crashed"


class Host:
    """A simulated machine attached to the shared network and scheduler."""

    def __init__(self, name: str, network: SimulatedNetwork, scheduler: Scheduler) -> None:
        if not name:
            raise HostError("host name must be non-empty")
        self.name = name
        self.network = network
        self.scheduler = scheduler
        self.state = HostState.STOPPED
        self._services: Dict[str, Any] = {}
        network.register_host(name)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bring the host online (idempotent for already-running hosts)."""
        if self.state is HostState.RUNNING:
            return
        self.state = HostState.RUNNING
        self.network.bring_host_up(self.name)

    def stop(self) -> None:
        """Graceful shutdown: the host leaves the network cleanly."""
        if self.state is not HostState.RUNNING:
            raise HostError(f"cannot stop host {self.name!r} in state {self.state.value}")
        self.state = HostState.STOPPED
        self.network.take_host_down(self.name)

    def crash(self) -> None:
        """Abrupt failure used by the failure-injection tests."""
        if self.state is not HostState.RUNNING:
            raise HostError(f"cannot crash host {self.name!r} in state {self.state.value}")
        self.state = HostState.CRASHED
        self.network.take_host_down(self.name)

    def recover(self) -> None:
        """Bring a crashed or stopped host back online."""
        if self.state is HostState.RUNNING:
            raise HostError(f"host {self.name!r} is already running")
        self.state = HostState.RUNNING
        self.network.bring_host_up(self.name)

    @property
    def is_running(self) -> bool:
        return self.state is HostState.RUNNING

    # -- services -----------------------------------------------------------

    def attach_service(self, name: str, service: Any) -> None:
        """Attach a named service (agent context, database, catalogue ...)."""
        if name in self._services:
            raise HostError(f"service {name!r} already attached to host {self.name!r}")
        self._services[name] = service

    def service(self, name: str) -> Any:
        if name not in self._services:
            raise HostError(f"host {self.name!r} has no service {name!r}")
        return self._services[name]

    def has_service(self, name: str) -> bool:
        return name in self._services

    def services(self) -> Dict[str, Any]:
        return dict(self._services)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r}, state={self.state.value})"
