"""Simulation clock and cooperative event scheduler.

The entire platform shares one :class:`SimulationClock`.  Network transfers,
agent hand-offs and timed work advance the clock; wall-clock time never leaks
into the simulation, which keeps every test and benchmark deterministic.

The :class:`Scheduler` is a thin priority-queue driver over the clock.  It is
intentionally simple: callbacks scheduled at a simulated time, executed in
timestamp order (FIFO among equal timestamps).  The agent runtime builds its
request/response semantics on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional
import heapq
import itertools

from repro.errors import ClockError

__all__ = [
    "SimulationClock",
    "SessionClock",
    "Scheduler",
    "ScheduledCallback",
    "RecurringCallback",
]


class SimulationClock:
    """Monotonic simulated clock measured in (fractional) milliseconds.

    The unit choice matches the paper's setting: network hops between agent
    servers are milliseconds-scale, so latencies read naturally.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError("clock cannot start at a negative time")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp``.

        Moving backwards is a programming error and raises :class:`ClockError`.
        Advancing to the current time is a no-op and is allowed, because many
        events legitimately share a timestamp.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def advance_by(self, delta: float) -> float:
        """Move the clock forward by ``delta`` milliseconds."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by a negative delta: {delta}")
        return self.advance_to(self._now + delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationClock(now={self._now:.3f}ms)"


class SessionClock:
    """A per-session virtual view over a shared :class:`SimulationClock`.

    Concurrent sessions each live on their own timeline: a session that backs
    off before a retry, waits in a server queue or thinks between requests
    spends *its own* time, not everyone's.  A ``SessionClock`` anchors a
    session at ``start_at`` and keeps a private offset over the base clock:
    real platform work (the transport advancing the base clock) moves every
    session's ``now`` in lockstep, while :meth:`advance_by` /
    :meth:`advance_to` move only this session.

    The offset may be *negative* — a session whose arrival time lags the
    base clock (which accumulates all sessions' work) simply observes an
    earlier "now".  Within one session the clock is still monotonic: the
    same backwards/negative-delta guards as :class:`SimulationClock` apply.
    """

    def __init__(self, base: SimulationClock, start_at: Optional[float] = None) -> None:
        self._base = base
        start = base.now if start_at is None else float(start_at)
        if start < 0:
            raise ClockError("session clock cannot start at a negative time")
        self._offset = start - base.now

    @property
    def now(self) -> float:
        """Current *session* time in simulated milliseconds."""
        return self._base.now + self._offset

    @property
    def offset(self) -> float:
        """This session's offset over the shared base clock (may be < 0)."""
        return self._offset

    def advance_by(self, delta: float) -> float:
        """Spend ``delta`` ms of this session's own time (backoff, queueing)."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by a negative delta: {delta}")
        self._offset += delta
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move this session's time forward to ``timestamp``."""
        if timestamp < self.now:
            raise ClockError(
                f"cannot move clock backwards: now={self.now}, target={timestamp}"
            )
        self._offset = timestamp - self._base.now
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SessionClock(now={self.now:.3f}ms, offset={self._offset:+.3f}ms)"


@dataclass(order=True)
class ScheduledCallback:
    """A callback queued for execution at a simulated timestamp."""

    timestamp: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the callback so the scheduler skips it when it fires."""
        self.cancelled = True


@dataclass
class RecurringCallback:
    """Handle for a self-re-arming periodic callback (see :meth:`Scheduler.call_every`).

    The task re-arms itself *before* invoking the callback, so the cadence is
    anchored at ``start + n * interval`` and a callback that raises (and is
    handled upstream) does not silently stop the recurrence.  ``fires`` counts
    only callbacks that *completed*: a raising callback re-arms but is not
    counted as fired.  :meth:`cancel` stops it for good.
    """

    interval: float
    label: str = ""
    fires: int = 0
    cancelled: bool = False
    _entry: Optional[ScheduledCallback] = field(default=None, repr=False)

    @property
    def next_at(self) -> Optional[float]:
        """Simulated timestamp of the next firing (None once cancelled)."""
        if self.cancelled or self._entry is None:
            return None
        return self._entry.timestamp

    def cancel(self) -> None:
        """Stop the recurrence; the already-queued firing is skipped too."""
        self.cancelled = True
        if self._entry is not None:
            self._entry.cancel()


class Scheduler:
    """Priority-queue driver executing callbacks in simulated-time order."""

    def __init__(self, clock: Optional[SimulationClock] = None) -> None:
        self.clock = clock if clock is not None else SimulationClock()
        self._queue: List[ScheduledCallback] = []
        self._sequence = itertools.count()
        self._executed = 0

    # -- scheduling ---------------------------------------------------------

    def call_at(
        self, timestamp: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledCallback:
        """Schedule ``callback`` to run at absolute simulated ``timestamp``.

        Timestamps in the past are clamped to *now*: the event still runs, in
        submission order, which mirrors how a real runtime handles work that
        was already due.
        """
        when = max(timestamp, self.clock.now)
        entry = ScheduledCallback(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, entry)
        return entry

    def call_after(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> ScheduledCallback:
        """Schedule ``callback`` to run ``delay`` milliseconds from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule an event with negative delay: {delay}")
        return self.call_at(self.clock.now + delay, callback, label)

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        label: str = "",
        first_delay: Optional[float] = None,
    ) -> RecurringCallback:
        """Schedule ``callback`` every ``interval`` ms of simulated time.

        Returns a :class:`RecurringCallback` handle; the recurrence runs until
        its :meth:`~RecurringCallback.cancel` is called.  ``first_delay``
        overrides the delay before the first firing (default: one interval).
        This is what moves periodic platform work — notably the buyer agent
        server's recommendation refresh — off ad-hoc polling loops and onto
        real scheduled events.
        """
        if interval <= 0:
            raise ClockError(f"recurring interval must be positive: {interval}")
        task = RecurringCallback(interval=interval, label=label)

        def fire() -> None:
            if task.cancelled:
                return
            # Re-arm first: the cadence stays fixed even if the callback is
            # slow or raises an exception that a caller catches upstream.
            task._entry = self.call_after(interval, fire, label)
            callback()
            # Counted only after the callback returned: a raising callback
            # re-arms (above) but must not report a firing that never
            # completed.
            task.fires += 1

        initial = interval if first_delay is None else first_delay
        if initial < 0:
            raise ClockError(f"first_delay cannot be negative: {first_delay}")
        task._entry = self.call_after(initial, fire, label)
        return task

    # -- execution ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of *live* callbacks still queued.

        Cancelled entries stay in the heap until their timestamp pops (lazy
        deletion) but no longer represent work, so they are excluded — this
        is what makes the session scheduler's backlog gauge truthful.
        """
        return sum(1 for entry in self._queue if not entry.cancelled)

    @property
    def executed(self) -> int:
        """Number of callbacks executed since construction."""
        return self._executed

    def step(self) -> bool:
        """Run the next queued callback; return ``False`` when queue is empty.

        A callback whose timestamp was overtaken by the clock (simulated time
        also advances through the transport, outside the scheduler) runs
        late, at the current time — the clock never moves backwards.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.timestamp > self.clock.now:
                self.clock.advance_to(entry.timestamp)
            entry.callback()
            self._executed += 1
            return True
        return False

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run callbacks until the queue drains; return how many executed.

        ``max_events`` guards against accidental infinite event loops in tests;
        exceeding it raises :class:`ClockError`.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise ClockError(
                    f"scheduler exceeded {max_events} events; likely an event loop"
                )
        return executed

    def run_until(self, timestamp: float, max_events: int = 1_000_000) -> int:
        """Run callbacks whose timestamp is <= ``timestamp``; advance the clock.

        The clock always ends at ``timestamp`` even if fewer events were due.
        """
        executed = 0
        while self._queue:
            entry = self._queue[0]
            if entry.cancelled:
                heapq.heappop(self._queue)
                continue
            if entry.timestamp > timestamp:
                break
            self.step()
            executed += 1
            if executed > max_events:
                raise ClockError(
                    f"scheduler exceeded {max_events} events; likely an event loop"
                )
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        return executed

    def run_for(self, duration: float, max_events: int = 1_000_000) -> int:
        """Run callbacks due within the next ``duration`` ms; advance the clock.

        Convenience over :meth:`run_until` for scenario drivers that think in
        "let the platform idle for X ms" terms (e.g. letting anti-entropy
        catch a lagging replica up after a partition heals).
        """
        if duration < 0:
            raise ClockError(f"cannot run for a negative duration: {duration}")
        return self.run_until(self.clock.now + duration, max_events)
