"""Event records and an inspectable event queue.

The scheduler in :mod:`repro.platform.clock` executes callbacks; the classes
here provide a *recorded* view of what happened so that the workflow
benchmarks (Figures 4.2 and 4.3 of the paper) can assert the exact message
sequence between agents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional
import heapq
import itertools

__all__ = ["Event", "EventQueue", "EventLog"]


@dataclass(frozen=True)
class Event:
    """An immutable record of something that happened in the simulation."""

    timestamp: float
    category: str
    source: str
    target: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable one-line description used by example scripts."""
        return (
            f"[{self.timestamp:10.3f}ms] {self.category:<22s} "
            f"{self.source} -> {self.target}"
        )


class EventQueue:
    """A small priority queue of :class:`Event` ordered by timestamp.

    Used by workload generators to feed behaviour traces into the platform in
    simulated-time order.
    """

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.timestamp, next(self._counter), event))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Optional[Event]:
        if not self._heap:
            return None
        return self._heap[0][2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Event]:
        """Drain the queue in timestamp order."""
        while self._heap:
            yield self.pop()


class EventLog:
    """Append-only log of events with simple query helpers.

    The buyer agent server and the marketplaces record every protocol step
    here; integration tests assert the numbered sequences from Figures 4.1,
    4.2 and 4.3 against it.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(
        self,
        timestamp: float,
        category: str,
        source: str,
        target: str,
        **payload: Any,
    ) -> Event:
        event = Event(timestamp, category, source, target, dict(payload))
        self._events.append(event)
        return event

    def append(self, event: Event) -> None:
        self._events.append(event)

    @property
    def events(self) -> List[Event]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def by_category(self, category: str) -> List[Event]:
        return [e for e in self._events if e.category == category]

    def count(self, category: str) -> int:
        """How many events of ``category`` were recorded."""
        return sum(1 for e in self._events if e.category == category)

    def latest(self, category: str) -> Optional[Event]:
        """The most recently recorded event of ``category`` (None when absent)."""
        for event in reversed(self._events):
            if event.category == category:
                return event
        return None

    def last_payload(self, category: str) -> Optional[Dict[str, Any]]:
        """Payload of the most recent ``category`` event (None when absent)."""
        event = self.latest(category)
        return dict(event.payload) if event is not None else None

    def involving(self, participant: str) -> List[Event]:
        return [
            e for e in self._events if participant in (e.source, e.target)
        ]

    def categories(self) -> List[str]:
        """The sequence of event categories in record order."""
        return [e.category for e in self._events]

    def between(self, start: float, end: float) -> List[Event]:
        return [e for e in self._events if start <= e.timestamp <= end]

    def clear(self) -> None:
        self._events.clear()
