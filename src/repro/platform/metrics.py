"""Lightweight metrics used by the platform, servers and benchmarks.

The benchmark harness needs to report latencies and throughput per workflow
step (Figures 4.2/4.3) and per subsystem.  Rather than pulling in an external
metrics library, this module provides the three primitives the harness needs:
counters, gauges and timers with percentile summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional
import math

__all__ = ["Counter", "Gauge", "Timer", "MetricsRegistry", "summarize"]


def summarize(samples: List[float]) -> Dict[str, float]:
    """Return count/mean/min/max/p50/p95/p99 for a list of samples."""
    if not samples:
        return {
            "count": 0.0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }
    ordered = sorted(samples)

    def percentile(fraction: float) -> float:
        if len(ordered) == 1:
            return ordered[0]
        rank = fraction * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        # lerp as low + span*weight: unlike a*(1-w) + b*w, this form is
        # monotone in `weight` under float rounding (multiplication and
        # addition round monotonically), so p50 <= p95 <= p99 always holds
        # even when two percentiles interpolate inside the same bracket.
        value = ordered[low] + (ordered[high] - ordered[low]) * weight
        # Rounding can still drift one ulp past the bracket ends; clamp.
        return min(max(value, ordered[low]), ordered[high])

    return {
        "count": float(len(ordered)),
        "mean": sum(ordered) / len(ordered),
        "min": ordered[0],
        "max": ordered[-1],
        "p50": percentile(0.50),
        "p95": percentile(0.95),
        "p99": percentile(0.99),
    }


@dataclass
class Counter:
    """Monotonic counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge instead")
        self.value += amount
        return self.value


@dataclass
class Gauge:
    """A value that can move in both directions (e.g. active sessions)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def adjust(self, delta: float) -> float:
        self.value += delta
        return self.value


@dataclass
class Timer:
    """Collects duration samples (simulated milliseconds)."""

    name: str
    samples: List[float] = field(default_factory=list)

    def record(self, duration_ms: float) -> None:
        if duration_ms < 0:
            raise ValueError("durations must be non-negative")
        self.samples.append(float(duration_ms))

    @property
    def latest(self) -> Optional[float]:
        """The most recently recorded sample (None when empty)."""
        return self.samples[-1] if self.samples else None

    def summary(self) -> Dict[str, float]:
        return summarize(self.samples)


class MetricsRegistry:
    """Registry keyed by metric name; shared per platform instance."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def remove_gauge(self, name: str) -> bool:
        """Drop a gauge entirely (missing names are ignored).

        Gauges report *current* state; when the thing they describe stops
        existing (a retired replication stream, a promoted-away write-ahead
        log) the gauge must go with it, or snapshots keep reporting the last
        pre-retirement value forever.  Returns True when a gauge was removed.
        """
        return self._gauges.pop(name, None) is not None

    def remove_gauges_with_prefix(self, prefix: str) -> int:
        """Drop every gauge whose name starts with ``prefix``; return count."""
        doomed = [name for name in self._gauges if name.startswith(prefix)]
        for name in doomed:
            del self._gauges[name]
        return len(doomed)

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def counters(self) -> Dict[str, float]:
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {name: gauge.value for name, gauge in sorted(self._gauges.items())}

    def timer_summaries(self) -> Dict[str, Dict[str, float]]:
        return {name: timer.summary() for name, timer in sorted(self._timers.items())}

    def snapshot(self) -> Dict[str, object]:
        """Full snapshot used by the experiment harness reports."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "timers": self.timer_summaries(),
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
