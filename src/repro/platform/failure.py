"""Failure injection for the simulated platform.

The paper motivates mobile agents with robustness and fault tolerance (§1).
This module lets tests and benchmarks script failures against the simulated
platform: host crashes and recoveries, link cuts and partitions, either
immediately or at scheduled simulated times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import PlatformError
from repro.platform.clock import Scheduler
from repro.platform.host import Host
from repro.platform.network import SimulatedNetwork

__all__ = ["FailureAction", "FailurePlan", "FailureInjector"]


@dataclass(frozen=True)
class FailureAction:
    """One scripted failure (or repair) at a simulated time."""

    at_ms: float
    kind: str  # "crash-host" | "recover-host" | "cut-link" | "restore-link"
    target: Tuple[str, ...]


@dataclass
class FailurePlan:
    """An ordered list of scripted failures."""

    actions: List[FailureAction] = field(default_factory=list)

    def crash_host(self, at_ms: float, host: str) -> "FailurePlan":
        self.actions.append(FailureAction(at_ms, "crash-host", (host,)))
        return self

    def recover_host(self, at_ms: float, host: str) -> "FailurePlan":
        self.actions.append(FailureAction(at_ms, "recover-host", (host,)))
        return self

    def cut_link(self, at_ms: float, source: str, destination: str) -> "FailurePlan":
        self.actions.append(FailureAction(at_ms, "cut-link", (source, destination)))
        return self

    def restore_link(self, at_ms: float, source: str, destination: str) -> "FailurePlan":
        self.actions.append(FailureAction(at_ms, "restore-link", (source, destination)))
        return self


class FailureInjector:
    """Applies immediate or scheduled failures to hosts and the network."""

    def __init__(self, network: SimulatedNetwork, scheduler: Scheduler) -> None:
        self.network = network
        self.scheduler = scheduler
        self._hosts: dict[str, Host] = {}

    def register_host(self, host: Host) -> None:
        self._hosts[host.name] = host

    # -- immediate actions --------------------------------------------------

    def crash_host(self, name: str) -> None:
        host = self._lookup(name)
        host.crash()

    def recover_host(self, name: str) -> None:
        host = self._lookup(name)
        host.recover()

    def cut_link(self, source: str, destination: str) -> None:
        self.network.cut_link(source, destination)

    def restore_link(self, source: str, destination: str) -> None:
        self.network.restore_link(source, destination)

    def partition(self, group_a: List[str], group_b: List[str]) -> None:
        self.network.partition(group_a, group_b)

    def heal(self) -> None:
        self.network.heal_partitions()

    # -- scheduled plans ----------------------------------------------------

    def apply_plan(self, plan: FailurePlan) -> None:
        """Schedule every action of ``plan`` on the simulation scheduler."""
        for action in plan.actions:
            self._schedule(action)

    def _schedule(self, action: FailureAction) -> None:
        if action.kind == "crash-host":
            callback = lambda name=action.target[0]: self.crash_host(name)
        elif action.kind == "recover-host":
            callback = lambda name=action.target[0]: self.recover_host(name)
        elif action.kind == "cut-link":
            callback = lambda pair=action.target: self.cut_link(pair[0], pair[1])
        elif action.kind == "restore-link":
            callback = lambda pair=action.target: self.restore_link(pair[0], pair[1])
        else:
            raise PlatformError(f"unknown failure action kind {action.kind!r}")
        self.scheduler.call_at(action.at_ms, callback, label=f"failure.{action.kind}")

    def _lookup(self, name: str) -> Host:
        if name not in self._hosts:
            raise PlatformError(f"host {name!r} is not registered with the failure injector")
        return self._hosts[name]
