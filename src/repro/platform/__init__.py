"""Simulated distributed platform substrate.

The paper runs its agents on a physical network of machines (IBM Aglets on a
Java VM per host).  This package provides the equivalent substrate as a
deterministic discrete-event simulation:

- :mod:`repro.platform.clock` — the simulation clock and event scheduler.
- :mod:`repro.platform.events` — event records and the priority queue.
- :mod:`repro.platform.network` — latency/bandwidth/loss model between hosts,
  with partitions and link failures.
- :mod:`repro.platform.host` — a simulated machine that owns an agent context.
- :mod:`repro.platform.transport` — message and agent-migration transfers.
- :mod:`repro.platform.failure` — failure injection (host crashes, link cuts).
- :mod:`repro.platform.metrics` — counters and timers used by the benchmarks.

Everything is deterministic given the seed passed to the network model, so
tests and benchmarks are reproducible run-to-run.
"""

from repro.platform.clock import SimulationClock, SessionClock, Scheduler
from repro.platform.events import Event, EventQueue
from repro.platform.network import NetworkConfig, SimulatedNetwork, Link
from repro.platform.host import Host, HostState
from repro.platform.transport import Transport, TransferReceipt
from repro.platform.failure import FailureInjector, FailurePlan
from repro.platform.metrics import MetricsRegistry, Counter, Timer

__all__ = [
    "SimulationClock",
    "SessionClock",
    "Scheduler",
    "Event",
    "EventQueue",
    "NetworkConfig",
    "SimulatedNetwork",
    "Link",
    "Host",
    "HostState",
    "Transport",
    "TransferReceipt",
    "FailureInjector",
    "FailurePlan",
    "MetricsRegistry",
    "Counter",
    "Timer",
]
