"""Arrival processes for the concurrent workload models.

Two classic load shapes drive the concurrent scenarios
(:mod:`repro.workload.concurrent`):

- **Open loop** — :class:`PoissonArrivals`: sessions arrive at a fixed rate
  regardless of how the platform is doing, the standard model for "the
  internet keeps sending users".  Inter-arrival gaps are exponential, so
  bursts happen naturally; this is what actually exercises admission
  shedding.
- **Closed loop** — :class:`ThinkTime`: a fixed population of sessions
  where each client waits (thinks) between its own requests and only ever
  has one request outstanding.  Load self-throttles with latency, the
  model of a departmental testbed of real users.

Both draw from a private :class:`random.Random` seeded at construction, so
a scenario replayed with the same seed sees the same arrivals — the
determinism the byte-identical replay property test leans on.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import WorkloadError

__all__ = ["PoissonArrivals", "ThinkTime"]


class PoissonArrivals:
    """Open-loop Poisson arrival process.

    ``rate_per_ms`` is the expected number of arrivals per simulated
    millisecond; gaps between arrivals are exponentially distributed with
    mean ``1 / rate_per_ms``.
    """

    def __init__(self, rate_per_ms: float, seed: int = 0) -> None:
        if rate_per_ms <= 0:
            raise WorkloadError(
                f"arrival rate must be positive, got {rate_per_ms}"
            )
        self.rate_per_ms = float(rate_per_ms)
        self._rng = random.Random(seed)

    def next_gap_ms(self) -> float:
        """Exponential gap until the next arrival."""
        return self._rng.expovariate(self.rate_per_ms)

    def offsets_ms(self, count: int) -> List[float]:
        """Arrival offsets (from time zero) for the next ``count`` arrivals."""
        if count < 0:
            raise WorkloadError(f"cannot generate {count} arrivals")
        at = 0.0
        offsets: List[float] = []
        for _ in range(count):
            at += self.next_gap_ms()
            offsets.append(at)
        return offsets


class ThinkTime:
    """Closed-loop think-time model: exponential pauses around ``mean_ms``.

    ``mean_ms=0`` disables thinking entirely (each follow-up request is
    submitted at the instant the previous one finished), which is the
    configuration the zero-overlap equivalence test uses.
    """

    def __init__(self, mean_ms: float, seed: int = 0) -> None:
        if mean_ms < 0:
            raise WorkloadError(f"think time cannot be negative: {mean_ms}")
        self.mean_ms = float(mean_ms)
        self._rng = random.Random(seed)

    def next_ms(self) -> float:
        """The next pause this client takes before its follow-up request."""
        if self.mean_ms == 0:
            return 0.0
        return self._rng.expovariate(1.0 / self.mean_ms)
