"""Scenario drivers: replay consumer behaviour against a live platform.

The workflow-level experiments (Figures 3.1, 3.2, 4.2, 4.3 in DESIGN.md) need
consumers actually using the agent platform — logging in, querying, buying,
joining auctions — rather than an offline dataset.  :class:`ScenarioRunner`
drives a :class:`~repro.ecommerce.platform_builder.ECommercePlatform` with the
synthetic population and reports what happened.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SessionError, WorkloadError
from repro.ecommerce.platform_builder import ECommercePlatform
from repro.workload.consumers import ConsumerPopulation, SyntheticConsumer

__all__ = ["ScenarioReport", "ScenarioRunner"]


@dataclass
class ScenarioReport:
    """What a scenario run did and how long (in simulated time) it took."""

    consumers: int = 0
    sessions: int = 0
    queries: int = 0
    purchases: int = 0
    auctions: int = 0
    negotiations: int = 0
    recommendations_requested: int = 0
    failed_operations: int = 0
    batch_refreshes: int = 0
    drained_consumers: int = 0
    lost_consumers: int = 0
    recovered_purged: int = 0
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def simulated_duration_ms(self) -> float:
        return self.finished_at_ms - self.started_at_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "consumers": self.consumers,
            "sessions": self.sessions,
            "queries": self.queries,
            "purchases": self.purchases,
            "auctions": self.auctions,
            "negotiations": self.negotiations,
            "recommendations_requested": self.recommendations_requested,
            "failed_operations": self.failed_operations,
            "batch_refreshes": self.batch_refreshes,
            "drained_consumers": self.drained_consumers,
            "lost_consumers": self.lost_consumers,
            "recovered_purged": self.recovered_purged,
            "simulated_duration_ms": self.simulated_duration_ms,
        }


class ScenarioRunner:
    """Drives consumer sessions against a live platform."""

    def __init__(
        self,
        platform: ECommercePlatform,
        population: ConsumerPopulation,
        seed: int = 0,
    ) -> None:
        self.platform = platform
        self.population = population
        self._rng = random.Random(seed)

    # -- building blocks ----------------------------------------------------------

    def run_session(
        self,
        consumer: SyntheticConsumer,
        queries: int = 2,
        buy_probability: float = 0.5,
        auction_probability: float = 0.15,
        negotiate_probability: float = 0.15,
        ask_recommendations: bool = True,
        report: Optional[ScenarioReport] = None,
    ) -> ScenarioReport:
        """One consumer session: login, a few queries, maybe trades, logout."""
        report = report if report is not None else ScenarioReport()
        session = self.platform.login(consumer.user_id)
        report.sessions += 1
        try:
            for _ in range(queries):
                keyword = consumer.preferred_keyword(self._rng)
                try:
                    results = session.query(keyword)
                except SessionError:
                    report.failed_operations += 1
                    continue
                report.queries += 1
                if not results:
                    continue

                ranked = sorted(
                    results, key=lambda hit: (-consumer.utility(hit.item), hit.item_id)
                )
                best = ranked[0]
                if consumer.finds_relevant(best.item):
                    roll = self._rng.random()
                    try:
                        if roll < auction_probability:
                            session.join_auction(
                                best.item, max_price=best.price * 1.2,
                                marketplace=best.marketplace,
                            )
                            report.auctions += 1
                        elif roll < auction_probability + negotiate_probability:
                            session.negotiate(
                                best.item, max_price=best.price * 0.95,
                                marketplace=best.marketplace,
                            )
                            report.negotiations += 1
                        elif roll < auction_probability + negotiate_probability + buy_probability:
                            session.buy(best.item, marketplace=best.marketplace)
                            report.purchases += 1
                    except SessionError:
                        report.failed_operations += 1

            if ask_recommendations:
                try:
                    session.recommendations(k=10)
                    report.recommendations_requested += 1
                except SessionError:
                    report.failed_operations += 1
        finally:
            session.logout()
        return report

    # -- whole-population scenarios ---------------------------------------------------

    def warm_up(
        self,
        sessions_per_consumer: int = 1,
        queries_per_session: int = 2,
        consumers: Optional[int] = None,
    ) -> ScenarioReport:
        """Run sessions for (a prefix of) the population to populate UserDB."""
        if sessions_per_consumer <= 0:
            raise WorkloadError("sessions_per_consumer must be positive")
        selected = self.population.consumers()
        if consumers is not None:
            selected = selected[:consumers]
        report = ScenarioReport(started_at_ms=self.platform.now)
        report.consumers = len(selected)
        for _ in range(sessions_per_consumer):
            for consumer in selected:
                self.run_session(
                    consumer, queries=queries_per_session, report=report
                )
        report.finished_at_ms = self.platform.now
        return report

    def single_consumer_day(self, consumer: SyntheticConsumer, queries: int = 5) -> ScenarioReport:
        """A busier single-consumer scenario used by the examples."""
        report = ScenarioReport(started_at_ms=self.platform.now, consumers=1)
        self.run_session(consumer, queries=queries, report=report)
        report.finished_at_ms = self.platform.now
        return report

    def stress_day(
        self,
        sessions: int = 1000,
        queries_per_session: int = 1,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        batch_refresh_interval_ms: Optional[float] = None,
        batch_k: int = 5,
    ) -> ScenarioReport:
        """A high-volume day: many short sessions of mixed traffic.

        Consumers are drawn from the whole population at random (with
        replacement), each running a short session that mixes queries, buys,
        auction bids and negotiations; a fraction of sessions also request
        recommendations, which exercises the neighbor-index hot path under a
        growing UserDB.  When ``batch_refresh_interval_ms`` is set, the buyer
        agent server's periodic batch refresh
        (:meth:`~repro.ecommerce.buyer_server.BuyerAgentServer.maybe_refresh_recommendations`)
        is ticked after every session, precomputing community recommendation
        lists at that simulated-time cadence.
        """
        if sessions <= 0:
            raise WorkloadError("stress day needs at least one session")
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("stress day needs a non-empty population")
        report = ScenarioReport(started_at_ms=self.platform.now)
        report.consumers = len(pool)
        for _ in range(sessions):
            consumer = self._rng.choice(pool)
            self.run_session(
                consumer,
                queries=queries_per_session,
                buy_probability=buy_probability,
                auction_probability=auction_probability,
                negotiate_probability=negotiate_probability,
                ask_recommendations=self._rng.random() < recommendation_probability,
                report=report,
            )
            if batch_refresh_interval_ms is not None:
                if self.platform.buyer_server.maybe_refresh_recommendations(
                    batch_refresh_interval_ms, k=batch_k
                ):
                    report.batch_refreshes += 1
        report.finished_at_ms = self.platform.now
        return report

    def sharded_stress_day(
        self,
        sessions: int = 400,
        queries_per_session: int = 1,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        refresh_interval_ms: float = 2000.0,
        batch_k: int = 5,
    ) -> ScenarioReport:
        """A high-volume day against a sharded, scheduler-refreshed platform.

        Like :meth:`stress_day` but built for the multi-server/sharded
        serving stack: sessions are routed to each consumer's owning buyer
        agent server (the fleet, when the platform has one), and the periodic
        recommendation refresh is a real scheduled platform event
        (:meth:`~repro.ecommerce.buyer_server.BuyerAgentServer.start_periodic_refresh`
        / the fleet equivalent) rather than a per-session poll — the
        scenario loop merely pumps the scheduler so due events fire as
        simulated time passes.  ``report.batch_refreshes`` counts the
        ``recommendation.scheduled-refresh`` events the run produced.
        """
        if sessions <= 0:
            raise WorkloadError("sharded stress day needs at least one session")
        if refresh_interval_ms <= 0:
            raise WorkloadError("refresh interval must be positive")
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("sharded stress day needs a non-empty population")

        platform = self.platform
        log = platform.event_log
        refreshes_before = log.count("recommendation.scheduled-refresh")
        if platform.fleet is not None:
            refresh_owner = platform.fleet
        else:
            refresh_owner = platform.buyer_server
        refresh_owner.start_periodic_refresh(refresh_interval_ms, k=batch_k)

        report = ScenarioReport(started_at_ms=platform.now)
        report.consumers = len(pool)
        try:
            for _ in range(sessions):
                consumer = self._rng.choice(pool)
                self.run_session(
                    consumer,
                    queries=queries_per_session,
                    buy_probability=buy_probability,
                    auction_probability=auction_probability,
                    negotiate_probability=negotiate_probability,
                    ask_recommendations=self._rng.random() < recommendation_probability,
                    report=report,
                )
                # Sessions advance simulated time through the transport;
                # firing the events that became due keeps the scheduled
                # refresh cadence honest without a polling loop.
                platform.scheduler.run_until(platform.now)
        finally:
            refresh_owner.stop_periodic_refresh()
        report.finished_at_ms = platform.now
        report.batch_refreshes = (
            log.count("recommendation.scheduled-refresh") - refreshes_before
        )
        return report

    def replicated_failover_day(
        self,
        sessions: int = 240,
        queries_per_session: int = 1,
        crash_shard: int = 0,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        refresh_interval_ms: float = 2000.0,
        batch_k: int = 5,
        recover: bool = True,
    ) -> ScenarioReport:
        """A trafficked day where a buyer agent server crashes and recovers.

        Requires a multi-server platform with replication wired
        (``PlatformConfig.num_buyer_servers > 1`` and
        ``replication_factor >= 1``).  The day runs in three phases:

        1. normal traffic while every server's write-ahead log streams to
           its replica peers;
        2. the ``crash_shard`` server is crashed mid-traffic and its
           consumers are drained **from replicas** onto the survivors
           (``report.drained_consumers`` / ``report.lost_consumers``);
           traffic continues around the dead host;
        3. (with ``recover=True``) the host comes back, its stale consumer
           copies are purged (``report.recovered_purged``) and it starts
           taking new registrations again.

        Throughout, the fleet-wide scheduled recommendation refresh keeps
        firing (skipping the dead host) and anti-entropy keeps replicas
        converged; the scenario loop pumps the scheduler after every session
        so both stay honest with simulated time.
        """
        if sessions <= 0:
            raise WorkloadError("replicated failover day needs at least one session")
        if refresh_interval_ms <= 0:
            raise WorkloadError("refresh interval must be positive")
        platform = self.platform
        fleet = platform.fleet
        if fleet is None:
            raise WorkloadError(
                "replicated failover day needs a multi-server fleet "
                "(PlatformConfig.num_buyer_servers > 1)"
            )
        if not 0 <= crash_shard < fleet.num_shards:
            raise WorkloadError(f"crash_shard {crash_shard} is not a fleet shard")
        victim = fleet.servers[crash_shard]
        if victim.replication is None or not victim.replication.peers:
            raise WorkloadError(
                "replicated failover day needs replication wired "
                "(PlatformConfig.replication_factor >= 1)"
            )
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("replicated failover day needs a non-empty population")

        log = platform.event_log
        refreshes_before = log.count("recommendation.scheduled-refresh")
        fleet.start_periodic_refresh(refresh_interval_ms, k=batch_k)
        report = ScenarioReport(started_at_ms=platform.now)
        report.consumers = len(pool)
        lost_before = fleet.lost_consumers

        def run_phase(count: int) -> None:
            for _ in range(count):
                consumer = self._rng.choice(pool)
                self.run_session(
                    consumer,
                    queries=queries_per_session,
                    buy_probability=buy_probability,
                    auction_probability=auction_probability,
                    negotiate_probability=negotiate_probability,
                    ask_recommendations=self._rng.random() < recommendation_probability,
                    report=report,
                )
                if self._rng.random() < recommendation_probability:
                    # Fleet-wide similar-consumer lookup: async fan-out over
                    # every live shard; during the outage window the result
                    # is degraded (the dead shard is reported unreachable).
                    fleet.query_similar(consumer.user_id)
                # Pump the scheduler so the scheduled refresh and the
                # anti-entropy tasks fire as simulated time passes.
                platform.scheduler.run_until(platform.now)

        # Three phases totalling exactly ``sessions`` (later phases may be
        # empty when the count is tiny, but the crash/recovery still happen).
        first = max(1, sessions // 3)
        second = min(first, sessions - first)
        third = sessions - first - second
        try:
            run_phase(first)
            platform.failures.crash_host(victim.name)
            report.drained_consumers = fleet.handle_server_failure(crash_shard)
            report.lost_consumers = fleet.lost_consumers - lost_before
            run_phase(second)
            if recover:
                platform.failures.recover_host(victim.name)
                report.recovered_purged = fleet.handle_server_recovery(crash_shard)
            run_phase(third)
        finally:
            fleet.stop_periodic_refresh()
        report.finished_at_ms = platform.now
        report.batch_refreshes = (
            log.count("recommendation.scheduled-refresh") - refreshes_before
        )
        return report
