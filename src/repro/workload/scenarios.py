"""Scenario drivers: replay consumer behaviour against a live platform.

The workflow-level experiments (Figures 3.1, 3.2, 4.2, 4.3 in DESIGN.md) need
consumers actually using the agent platform — logging in, querying, buying,
joining auctions — rather than an offline dataset.  :class:`ScenarioRunner`
drives a :class:`~repro.ecommerce.platform_builder.ECommercePlatform` with the
synthetic population and reports what happened.

Every client operation goes through the platform's
:class:`~repro.api.gateway.PlatformGateway` — the same versioned envelope
surface real clients use — so the scenarios exercise the middleware chain
(metrics, deadlines, retry/failover, admission control) for free.  A
non-``ok`` envelope counts as a failed operation; a ``degraded`` one is
still an answer and counts as success, exactly as a browser would treat it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import WorkloadError
from repro.ecommerce.elasticity import AutoscalerPolicy, FleetAutoscaler
from repro.ecommerce.platform_builder import ECommercePlatform
from repro.workload.consumers import ConsumerPopulation, SyntheticConsumer

__all__ = [
    "ChaosScenarioReport",
    "ElasticScenarioReport",
    "ScenarioReport",
    "ScenarioRunner",
]


@dataclass
class ScenarioReport:
    """What a scenario run did and how long (in simulated time) it took."""

    consumers: int = 0
    sessions: int = 0
    queries: int = 0
    purchases: int = 0
    auctions: int = 0
    negotiations: int = 0
    recommendations_requested: int = 0
    failed_operations: int = 0
    batch_refreshes: int = 0
    drained_consumers: int = 0
    promoted_consumers: int = 0
    stale_shard_answers: int = 0
    lost_consumers: int = 0
    recovered_purged: int = 0
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def simulated_duration_ms(self) -> float:
        return self.finished_at_ms - self.started_at_ms

    def as_dict(self) -> Dict[str, float]:
        return {
            "consumers": self.consumers,
            "sessions": self.sessions,
            "queries": self.queries,
            "purchases": self.purchases,
            "auctions": self.auctions,
            "negotiations": self.negotiations,
            "recommendations_requested": self.recommendations_requested,
            "failed_operations": self.failed_operations,
            "batch_refreshes": self.batch_refreshes,
            "drained_consumers": self.drained_consumers,
            "promoted_consumers": self.promoted_consumers,
            "stale_shard_answers": self.stale_shard_answers,
            "lost_consumers": self.lost_consumers,
            "recovered_purged": self.recovered_purged,
            "simulated_duration_ms": self.simulated_duration_ms,
        }


@dataclass
class ElasticScenarioReport:
    """What an elastic-fleet scenario did: traffic, topology and safety.

    Shared by :meth:`ScenarioRunner.flash_crowd_day` (autoscaler-driven)
    and :meth:`ScenarioRunner.rolling_upgrade_day` (operator-driven): both
    run traffic in windows between topology changes, so the report carries
    the per-window traffic summaries, the trail of fleet sizes and
    shard-map epochs, and the safety counters the acceptance bars check —
    ``lost_consumers`` and ``missing_consumers`` must both be zero on a
    healthy run.
    """

    scenario: str = ""
    consumers: int = 0
    windows: List[Dict[str, Any]] = field(default_factory=list)
    decisions: List[Dict[str, Any]] = field(default_factory=list)
    fleet_sizes: List[int] = field(default_factory=list)
    epoch_trail: List[int] = field(default_factory=list)
    initial_servers: int = 0
    peak_servers: int = 0
    final_servers: int = 0
    requests: int = 0
    completed: int = 0
    shed: int = 0
    failed_operations: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    handbacks: int = 0
    splits: int = 0
    transferred_consumers: int = 0
    lost_consumers: int = 0
    missing_consumers: int = 0
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def simulated_duration_ms(self) -> float:
        return self.finished_at_ms - self.started_at_ms

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "consumers": self.consumers,
            "windows": [dict(window) for window in self.windows],
            "decisions": [dict(decision) for decision in self.decisions],
            "fleet_sizes": list(self.fleet_sizes),
            "epoch_trail": list(self.epoch_trail),
            "initial_servers": self.initial_servers,
            "peak_servers": self.peak_servers,
            "final_servers": self.final_servers,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "failed_operations": self.failed_operations,
            "statuses": dict(sorted(self.statuses.items())),
            "handbacks": self.handbacks,
            "splits": self.splits,
            "transferred_consumers": self.transferred_consumers,
            "lost_consumers": self.lost_consumers,
            "missing_consumers": self.missing_consumers,
            "simulated_duration_ms": self.simulated_duration_ms,
        }


@dataclass
class ChaosScenarioReport:
    """What a chaos-under-attack day did: traffic, faults, attacks, audit.

    Produced by :meth:`ScenarioRunner.chaos_marketplace_day`.  Three
    stories are folded together: the honest traffic windows (requests,
    statuses, goodput), the seeded chaos schedule and the fleet's
    reaction to it (promotions, purges, lost consumers), and the attack
    populations' fate (the embedded
    :class:`~repro.workload.adversary.AdversaryReport` dict plus the
    ``api.auth.rejected.*`` counter deltas).  ``audit`` is the
    end-of-run :class:`~repro.adversarial.audit.AuditReport` dict — the
    acceptance bars read ``audit["ok"]`` and ``attacker_success_rate``
    straight off this report.
    """

    scenario: str = "chaos_marketplace_day"
    consumers: int = 0
    windows: List[Dict[str, Any]] = field(default_factory=list)
    chaos_events: List[Dict[str, Any]] = field(default_factory=list)
    outages: int = 0
    victims: List[str] = field(default_factory=list)
    requests: int = 0
    completed: int = 0
    shed: int = 0
    failed_operations: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    promoted_consumers: int = 0
    recovered_purged: int = 0
    lost_consumers: int = 0
    adversary: Dict[str, Any] = field(default_factory=dict)
    auth_rejections: Dict[str, int] = field(default_factory=dict)
    audit: Dict[str, Any] = field(default_factory=dict)
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def simulated_duration_ms(self) -> float:
        return self.finished_at_ms - self.started_at_ms

    @property
    def honest_goodput(self) -> float:
        """Fraction of honest requests answered (``ok`` or ``degraded``)."""
        answered = self.statuses.get("ok", 0) + self.statuses.get("degraded", 0)
        return answered / self.requests if self.requests else 0.0

    @property
    def attacker_success_rate(self) -> float:
        return float(self.adversary.get("attacker_success_rate", 0.0))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "consumers": self.consumers,
            "windows": [dict(window) for window in self.windows],
            "chaos_events": [dict(event) for event in self.chaos_events],
            "outages": self.outages,
            "victims": list(self.victims),
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "failed_operations": self.failed_operations,
            "statuses": dict(sorted(self.statuses.items())),
            "honest_goodput": self.honest_goodput,
            "promoted_consumers": self.promoted_consumers,
            "recovered_purged": self.recovered_purged,
            "lost_consumers": self.lost_consumers,
            "adversary": dict(self.adversary),
            "attacker_success_rate": self.attacker_success_rate,
            "auth_rejections": dict(sorted(self.auth_rejections.items())),
            "audit": dict(self.audit),
            "simulated_duration_ms": self.simulated_duration_ms,
        }


class ScenarioRunner:
    """Drives consumer sessions against a live platform."""

    def __init__(
        self,
        platform: ECommercePlatform,
        population: ConsumerPopulation,
        seed: int = 0,
    ) -> None:
        self.platform = platform
        self.population = population
        self.gateway = platform.gateway()
        self._rng = random.Random(seed)

    # -- building blocks ----------------------------------------------------------

    def run_session(
        self,
        consumer: SyntheticConsumer,
        queries: int = 2,
        buy_probability: float = 0.5,
        auction_probability: float = 0.15,
        negotiate_probability: float = 0.15,
        ask_recommendations: bool = True,
        report: Optional[ScenarioReport] = None,
    ) -> ScenarioReport:
        """One consumer session: login, a few queries, maybe trades, logout.

        Drives the gateway exclusively: a non-``ok`` envelope is a failed
        operation (the legacy ``SessionError`` cases arrive as ``failed`` /
        ``unavailable`` statuses now), and the trade counters tick on any
        accepted request, successful trade or not — matching the behaviour
        of the direct-session driver this replaced byte for byte.
        """
        report = report if report is not None else ScenarioReport()
        gateway = self.gateway
        user_id = consumer.user_id
        login = gateway.login(user_id)
        if login.failed:
            report.failed_operations += 1
            return report
        report.sessions += 1
        try:
            for _ in range(queries):
                keyword = consumer.preferred_keyword(self._rng)
                response = gateway.query(user_id, keyword)
                if response.failed:
                    report.failed_operations += 1
                    continue
                report.queries += 1
                results = response.result.hits
                if not results:
                    continue

                ranked = sorted(
                    results, key=lambda hit: (-consumer.utility(hit.item), hit.item_id)
                )
                best = ranked[0]
                if consumer.finds_relevant(best.item):
                    roll = self._rng.random()
                    trade = None
                    if roll < auction_probability:
                        trade = gateway.join_auction(
                            user_id, best.item, max_price=best.price * 1.2,
                            marketplace=best.marketplace,
                        )
                        counter = "auctions"
                    elif roll < auction_probability + negotiate_probability:
                        trade = gateway.negotiate(
                            user_id, best.item, max_price=best.price * 0.95,
                            marketplace=best.marketplace,
                        )
                        counter = "negotiations"
                    elif roll < auction_probability + negotiate_probability + buy_probability:
                        trade = gateway.buy(
                            user_id, best.item, marketplace=best.marketplace
                        )
                        counter = "purchases"
                    if trade is not None:
                        if trade.failed:
                            report.failed_operations += 1
                        else:
                            setattr(report, counter, getattr(report, counter) + 1)

            if ask_recommendations:
                response = gateway.recommendations(user_id, k=10)
                if response.failed:
                    report.failed_operations += 1
                else:
                    report.recommendations_requested += 1
        finally:
            gateway.logout(user_id)
        return report

    # -- whole-population scenarios ---------------------------------------------------

    def warm_up(
        self,
        sessions_per_consumer: int = 1,
        queries_per_session: int = 2,
        consumers: Optional[int] = None,
    ) -> ScenarioReport:
        """Run sessions for (a prefix of) the population to populate UserDB."""
        if sessions_per_consumer <= 0:
            raise WorkloadError("sessions_per_consumer must be positive")
        selected = self.population.consumers()
        if consumers is not None:
            selected = selected[:consumers]
        report = ScenarioReport(started_at_ms=self.platform.now)
        report.consumers = len(selected)
        for _ in range(sessions_per_consumer):
            for consumer in selected:
                self.run_session(
                    consumer, queries=queries_per_session, report=report
                )
        report.finished_at_ms = self.platform.now
        return report

    def single_consumer_day(self, consumer: SyntheticConsumer, queries: int = 5) -> ScenarioReport:
        """A busier single-consumer scenario used by the examples."""
        report = ScenarioReport(started_at_ms=self.platform.now, consumers=1)
        self.run_session(consumer, queries=queries, report=report)
        report.finished_at_ms = self.platform.now
        return report

    def concurrent_day(
        self,
        sessions: int = 200,
        queries_per_session: int = 2,
        arrival_rate_per_ms: Optional[float] = 0.05,
        think_time_ms: float = 250.0,
        recommendation_probability: float = 0.25,
        seed: int = 0,
        max_events: int = 1_000_000,
    ):
        """A day of *overlapping* sessions through the gateway submit path.

        Sessions arrive open-loop (Poisson at ``arrival_rate_per_ms``;
        ``None`` = one simultaneous burst) and each runs closed-loop with
        ``think_time_ms`` pauses between its requests — see
        :class:`~repro.workload.concurrent.ConcurrentDriver`.  Returns a
        :class:`~repro.workload.concurrent.ConcurrentScenarioReport`; the
        sequential scenarios above are untouched by design (their output is
        byte-frozen).  Uses its own ``seed`` rather than the runner's RNG so
        running it never perturbs a sequential scenario issued afterwards.
        """
        from repro.workload.concurrent import ConcurrentDriver

        driver = ConcurrentDriver(self.platform, self.population, seed=seed)
        return driver.run(
            sessions=sessions,
            queries_per_session=queries_per_session,
            arrival_rate_per_ms=arrival_rate_per_ms,
            think_time_ms=think_time_ms,
            recommendation_probability=recommendation_probability,
            max_events=max_events,
        )

    def stress_day(
        self,
        sessions: int = 1000,
        queries_per_session: int = 1,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        batch_refresh_interval_ms: Optional[float] = None,
        batch_k: int = 5,
    ) -> ScenarioReport:
        """A high-volume day: many short sessions of mixed traffic.

        Consumers are drawn from the whole population at random (with
        replacement), each running a short session that mixes queries, buys,
        auction bids and negotiations; a fraction of sessions also request
        recommendations, which exercises the neighbor-index hot path under a
        growing UserDB.  When ``batch_refresh_interval_ms`` is set, the buyer
        agent server's periodic batch refresh
        (:meth:`~repro.ecommerce.buyer_server.BuyerAgentServer.maybe_refresh_recommendations`)
        is ticked after every session, precomputing community recommendation
        lists at that simulated-time cadence.
        """
        if sessions <= 0:
            raise WorkloadError("stress day needs at least one session")
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("stress day needs a non-empty population")
        report = ScenarioReport(started_at_ms=self.platform.now)
        report.consumers = len(pool)
        for _ in range(sessions):
            consumer = self._rng.choice(pool)
            self.run_session(
                consumer,
                queries=queries_per_session,
                buy_probability=buy_probability,
                auction_probability=auction_probability,
                negotiate_probability=negotiate_probability,
                ask_recommendations=self._rng.random() < recommendation_probability,
                report=report,
            )
            if batch_refresh_interval_ms is not None:
                if self.platform.buyer_server.maybe_refresh_recommendations(
                    batch_refresh_interval_ms, k=batch_k
                ):
                    report.batch_refreshes += 1
        report.finished_at_ms = self.platform.now
        return report

    def sharded_stress_day(
        self,
        sessions: int = 400,
        queries_per_session: int = 1,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        refresh_interval_ms: float = 2000.0,
        batch_k: int = 5,
    ) -> ScenarioReport:
        """A high-volume day against a sharded, scheduler-refreshed platform.

        Like :meth:`stress_day` but built for the multi-server/sharded
        serving stack: sessions are routed to each consumer's owning buyer
        agent server (the fleet, when the platform has one), and the periodic
        recommendation refresh is a real scheduled platform event
        (:meth:`~repro.ecommerce.buyer_server.BuyerAgentServer.start_periodic_refresh`
        / the fleet equivalent) rather than a per-session poll — the
        scenario loop merely pumps the scheduler so due events fire as
        simulated time passes.  ``report.batch_refreshes`` counts the
        ``recommendation.scheduled-refresh`` events the run produced.
        """
        if sessions <= 0:
            raise WorkloadError("sharded stress day needs at least one session")
        if refresh_interval_ms <= 0:
            raise WorkloadError("refresh interval must be positive")
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("sharded stress day needs a non-empty population")

        platform = self.platform
        log = platform.event_log
        refreshes_before = log.count("recommendation.scheduled-refresh")
        if platform.fleet is not None:
            refresh_owner = platform.fleet
        else:
            refresh_owner = platform.buyer_server
        refresh_owner.start_periodic_refresh(refresh_interval_ms, k=batch_k)

        report = ScenarioReport(started_at_ms=platform.now)
        report.consumers = len(pool)
        try:
            for _ in range(sessions):
                consumer = self._rng.choice(pool)
                self.run_session(
                    consumer,
                    queries=queries_per_session,
                    buy_probability=buy_probability,
                    auction_probability=auction_probability,
                    negotiate_probability=negotiate_probability,
                    ask_recommendations=self._rng.random() < recommendation_probability,
                    report=report,
                )
                # Sessions advance simulated time through the transport;
                # firing the events that became due keeps the scheduled
                # refresh cadence honest without a polling loop.
                platform.scheduler.run_until(platform.now)
        finally:
            refresh_owner.stop_periodic_refresh()
        report.finished_at_ms = platform.now
        report.batch_refreshes = (
            log.count("recommendation.scheduled-refresh") - refreshes_before
        )
        return report

    def replicated_failover_day(
        self,
        sessions: int = 240,
        queries_per_session: int = 1,
        crash_shard: int = 0,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        refresh_interval_ms: float = 2000.0,
        batch_k: int = 5,
        recover: bool = True,
    ) -> ScenarioReport:
        """A trafficked day where a buyer agent server crashes and recovers.

        Requires a multi-server platform with replication wired
        (``PlatformConfig.num_buyer_servers > 1`` and
        ``replication_factor >= 1``).  The day runs in three phases:

        1. normal traffic while every server's write-ahead log streams to
           its replica peers;
        2. the ``crash_shard`` server is crashed mid-traffic and its
           consumers are drained **from replicas** onto the survivors
           (``report.drained_consumers`` / ``report.lost_consumers``) — the
           PR-3 hand-off, requested explicitly with ``strategy="drain"``
           (:meth:`promotion_failover_day` exercises the cheaper promotion
           failover); traffic continues around the dead host;
        3. (with ``recover=True``) the host comes back, its stale consumer
           copies are purged (``report.recovered_purged``) and it starts
           taking new registrations again.

        Throughout, the fleet-wide scheduled recommendation refresh keeps
        firing (skipping the dead host) and anti-entropy keeps replicas
        converged; the scenario loop pumps the scheduler after every session
        so both stay honest with simulated time.
        """
        return self._failover_day(
            "replicated failover day",
            failover="drain",
            sessions=sessions,
            queries_per_session=queries_per_session,
            crash_shard=crash_shard,
            buy_probability=buy_probability,
            auction_probability=auction_probability,
            negotiate_probability=negotiate_probability,
            recommendation_probability=recommendation_probability,
            refresh_interval_ms=refresh_interval_ms,
            batch_k=batch_k,
            stale_queries=0,
            recover=recover,
        )

    def promotion_failover_day(
        self,
        sessions: int = 240,
        queries_per_session: int = 1,
        crash_shard: int = 0,
        buy_probability: float = 0.35,
        auction_probability: float = 0.2,
        negotiate_probability: float = 0.1,
        recommendation_probability: float = 0.3,
        refresh_interval_ms: float = 2000.0,
        batch_k: int = 5,
        stale_queries: int = 4,
        recover: bool = True,
    ) -> ScenarioReport:
        """A trafficked day surviving a crash through **replica promotion**.

        Requires a multi-server platform with replication wired (like
        :meth:`replicated_failover_day`).  The day runs in four phases:

        1. normal traffic while every server's write-ahead log streams to
           its replica peers (and is periodically snapshot-truncated);
        2. the ``crash_shard`` server is crashed; before any failover runs,
           ``stale_queries`` fleet-wide similar-consumer queries demonstrate
           the quorum-aware degraded path — the dead shard is answered from
           its freshest replica and reported in
           :attr:`~repro.ecommerce.buyer_server.FleetQueryResult.stale_shards`
           (counted in ``report.stale_shard_answers``);
        3. the freshest replica holder is **promoted**: it adopts the dead
           server's shard in place (``report.promoted_consumers`` /
           ``report.lost_consumers``) — no consumer re-registers, no state
           crosses the network — and traffic resumes for everyone;
        4. (with ``recover=True``) the host comes back, its stale copies are
           purged (``report.recovered_purged``) and it rejoins as replica
           capacity; shard ownership stays with the promoted server.

        Throughout, the fleet-wide scheduled recommendation refresh keeps
        firing (covering the adopted consumers from the first post-promotion
        tick) and anti-entropy keeps replicas converged and WALs truncated;
        the scenario loop pumps the scheduler after every session.
        """
        if stale_queries < 0:
            raise WorkloadError("stale_queries cannot be negative")
        return self._failover_day(
            "promotion failover day",
            failover="promote",
            sessions=sessions,
            queries_per_session=queries_per_session,
            crash_shard=crash_shard,
            buy_probability=buy_probability,
            auction_probability=auction_probability,
            negotiate_probability=negotiate_probability,
            recommendation_probability=recommendation_probability,
            refresh_interval_ms=refresh_interval_ms,
            batch_k=batch_k,
            stale_queries=stale_queries,
            recover=recover,
        )

    def _failover_day(
        self,
        scenario_name: str,
        failover: str,
        sessions: int,
        queries_per_session: int,
        crash_shard: int,
        buy_probability: float,
        auction_probability: float,
        negotiate_probability: float,
        recommendation_probability: float,
        refresh_interval_ms: float,
        batch_k: int,
        stale_queries: int,
        recover: bool,
    ) -> ScenarioReport:
        """Shared driver behind the two failover-day scenarios.

        Phases: traffic → crash (→ optional quorum window of stale-answered
        fleet queries) → failover (``failover`` picks the
        :meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.handle_server_failure`
        strategy and which report field counts the moved consumers) →
        degraded traffic → optional recovery + purge → traffic.  The phase
        arithmetic splits ``sessions`` three ways (later phases may be empty
        when the count is tiny, but the crash/recovery still happen), and
        the loop pumps the scheduler after every session so the scheduled
        refresh and anti-entropy tasks stay honest with simulated time.
        """
        if sessions <= 0:
            raise WorkloadError(f"{scenario_name} needs at least one session")
        if refresh_interval_ms <= 0:
            raise WorkloadError("refresh interval must be positive")
        platform = self.platform
        fleet = platform.fleet
        if fleet is None:
            raise WorkloadError(
                f"{scenario_name} needs a multi-server fleet "
                "(PlatformConfig.num_buyer_servers > 1)"
            )
        if not 0 <= crash_shard < fleet.num_shards:
            raise WorkloadError(f"crash_shard {crash_shard} is not a fleet shard")
        victim = fleet.servers[crash_shard]
        if victim.replication is None or not victim.replication.peers:
            raise WorkloadError(
                f"{scenario_name} needs replication wired "
                "(PlatformConfig.replication_factor >= 1)"
            )
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError(f"{scenario_name} needs a non-empty population")

        log = platform.event_log
        refreshes_before = log.count("recommendation.scheduled-refresh")
        fleet.start_periodic_refresh(refresh_interval_ms, k=batch_k)
        report = ScenarioReport(started_at_ms=platform.now)
        report.consumers = len(pool)
        lost_before = fleet.lost_consumers

        def run_phase(count: int) -> None:
            for _ in range(count):
                consumer = self._rng.choice(pool)
                self.run_session(
                    consumer,
                    queries=queries_per_session,
                    buy_probability=buy_probability,
                    auction_probability=auction_probability,
                    negotiate_probability=negotiate_probability,
                    ask_recommendations=self._rng.random() < recommendation_probability,
                    report=report,
                )
                if self._rng.random() < recommendation_probability:
                    # Fleet-wide similar-consumer lookup through the
                    # gateway: async fan-out over every live shard; during
                    # the outage window the envelope is degraded (dead
                    # shard unreachable, or — with live replicas — answered
                    # from one and marked stale in the provenance).
                    self.gateway.find_similar(consumer.user_id)
                # Pump the scheduler so the scheduled refresh and the
                # anti-entropy tasks fire as simulated time passes.
                platform.scheduler.run_until(platform.now)

        first = max(1, sessions // 3)
        second = min(first, sessions - first)
        third = sessions - first - second
        try:
            run_phase(first)
            platform.failures.crash_host(victim.name)
            if stale_queries:
                # Quorum window: the shard is down but not yet failed over —
                # fleet queries answer it from the freshest replica, marked
                # stale in the envelope's provenance.  Only consumers
                # registered in phase 1 can be queried.
                registered = [
                    consumer for consumer in pool
                    if fleet.is_registered(consumer.user_id)
                ]
                for index in range(min(stale_queries, len(registered))):
                    response = self.gateway.find_similar(registered[index].user_id)
                    if victim.name in response.provenance.stale_shards:
                        report.stale_shard_answers += 1
                    platform.scheduler.run_until(platform.now)
            if failover == "promote":
                report.promoted_consumers = fleet.handle_server_failure(
                    crash_shard, strategy="promote"
                )
            else:
                report.drained_consumers = fleet.handle_server_failure(
                    crash_shard, strategy="drain"
                )
            report.lost_consumers = fleet.lost_consumers - lost_before
            run_phase(second)
            if recover:
                platform.failures.recover_host(victim.name)
                report.recovered_purged = fleet.handle_server_recovery(crash_shard)
            run_phase(third)
        finally:
            fleet.stop_periodic_refresh()
        report.finished_at_ms = platform.now
        report.batch_refreshes = (
            log.count("recommendation.scheduled-refresh") - refreshes_before
        )
        return report

    # -- elastic-fleet scenarios -------------------------------------------------------

    def _elastic_window(
        self,
        report: ElasticScenarioReport,
        phase: str,
        seed: int,
        sessions: int,
        queries_per_session: int,
        arrival_rate_per_ms: Optional[float],
        think_time_ms: float,
        recommendation_probability: float,
        find_similar_probability: float,
    ) -> Dict[str, Any]:
        """One concurrent traffic window, folded into an elastic report.

        Each window gets its own seeded driver (``seed`` varies per
        window) so windows differ in traffic but the whole scenario
        replays byte-identically; the driver publishes the per-server
        utilization and backlog gauges as it finishes, which is exactly
        what the autoscaler tick that follows will read.
        """
        from repro.workload.concurrent import ConcurrentDriver

        driver = ConcurrentDriver(self.platform, self.population, seed=seed)
        window = driver.run(
            sessions=sessions,
            queries_per_session=queries_per_session,
            arrival_rate_per_ms=arrival_rate_per_ms,
            think_time_ms=think_time_ms,
            recommendation_probability=recommendation_probability,
            find_similar_probability=find_similar_probability,
        )
        report.requests += window.requests
        report.completed += window.completed
        report.shed += window.shed
        report.failed_operations += window.failed_operations
        for status, count in window.statuses.items():
            report.statuses[status] = report.statuses.get(status, 0) + count
        summary: Dict[str, Any] = {
            "phase": phase,
            "arrival_rate_per_ms": arrival_rate_per_ms,
            "sessions": window.sessions,
            "requests": window.requests,
            "completed": window.completed,
            "shed": window.shed,
            "failed_operations": window.failed_operations,
            "statuses": dict(sorted(window.statuses.items())),
            "latency_p50_ms": window.latency_ms.get("p50", 0.0),
            "latency_p99_ms": window.latency_ms.get("p99", 0.0),
        }
        report.windows.append(summary)
        return summary

    def _ensure_registered(self) -> List[str]:
        """Register any not-yet-registered consumers; returns the census."""
        fleet = self.platform.fleet
        users = [consumer.user_id for consumer in self.population.consumers()]
        for user_id in users:
            if not fleet.is_registered(user_id):
                self.gateway.register(user_id)
        return users

    def flash_crowd_day(
        self,
        sessions_per_window: int = 120,
        queries_per_session: int = 1,
        baseline_rate_per_ms: float = 0.01,
        spike_factor: float = 10.0,
        baseline_windows: int = 1,
        spike_windows: int = 2,
        drain_windows: int = 3,
        settle_ticks: int = 8,
        think_time_ms: float = 200.0,
        recommendation_probability: float = 0.25,
        find_similar_probability: float = 0.0,
        policy: Optional[AutoscalerPolicy] = None,
        seed: int = 0,
    ) -> ElasticScenarioReport:
        """A flash crowd: 10x arrival spike → scale out → drain back.

        Requires a multi-server fleet.  Traffic runs in concurrent windows
        — ``baseline_windows`` at ``baseline_rate_per_ms``, then
        ``spike_windows`` at ``spike_factor`` times that rate, then
        ``drain_windows`` back at baseline — with one
        :meth:`~repro.ecommerce.elasticity.FleetAutoscaler.tick` between
        windows reading the gauges the driver just published.  The spike
        drives utilization/backlog over the high-water marks, so the
        autoscaler joins servers and moves shards onto them (whole-shard
        handback or live split); the drain windows plus up to
        ``settle_ticks`` trailing quiet ticks shrink the fleet back to its
        founding floor, handing every borrowed shard back.  The report
        carries the full decision trail, the fleet-size and epoch history,
        and the safety counters (``lost_consumers`` and
        ``missing_consumers`` must be zero).
        """
        platform = self.platform
        fleet = platform.fleet
        if fleet is None:
            raise WorkloadError(
                "flash crowd day needs a multi-server fleet "
                "(PlatformConfig.num_buyer_servers > 1)"
            )
        for name, value in (
            ("sessions_per_window", sessions_per_window),
            ("baseline_windows", baseline_windows),
            ("spike_windows", spike_windows),
            ("drain_windows", drain_windows),
        ):
            if value <= 0:
                raise WorkloadError(f"{name} must be positive")
        if spike_factor <= 1.0:
            raise WorkloadError("spike_factor must exceed 1.0")
        if settle_ticks < 0:
            raise WorkloadError("settle_ticks cannot be negative")

        scaler = FleetAutoscaler(platform, policy)
        users = self._ensure_registered()
        report = ElasticScenarioReport(
            scenario="flash_crowd_day",
            consumers=len(users),
            started_at_ms=platform.now,
        )
        report.initial_servers = len(scaler.active_servers())
        lost_before = fleet.lost_consumers
        handbacks_before = fleet.handbacks
        splits_before = fleet.splits
        transferred_before = fleet.transferred_consumers

        spike_rate = baseline_rate_per_ms * spike_factor
        phases = (
            [("baseline", baseline_rate_per_ms)] * baseline_windows
            + [("spike", spike_rate)] * spike_windows
            + [("drain", baseline_rate_per_ms)] * drain_windows
        )
        for index, (phase, rate) in enumerate(phases):
            summary = self._elastic_window(
                report,
                phase,
                seed=seed + index,
                sessions=sessions_per_window,
                queries_per_session=queries_per_session,
                arrival_rate_per_ms=rate,
                think_time_ms=think_time_ms,
                recommendation_probability=recommendation_probability,
                find_similar_probability=find_similar_probability,
            )
            decision = scaler.tick()
            summary["decision"] = decision.action
            report.fleet_sizes.append(len(scaler.active_servers()))
            report.epoch_trail.append(fleet.shard_map.epoch)
        # Trailing quiet ticks: the gauges still read the last (baseline)
        # window, so the scaler keeps shrinking until the founding floor.
        for _ in range(settle_ticks):
            if len(scaler.active_servers()) <= scaler.floor:
                break
            scaler.tick()
            report.fleet_sizes.append(len(scaler.active_servers()))
            report.epoch_trail.append(fleet.shard_map.epoch)

        report.decisions = [decision.as_dict() for decision in scaler.decisions]
        report.peak_servers = max(report.fleet_sizes, default=0)
        report.final_servers = len(scaler.active_servers())
        report.handbacks = fleet.handbacks - handbacks_before
        report.splits = fleet.splits - splits_before
        report.transferred_consumers = (
            fleet.transferred_consumers - transferred_before
        )
        report.lost_consumers = fleet.lost_consumers - lost_before
        report.missing_consumers = sum(
            1 for user_id in users if not fleet.is_registered(user_id)
        )
        report.finished_at_ms = platform.now
        return report

    def rolling_upgrade_day(
        self,
        sessions_per_window: int = 40,
        queries_per_session: int = 1,
        arrival_rate_per_ms: float = 0.02,
        think_time_ms: float = 200.0,
        recommendation_probability: float = 0.25,
        find_similar_probability: float = 0.0,
        seed: int = 0,
    ) -> ElasticScenarioReport:
        """Restart every founding server, one at a time, under live traffic.

        Requires a multi-server fleet with replication wired.  For each
        founding server in turn: crash the host mid-day, promote the
        freshest replica holder (the PR-6 failover — consumers never
        re-register), run a traffic window against the degraded fleet,
        recover the host, purge its stale copies, and hand its original
        shards back
        (:meth:`~repro.ecommerce.buyer_server.BuyerServerFleet.transfer_shard`
        — the live replica-bootstrap + WAL catch-up path).  After the last
        server the shard map must match the founding assignment again —
        ``ownership_restored`` in each window dict, and zero
        ``lost_consumers`` / ``missing_consumers``, are the acceptance
        bars.
        """
        platform = self.platform
        fleet = platform.fleet
        if fleet is None:
            raise WorkloadError(
                "rolling upgrade day needs a multi-server fleet "
                "(PlatformConfig.num_buyer_servers > 1)"
            )
        if sessions_per_window <= 0:
            raise WorkloadError("sessions_per_window must be positive")
        founding = [
            server
            for server in list(fleet.servers)
            if server.name not in fleet.retired
        ]
        for server in founding:
            if server.replication is None or not server.replication.peers:
                raise WorkloadError(
                    "rolling upgrade day needs replication wired "
                    "(PlatformConfig.replication_factor >= 1)"
                )

        users = self._ensure_registered()
        report = ElasticScenarioReport(
            scenario="rolling_upgrade_day",
            consumers=len(users),
            started_at_ms=platform.now,
        )
        original = {
            server.name: list(fleet.shards_of(server)) for server in founding
        }
        report.initial_servers = len(founding)
        lost_before = fleet.lost_consumers
        handbacks_before = fleet.handbacks
        transferred_before = fleet.transferred_consumers

        window_seed = seed
        self._elastic_window(
            report,
            "warm",
            seed=window_seed,
            sessions=sessions_per_window,
            queries_per_session=queries_per_session,
            arrival_rate_per_ms=arrival_rate_per_ms,
            think_time_ms=think_time_ms,
            recommendation_probability=recommendation_probability,
            find_similar_probability=find_similar_probability,
        )
        report.fleet_sizes.append(len(founding))
        report.epoch_trail.append(fleet.shard_map.epoch)

        for server in founding:
            platform.failures.crash_host(server.name)
            promoted = fleet.handle_server_failure(
                original[server.name][0], strategy="promote"
            )
            window_seed += 1
            degraded = self._elastic_window(
                report,
                f"upgrade:{server.name}",
                seed=window_seed,
                sessions=sessions_per_window,
                queries_per_session=queries_per_session,
                arrival_rate_per_ms=arrival_rate_per_ms,
                think_time_ms=think_time_ms,
                recommendation_probability=recommendation_probability,
                find_similar_probability=find_similar_probability,
            )
            platform.failures.recover_host(server.name)
            purged = fleet.recover_server(server)
            restored = 0
            for shard in original[server.name]:
                owner = fleet.owner_of_shard(shard)
                if owner is not server:
                    restored += fleet.transfer_shard(
                        shard, server, kind="upgrade"
                    )
            degraded["server"] = server.name
            degraded["shards"] = list(original[server.name])
            degraded["promoted_consumers"] = promoted
            degraded["recovered_purged"] = purged
            degraded["restored_consumers"] = restored
            degraded["ownership_restored"] = all(
                fleet.shard_map.owner_of(shard) == server.name
                for shard in original[server.name]
            )
            report.fleet_sizes.append(
                sum(
                    1
                    for candidate in founding
                    if candidate.context.host.is_running
                )
            )
            report.epoch_trail.append(fleet.shard_map.epoch)

        window_seed += 1
        self._elastic_window(
            report,
            "restored",
            seed=window_seed,
            sessions=sessions_per_window,
            queries_per_session=queries_per_session,
            arrival_rate_per_ms=arrival_rate_per_ms,
            think_time_ms=think_time_ms,
            recommendation_probability=recommendation_probability,
            find_similar_probability=find_similar_probability,
        )
        report.fleet_sizes.append(len(founding))
        report.epoch_trail.append(fleet.shard_map.epoch)

        report.peak_servers = max(report.fleet_sizes, default=0)
        report.final_servers = len(founding)
        report.handbacks = fleet.handbacks - handbacks_before
        report.transferred_consumers = (
            fleet.transferred_consumers - transferred_before
        )
        report.lost_consumers = fleet.lost_consumers - lost_before
        report.missing_consumers = sum(
            1 for user_id in users if not fleet.is_registered(user_id)
        )
        report.finished_at_ms = platform.now
        return report

    # -- adversarial chaos scenario ------------------------------------------------

    def chaos_marketplace_day(
        self,
        windows: int = 5,
        sessions_per_window: int = 25,
        queries_per_session: int = 1,
        arrival_rate_per_ms: float = 0.05,
        think_time_ms: float = 150.0,
        recommendation_probability: float = 0.25,
        chaos_outages: int = 3,
        chaos_horizon_ms: float = 30_000.0,
        chaos_mean_gap_ms: float = 4_000.0,
        chaos_mean_outage_ms: float = 3_000.0,
        scalpers: int = 6,
        bids_per_scalper: int = 3,
        protocol_rounds: int = 2,
        flood_requests: int = 30,
        seed: int = 0,
    ) -> ChaosScenarioReport:
        """A marketplace day under simultaneous chaos and attack.

        The capstone adversarial scenario: honest concurrent sessions run
        in ``windows`` traffic windows while (a) a seeded
        :class:`~repro.adversarial.chaos.ChaosSchedule` — compiled onto
        the platform's :class:`~repro.platform.failure.FailureInjector`
        before traffic starts — crashes and partitions buyer servers,
        and (b) an :class:`~repro.workload.adversary.AdversaryDriver`
        interleaves scalper, protocol-bot and quota-flood futures into
        the *same* session-scheduler drains as the honest sessions.

        Between windows the platform scheduler is pumped so due chaos
        events fire, then the fleet is reconciled exactly as an operator
        would: a crashed owner's shards are promoted to the freshest
        replica holder, a recovered host is purged of stale copies and
        rejoins as replica capacity.  After the last window the run
        fast-forwards through any remaining scheduled events, settles
        anti-entropy, and hands the quiesced platform to the
        :class:`~repro.adversarial.audit.InvariantAuditor`; the returned
        report embeds the audit verbatim.

        Requires a replicated multi-server fleet *and* a platform built
        with ``handshake_trades=True`` (otherwise the handshake-backed
        invariant and the protocol-bot population would be vacuous).
        Fully deterministic for a given ``seed``.
        """
        from repro.adversarial.audit import InvariantAuditor
        from repro.adversarial.chaos import ChaosSchedule
        from repro.workload.adversary import AdversaryDriver
        from repro.workload.concurrent import ConcurrentDriver

        platform = self.platform
        fleet = platform.fleet
        if fleet is None:
            raise WorkloadError(
                "chaos marketplace day needs a multi-server fleet "
                "(PlatformConfig.num_buyer_servers > 1)"
            )
        if not platform.config.handshake_trades:
            raise WorkloadError(
                "chaos marketplace day needs handshake-secured trades "
                "(PlatformConfig.handshake_trades=True)"
            )
        if windows <= 0 or sessions_per_window <= 0:
            raise WorkloadError("windows and sessions_per_window must be positive")
        founding = [
            server
            for server in list(fleet.servers)
            if server.name not in fleet.retired
        ]
        for server in founding:
            if server.replication is None or not server.replication.peers:
                raise WorkloadError(
                    "chaos marketplace day needs replication wired "
                    "(PlatformConfig.replication_factor >= 1)"
                )

        users = self._ensure_registered()
        report = ChaosScenarioReport(
            consumers=len(users), started_at_ms=platform.now
        )
        lost_before = fleet.lost_consumers
        counters_before = dict(platform.metrics.snapshot()["counters"])

        # The settle gap must outlast anti-entropy so every window's writes
        # are replicated before the next fault can touch their primary —
        # the serialization that makes "no lost paid transaction" a claim
        # about failover, not luck (see repro.adversarial.chaos).
        settle_ms = 3 * platform.config.replication_anti_entropy_interval_ms
        schedule = ChaosSchedule.generate(
            hosts=[server.name for server in founding],
            start_ms=platform.now,
            horizon_ms=chaos_horizon_ms,
            seed=seed,
            max_outages=chaos_outages,
            mean_gap_ms=chaos_mean_gap_ms,
            mean_outage_ms=chaos_mean_outage_ms,
            settle_ms=settle_ms,
        )
        chaos_deadline = platform.now + chaos_horizon_ms
        report.chaos_events = schedule.as_dicts()
        report.outages = schedule.outages
        report.victims = schedule.victims()
        platform.failures.apply_plan(schedule.compile(sorted(platform.hosts)))

        by_name = {server.name: server for server in founding}
        pending = list(schedule.events)

        def reconcile() -> None:
            """Fire due chaos events, then repair the fleet's view of them."""
            platform.scheduler.run_until(platform.now)
            # Snapshot the horizon: fleet surgery below ships replica
            # state over the simulated network and advances the clock, and
            # an event due *after* the snapshot but *before* the advanced
            # clock has not had its injector callback fired yet — popping
            # it here would reconcile a recovery whose host is still down.
            horizon = platform.now
            while pending and pending[0].at_ms <= horizon:
                event = pending.pop(0)
                server = by_name[event.host]
                if event.kind == "crash":
                    # The gateway's in-band healing may already have
                    # promoted the dead owner's shards mid-window; only
                    # shards still pointing at the corpse need the
                    # operator-style promotion.
                    shards = fleet.shards_of(server)
                    if shards and not server.context.host.is_running:
                        report.promoted_consumers += fleet.handle_server_failure(
                            shards[0], strategy="promote"
                        )
                elif event.kind == "recover":
                    if server.context.host.is_running:
                        report.recovered_purged += fleet.recover_server(server)
                # partition/heal need no fleet surgery: routing heals
                # itself when the links come back.

        adversary = AdversaryDriver(platform, seed=seed)
        for index in range(windows):
            adversary.inject(
                scalpers=scalpers,
                bids_per_scalper=bids_per_scalper,
                protocol_rounds=protocol_rounds,
                flood_requests=flood_requests,
            )
            driver = ConcurrentDriver(
                self.platform, self.population, seed=seed + index
            )
            window = driver.run(
                sessions=sessions_per_window,
                queries_per_session=queries_per_session,
                arrival_rate_per_ms=arrival_rate_per_ms,
                think_time_ms=think_time_ms,
                recommendation_probability=recommendation_probability,
            )
            report.requests += window.requests
            report.completed += window.completed
            report.shed += window.shed
            report.failed_operations += window.failed_operations
            for status, count in window.statuses.items():
                report.statuses[status] = report.statuses.get(status, 0) + count
            report.windows.append(
                {
                    "window": index,
                    "requests": window.requests,
                    "completed": window.completed,
                    "shed": window.shed,
                    "failed_operations": window.failed_operations,
                    "statuses": dict(sorted(window.statuses.items())),
                    "clock_ms": round(platform.now, 3),
                    "hosts_down": sorted(
                        server.name
                        for server in founding
                        if not server.context.host.is_running
                    ),
                }
            )
            reconcile()
        attack_report = adversary.collect()
        report.adversary = attack_report.as_dict()

        # Quiesce: fire whatever the traffic never reached, repair it all,
        # then let anti-entropy settle before auditing convergence.
        platform.scheduler.run_until(max(platform.now, chaos_deadline))
        reconcile()
        platform.scheduler.run_until(platform.now + settle_ms)
        report.lost_consumers = fleet.lost_consumers - lost_before

        counters_after = platform.metrics.snapshot()["counters"]
        prefix = "api.auth.rejected."
        for name, value in sorted(counters_after.items()):
            if name.startswith(prefix):
                delta = int(value - counters_before.get(name, 0.0))
                if delta:
                    report.auth_rejections[name[len(prefix):]] = delta

        statuses = dict(report.statuses)
        for status, count in attack_report.statuses.items():
            statuses[status] = statuses.get(status, 0) + count
        audit = InvariantAuditor(platform).audit(
            statuses=statuses,
            error_codes=attack_report.error_codes,
            require_converged=True,
        )
        report.audit = audit.as_dict()
        report.finished_at_ms = platform.now
        return report
