"""Synthetic workloads: merchandise, consumers and behaviour traces.

The paper evaluates its mechanism qualitatively on a departmental testbed and
publishes no dataset, so every experiment in this reproduction runs on
synthetic workloads built here:

- :mod:`repro.workload.products` — a merchandise taxonomy (categories,
  sub-categories, descriptive terms) and a deterministic product generator.
- :mod:`repro.workload.consumers` — consumers with latent taste vectors,
  clustered into taste groups so collaborative filtering has structure to
  find; each consumer knows which items it *truly* finds relevant, which is
  what the quality metrics are computed against.
- :mod:`repro.workload.generator` — offline interaction datasets (train/test
  splits of feedback events) for the algorithm-level benchmarks.
- :mod:`repro.workload.scenarios` — drivers that replay consumer behaviour
  against a live :class:`~repro.ecommerce.platform_builder.ECommercePlatform`
  for the workflow-level benchmarks.
- :mod:`repro.workload.arrivals` — open-loop (Poisson) and closed-loop
  (think-time) arrival models for the concurrent scenarios.
- :mod:`repro.workload.concurrent` — the overlapping-session driver behind
  :meth:`~repro.workload.scenarios.ScenarioRunner.concurrent_day`.
- :mod:`repro.workload.adversary` — scripted abuse traffic (scalper
  fleets, handshake protocol bots, quota floods) interleaved with honest
  sessions for the adversarial scenarios.
"""

from repro.workload.products import ProductGenerator, TAXONOMY
from repro.workload.consumers import SyntheticConsumer, ConsumerPopulation
from repro.workload.generator import InteractionDataset, InteractionGenerator
from repro.workload.scenarios import ElasticScenarioReport, ScenarioRunner, ScenarioReport
from repro.workload.arrivals import PoissonArrivals, ThinkTime
from repro.workload.concurrent import (
    ConcurrentDriver,
    ConcurrentScenarioReport,
    LATENCY_HISTOGRAM_BOUNDS_MS,
)
from repro.workload.adversary import AdversaryDriver, AdversaryReport

__all__ = [
    "ProductGenerator",
    "TAXONOMY",
    "SyntheticConsumer",
    "ConsumerPopulation",
    "InteractionDataset",
    "InteractionGenerator",
    "ElasticScenarioReport",
    "ScenarioRunner",
    "ScenarioReport",
    "PoissonArrivals",
    "ThinkTime",
    "ConcurrentDriver",
    "ConcurrentScenarioReport",
    "LATENCY_HISTOGRAM_BOUNDS_MS",
    "AdversaryDriver",
    "AdversaryReport",
]
