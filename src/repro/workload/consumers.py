"""Synthetic consumers with latent tastes.

Each consumer carries a hidden (latent) preference distribution over the
merchandise taxonomy: a weight per category, a favourite sub-category within
each liked category, and an affinity for a subset of the descriptive terms.
Consumers are grouped into *taste groups*: members of the same group share the
same category weights (with individual noise), which gives collaborative
filtering real structure to discover.

The latent tastes also define the ground truth for evaluation: an item is
*relevant* to a consumer when it scores above a threshold under the consumer's
latent utility, so precision/recall of a recommender can be measured without
any human-labelled data — the substitution DESIGN.md records for the paper's
missing dataset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.core.items import Item
from repro.workload.products import TAXONOMY

__all__ = ["SyntheticConsumer", "ConsumerPopulation"]


@dataclass
class SyntheticConsumer:
    """One consumer with a hidden taste vector."""

    user_id: str
    group: int
    category_weights: Dict[str, float]
    term_affinity: Dict[str, float]
    favourite_subcategories: Dict[str, str]
    relevance_threshold: float = 0.45

    # -- latent utility ---------------------------------------------------------

    def utility(self, item: Item) -> float:
        """The consumer's true (hidden) interest in ``item``, in [0, 1]."""
        category_part = self.category_weights.get(item.category, 0.0)
        if category_part <= 0:
            return 0.0
        term_part = 0.0
        total_weight = 0.0
        for term, weight in item.terms:
            term_part += weight * self.term_affinity.get(term, 0.0)
            total_weight += weight
        if total_weight > 0:
            term_part /= total_weight
        subcategory_bonus = (
            0.15 if self.favourite_subcategories.get(item.category) == item.subcategory else 0.0
        )
        return min(1.0, 0.55 * category_part + 0.35 * term_part + subcategory_bonus)

    def finds_relevant(self, item: Item) -> bool:
        """Ground-truth relevance used by the quality metrics."""
        return self.utility(item) >= self.relevance_threshold

    def relevant_items(self, items: Iterable[Item]) -> List[str]:
        return [item.item_id for item in items if self.finds_relevant(item)]

    def top_categories(self, count: int = 2) -> List[str]:
        ranked = sorted(
            self.category_weights.items(), key=lambda pair: (-pair[1], pair[0])
        )
        return [category for category, _ in ranked[:count]]

    def preferred_keyword(self, rng: random.Random) -> str:
        """A search keyword the consumer would plausibly type."""
        category = self.top_categories(1)[0]
        subcategory = self.favourite_subcategories.get(category)
        pool = TAXONOMY.get(category, {}).get(subcategory or "", [])
        liked = [term for term in pool if self.term_affinity.get(term, 0.0) > 0.3]
        if liked:
            return rng.choice(liked)
        if pool:
            return rng.choice(pool)
        return category


class ConsumerPopulation:
    """A deterministic population of synthetic consumers in taste groups."""

    def __init__(
        self,
        size: int,
        groups: int = 4,
        seed: int = 0,
        taxonomy: Optional[Dict[str, Dict[str, List[str]]]] = None,
    ) -> None:
        if size <= 0:
            raise WorkloadError("population size must be positive")
        if groups <= 0:
            raise WorkloadError("there must be at least one taste group")
        self.size = size
        self.groups = min(groups, size)
        self.taxonomy = taxonomy if taxonomy is not None else TAXONOMY
        self._rng = random.Random(seed)
        self._consumers: List[SyntheticConsumer] = []
        self._group_prototypes = self._build_group_prototypes()
        for index in range(size):
            self._consumers.append(self._build_consumer(index))

    # -- construction ---------------------------------------------------------------

    def _build_group_prototypes(self) -> List[Dict[str, float]]:
        """Each group concentrates its interest on a small set of categories.

        The focus sets rotate over the taxonomy so no two groups share the
        same focus, which gives collaborative filtering and the similarity
        algorithm real structure to recover (DESIGN.md substitution note).
        """
        categories = sorted(self.taxonomy)
        count = len(categories)
        focus_size = 2 if count < 6 else 3
        prototypes = []
        for group in range(self.groups):
            rng = self._rng
            start = (group * focus_size) % count
            focus = {categories[(start + offset) % count] for offset in range(focus_size)}
            weights = {}
            for category in categories:
                if category in focus:
                    weights[category] = rng.uniform(0.65, 1.0)
                else:
                    weights[category] = rng.uniform(0.0, 0.15)
            prototypes.append(weights)
        return prototypes

    def _build_consumer(self, index: int) -> SyntheticConsumer:
        rng = self._rng
        group = index % self.groups
        prototype = self._group_prototypes[group]

        category_weights = {
            category: max(0.0, min(1.0, weight + rng.uniform(-0.08, 0.08)))
            for category, weight in prototype.items()
        }

        favourite_subcategories = {}
        term_affinity: Dict[str, float] = {}
        for category, weight in category_weights.items():
            subcategories = sorted(self.taxonomy[category])
            favourite = rng.choice(subcategories)
            favourite_subcategories[category] = favourite
            for subcategory in subcategories:
                pool = self.taxonomy[category][subcategory]
                for term in pool:
                    base = 0.6 if subcategory == favourite else 0.2
                    affinity = weight * base * rng.uniform(0.5, 1.0)
                    if affinity > 0.05:
                        term_affinity[term] = round(affinity, 3)

        return SyntheticConsumer(
            user_id=f"consumer-{index + 1:04d}",
            group=group,
            category_weights=category_weights,
            term_affinity=term_affinity,
            favourite_subcategories=favourite_subcategories,
        )

    # -- access --------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._consumers)

    def __iter__(self):
        return iter(self._consumers)

    def consumers(self) -> List[SyntheticConsumer]:
        return list(self._consumers)

    def consumer(self, user_id: str) -> SyntheticConsumer:
        for consumer in self._consumers:
            if consumer.user_id == user_id:
                return consumer
        raise WorkloadError(f"unknown synthetic consumer {user_id!r}")

    def by_group(self, group: int) -> List[SyntheticConsumer]:
        return [consumer for consumer in self._consumers if consumer.group == group]

    def rng(self) -> random.Random:
        """The population's RNG (shared so scenario replays stay deterministic)."""
        return self._rng
