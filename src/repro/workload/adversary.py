"""Scripted abuse workloads: scalper fleets, protocol bots, quota floods.

The honest counterpart, :class:`~repro.workload.concurrent.ConcurrentDriver`,
drives well-behaved consumer sessions; this module drives the attackers.
Three scripted populations share one seeded driver:

- **scalper fleet** — bot accounts hammering one hot auction open-loop
  (no think time, no chaining on responses: bots do not wait politely),
  the load shape PR-7's admission classes exist to shed;
- **protocol bots** — clients running the trade handshake with a
  deliberate violation per attempt (forged nonce, replayed offer,
  double finalize, stale credential), probing whether the broker's
  typed rejections actually hold the line;
- **quota flood** — a single abusive consumer machine-gunning reads,
  the per-class starvation case weighted admission buckets guard.

Attacks are submitted as ordinary gateway futures, so when a scenario
injects them *before* (or between) honest traffic they interleave with
the honest sessions in the same :class:`~repro.api.concurrency.
SessionScheduler` drain, by virtual arrival time — adversarial load is
concurrent with honest load, not a separate phase.  Everything is drawn
from seeded private RNGs; same seed, same platform → byte-identical
attack stream.

The report's headline number is :attr:`AdversaryReport.
attacker_success_rate`: the fraction of *tampered* handshake attempts
that came back ``ok``.  The acceptance bar is exactly zero — one forged
nonce surviving verification is a broken protocol, not a statistic.
Scalper and flood traffic is measured by how much of it was shed
(``rejected`` envelopes), mirrored onto ``adversary.*`` counters so a
metrics snapshot alone proves the attacks were absorbed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import WorkloadError
from repro.api.envelope import ApiStatus
from repro.api.requests import (
    AuctionRequest,
    HandshakeRequest,
    LoginRequest,
    LogoutRequest,
    QueryRequest,
)
from repro.adversarial.handshake import TAMPER_MODES
from repro.workload.arrivals import PoissonArrivals

__all__ = ["AdversaryReport", "AdversaryDriver"]


@dataclass
class AdversaryReport:
    """What the attack populations attempted and what the platform did.

    ``statuses`` / ``error_codes`` histogram every attack envelope (the
    invariant auditor closes the taxonomy over them); the per-population
    sections break the same futures down by attack class.  ``succeeded``
    under ``protocol`` counts tampered handshakes that the platform
    *accepted* — the number the whole subsystem exists to keep at zero.
    """

    scalpers: int = 0
    scalper_requests: int = 0
    scalper_shed: int = 0
    scalper_trades_won: int = 0
    protocol_attempts: Dict[str, int] = field(default_factory=dict)
    protocol_rejected: Dict[str, int] = field(default_factory=dict)
    protocol_succeeded: int = 0
    flood_requests: int = 0
    flood_shed: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    error_codes: Dict[str, int] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        return (
            self.scalper_requests
            + sum(self.protocol_attempts.values())
            + self.flood_requests
        )

    @property
    def attacker_success_rate(self) -> float:
        """Tampered handshakes accepted / tampered handshakes attempted."""
        attempts = sum(self.protocol_attempts.values())
        return self.protocol_succeeded / attempts if attempts else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "attacker_success_rate": self.attacker_success_rate,
            "scalper": {
                "fleet": self.scalpers,
                "requests": self.scalper_requests,
                "shed": self.scalper_shed,
                "trades_won": self.scalper_trades_won,
            },
            "protocol": {
                "attempts": dict(sorted(self.protocol_attempts.items())),
                "rejected": dict(sorted(self.protocol_rejected.items())),
                "succeeded": self.protocol_succeeded,
            },
            "flood": {
                "requests": self.flood_requests,
                "shed": self.flood_shed,
            },
            "statuses": dict(sorted(self.statuses.items())),
            "error_codes": dict(sorted(self.error_codes.items())),
        }


class _TrackedFuture:
    """An attack future plus the attack class it belongs to."""

    __slots__ = ("future", "population", "tamper")

    def __init__(self, future, population: str, tamper: Optional[str] = None):
        self.future = future
        self.population = population
        self.tamper = tamper


class AdversaryDriver:
    """Injects seeded attack traffic through the gateway's submit path.

    Two-phase by design: :meth:`inject` only *submits* futures (so a
    scenario can lay attacks and honest sessions into the same drain);
    :meth:`collect` reads the resolved futures into a report afterwards.
    :meth:`run` is the standalone convenience that does both around a
    ``run_until_idle``.
    """

    def __init__(self, platform, seed: int = 0) -> None:
        self.platform = platform
        self.gateway = platform.gateway()
        self.seed = seed
        self._tracked: List[_TrackedFuture] = []
        self._scalpers = 0

    # -- phase 1: submission -------------------------------------------------

    def inject(
        self,
        at_ms: Optional[float] = None,
        scalpers: int = 8,
        bids_per_scalper: int = 4,
        protocol_rounds: int = 2,
        flood_requests: int = 40,
        arrival_rate_per_ms: float = 0.2,
    ) -> int:
        """Submit the full attack mix, arriving from ``at_ms`` onwards.

        Scalpers bid open-loop on the platform's hottest listing (the
        first listing of the first marketplace — every bot wants the same
        scarce item, that is the point); protocol bots cycle through
        every tamper mode ``protocol_rounds`` times; the flood hammers
        queries from one account.  Returns the number of futures
        submitted.  Attack arrivals are Poisson with ``arrival_rate_per_
        ms`` — dense compared to honest traffic, as abuse is.
        """
        if scalpers < 0 or bids_per_scalper < 0:
            raise WorkloadError("scalper fleet sizes cannot be negative")
        if protocol_rounds < 0 or flood_requests < 0:
            raise WorkloadError("attack volumes cannot be negative")
        if arrival_rate_per_ms <= 0:
            raise WorkloadError("attack arrival rate must be positive")
        base = self.gateway.sessions.horizon if at_ms is None else float(at_ms)
        marketplace = self.platform.marketplaces[0]
        listings = marketplace.catalog.listings()
        if not listings:
            raise WorkloadError("the hot marketplace has nothing to scalp")
        hot_item = listings[0].item
        rng = random.Random(f"adversary|{self.seed}")
        total = (
            scalpers * (bids_per_scalper + 2)
            + protocol_rounds * len(TAMPER_MODES)
            + flood_requests
        )
        offsets = PoissonArrivals(
            arrival_rate_per_ms, seed=self.seed + 11
        ).offsets_ms(total)
        clock = iter(offsets)
        submitted = 0
        self._scalpers += scalpers

        def _submit(request, population: str, tamper: Optional[str] = None):
            nonlocal submitted
            future = self.gateway.submit(
                request,
                at_ms=base + next(clock),
                session_id=f"adv-{population}",
            )
            self._tracked.append(_TrackedFuture(future, population, tamper))
            submitted += 1

        # Scalper fleet: login, hammer the hot auction, logout.  Open-loop —
        # each bot's requests arrive on the shared Poisson clock regardless
        # of how the previous one resolved (the scheduler still executes
        # them in arrival order, so the login lands first).
        for index in range(scalpers):
            bot = f"scalper-{self.seed}-{index:03d}"
            _submit(LoginRequest(bot), "scalper")
            for _ in range(bids_per_scalper):
                _submit(
                    AuctionRequest(
                        bot, hot_item, max_price=hot_item.price * (2 + rng.random())
                    ),
                    "scalper",
                )
            _submit(LogoutRequest(bot), "scalper")

        # Protocol bots: one deliberate violation per attempt, every mode.
        for round_no in range(protocol_rounds):
            for tamper in TAMPER_MODES:
                bot = f"protobot-{self.seed}-{round_no}"
                _submit(
                    HandshakeRequest(bot, tamper=tamper), "protocol", tamper=tamper
                )

        # Quota flood: one account, one operation, machine-gun cadence.
        flooder = f"flooder-{self.seed}"
        keywords = sorted({listing.item.category for listing in listings})
        for _ in range(flood_requests):
            _submit(QueryRequest(flooder, rng.choice(keywords)), "flood")
        return submitted

    # -- phase 2: accounting -------------------------------------------------

    def collect(self) -> AdversaryReport:
        """Fold the resolved attack futures into a report (and counters).

        Call after the session scheduler drained.  Consumes the tracked
        futures, so back-to-back ``inject``/``collect`` cycles on one
        driver never double-count.
        """
        report = AdversaryReport(scalpers=self._scalpers)
        metrics = self.platform.metrics
        for tracked in self._tracked:
            response = tracked.future.response
            report.statuses[response.status] = (
                report.statuses.get(response.status, 0) + 1
            )
            if response.error is not None:
                report.error_codes[response.error.code] = (
                    report.error_codes.get(response.error.code, 0) + 1
                )
            if tracked.population == "scalper":
                report.scalper_requests += 1
                metrics.counter("adversary.scalper.requests").increment()
                if response.status == ApiStatus.REJECTED:
                    report.scalper_shed += 1
                    metrics.counter("adversary.scalper.shed").increment()
                elif (
                    response.ok
                    and getattr(response.result, "succeeded", False)
                    and getattr(response.result, "transaction", None) is not None
                ):
                    report.scalper_trades_won += 1
            elif tracked.population == "protocol":
                tamper = tracked.tamper or "none"
                report.protocol_attempts[tamper] = (
                    report.protocol_attempts.get(tamper, 0) + 1
                )
                metrics.counter("adversary.protocol.attempts").increment()
                if response.ok:
                    # A tampered handshake was ACCEPTED — the one outcome
                    # the subsystem must never produce.
                    report.protocol_succeeded += 1
                    metrics.counter("adversary.protocol.succeeded").increment()
                else:
                    report.protocol_rejected[response.error.code] = (
                        report.protocol_rejected.get(response.error.code, 0) + 1
                    )
                    metrics.counter("adversary.protocol.rejected").increment()
            elif tracked.population == "flood":
                report.flood_requests += 1
                metrics.counter("adversary.flood.requests").increment()
                if response.status == ApiStatus.REJECTED:
                    report.flood_shed += 1
                    metrics.counter("adversary.flood.shed").increment()
        self._tracked = []
        self._scalpers = 0
        return report

    # -- standalone ----------------------------------------------------------

    def run(self, max_events: int = 1_000_000, **inject_kwargs) -> AdversaryReport:
        """Inject the attack mix, drain the scheduler, report."""
        self.inject(**inject_kwargs)
        self.gateway.sessions.run_until_idle(max_events)
        return self.collect()
