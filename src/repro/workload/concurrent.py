"""Concurrent scenario driver: thousands of overlapping gateway sessions.

Where :mod:`repro.workload.scenarios` issues one request at a time, this
module drives the gateway's submit path
(:meth:`~repro.api.gateway.PlatformGateway.submit` +
:class:`~repro.api.concurrency.SessionScheduler`): sessions arrive on an
open-loop :class:`~repro.workload.arrivals.PoissonArrivals` process (or all
at once, for a pure burst), each session is a closed-loop chain of requests
separated by :class:`~repro.workload.arrivals.ThinkTime` pauses, and the
scheduler interleaves everything by virtual arrival time.  This is the
first workload in the repo where admission shedding, per-server queueing
and retry backoff are exercised by *overlapping* load.

The driver is deterministic end to end: arrivals, consumer choice,
keywords and think times all come from seeded private RNGs, and the
session scheduler processes submissions in a total order — replaying the
same seeds yields a byte-identical envelope stream (the property test in
``tests/property/test_concurrent_equivalence.py`` holds this line).

Results come back as a :class:`ConcurrentScenarioReport` — deliberately a
separate type from :class:`~repro.workload.scenarios.ScenarioReport`, whose
dict shape is frozen by the sequential benchmarks' byte-stability contract.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WorkloadError
from repro.api.envelope import ApiStatus
from repro.api.requests import (
    FindSimilarRequest,
    LoginRequest,
    LogoutRequest,
    QueryRequest,
    RecommendationsRequest,
)
from repro.platform.metrics import summarize
from repro.workload.arrivals import PoissonArrivals, ThinkTime
from repro.workload.consumers import ConsumerPopulation, SyntheticConsumer

__all__ = [
    "ConcurrentScenarioReport",
    "ConcurrentDriver",
    "LATENCY_HISTOGRAM_BOUNDS_MS",
]

#: Default latency histogram bucket upper bounds (simulated milliseconds);
#: the final implicit bucket is unbounded.
LATENCY_HISTOGRAM_BOUNDS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0,
)


def latency_histogram(
    samples: List[float],
    bounds: Tuple[float, ...] = LATENCY_HISTOGRAM_BOUNDS_MS,
) -> List[Dict[str, float]]:
    """Cumulative-bucket histogram as an ordered list of ``{le, count}``.

    Prometheus-style cumulative buckets: each ``count`` is the number of
    samples ``<= le`` — counts are monotone nondecreasing in ``le`` and
    the final ``le: -1`` bucket (the unbounded +Inf overflow, JSON-safe
    sentinel) always holds the total sample count.  A list (not a dict) so
    JSON serialisation with sorted keys keeps the buckets in bound order.
    """
    buckets = [{"le": bound, "count": 0.0} for bound in bounds]
    buckets.append({"le": -1.0, "count": 0.0})  # +Inf, JSON-safe sentinel
    for sample in samples:
        for bucket in buckets[:-1]:
            if sample <= bucket["le"]:
                bucket["count"] += 1.0
    buckets[-1]["count"] = float(len(samples))
    return buckets


@dataclass
class ConcurrentScenarioReport:
    """What a concurrent run did, in virtual time.

    Latency is measured per request as *finish − virtual arrival*, so it
    includes queue wait, retry backoff and service time — what a client
    would experience — while ``queue_wait_ms`` isolates the contention
    component (sampled over *this run only* — the driver snapshots the
    platform timer so back-to-back runs on one platform never fold each
    other's waits into their reports).  Latency stats cover *dispatched*
    requests only: a shed request costs ~0 simulated ms, and under burst
    the rejections would drag every percentile toward zero (the same
    distortion the metrics middleware guards against).  ``shed`` counts
    admission rejections; they are also included in ``failed_operations``
    (a shed request failed, from the session's point of view), and
    ``completed`` counts only the *non-shed* resolutions — so
    ``requests == completed + shed`` always holds.  ``queue_dropped``
    counts requests shed in queue by the deadline-aware drop (they are
    ``completed`` — the platform answered, with ``unavailable`` — but
    never occupied a server).  ``servers`` reports this run's per-server
    occupancy: simulated ms busy, utilization against the run's duration,
    total queueing delay charged to sessions stuck behind it, and attempts
    served.
    """

    consumers: int = 0
    sessions: int = 0
    requests: int = 0
    completed: int = 0
    shed: int = 0
    queue_dropped: int = 0
    failed_operations: int = 0
    executed_events: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    operations: Dict[str, int] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    queue_wait_ms: Dict[str, float] = field(default_factory=dict)
    histogram: List[Dict[str, float]] = field(default_factory=list)
    servers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    started_at_ms: float = 0.0
    finished_at_ms: float = 0.0

    @property
    def simulated_duration_ms(self) -> float:
        return self.finished_at_ms - self.started_at_ms

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "consumers": self.consumers,
            "sessions": self.sessions,
            "requests": self.requests,
            "completed": self.completed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "queue_dropped": self.queue_dropped,
            "failed_operations": self.failed_operations,
            "executed_events": self.executed_events,
            "statuses": dict(sorted(self.statuses.items())),
            "operations": dict(sorted(self.operations.items())),
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "histogram": self.histogram,
            "servers": {
                name: dict(stats) for name, stats in sorted(self.servers.items())
            },
            "simulated_duration_ms": self.simulated_duration_ms,
        }


class _Session:
    """One consumer's closed-loop request chain, driven by done-callbacks.

    login → ``queries`` queries → (maybe) find-similar → (maybe)
    recommendations → logout, each follow-up submitted at the previous
    request's virtual finish plus a think-time pause.  A failed login ends
    the session immediately (there is no session to use); any later failure
    is counted and the chain continues — a browser does not stop browsing
    because one query shed.
    """

    def __init__(
        self,
        gateway,
        consumer: SyntheticConsumer,
        queries: int,
        think: ThinkTime,
        ask_recommendations: bool,
        rng: random.Random,
        futures: List[Any],
        ask_similar: bool = False,
    ) -> None:
        self._gateway = gateway
        self._consumer = consumer
        self._queries_left = queries
        self._think = think
        self._ask_recommendations = ask_recommendations
        self._ask_similar = ask_similar
        self._rng = rng
        self._futures = futures

    def start(self, at_ms: float) -> None:
        self._submit(LoginRequest(self._consumer.user_id), at_ms, self._after_login)

    def _submit(self, request, at_ms, callback) -> None:
        future = self._gateway.submit(
            request, at_ms=at_ms, session_id=self._consumer.user_id
        )
        self._futures.append(future)
        future.add_done_callback(callback)

    def _next_at(self, future) -> float:
        return future.finished_at_ms + self._think.next_ms()

    def _after_login(self, future) -> None:
        if future.response.failed:
            return  # no session was established; nothing to drive or tear down
        self._continue(future)

    def _continue(self, future) -> None:
        user_id = self._consumer.user_id
        if self._queries_left > 0:
            self._queries_left -= 1
            keyword = self._consumer.preferred_keyword(self._rng)
            self._submit(
                QueryRequest(user_id, keyword), self._next_at(future), self._continue
            )
        elif self._ask_similar:
            # The fleet fan-out path: a similar-consumer lookup hits every
            # shard at once, which is where hedged requests (when the fleet
            # is configured with a hedge delay) actually engage.
            self._ask_similar = False
            self._submit(
                FindSimilarRequest(user_id),
                self._next_at(future),
                self._continue,
            )
        elif self._ask_recommendations:
            self._ask_recommendations = False
            self._submit(
                RecommendationsRequest(user_id, 10),
                self._next_at(future),
                self._continue,
            )
        else:
            self._submit(
                LogoutRequest(user_id), self._next_at(future), lambda _f: None
            )


class ConcurrentDriver:
    """Runs a population of overlapping sessions against one platform.

    ``seed`` derives every RNG the driver uses (arrivals, consumer choice,
    keywords, think times); two drivers with the same seed against
    same-seed platforms produce byte-identical envelope streams.
    """

    def __init__(
        self,
        platform,
        population: ConsumerPopulation,
        seed: int = 0,
    ) -> None:
        self.platform = platform
        self.population = population
        self.gateway = platform.gateway()
        self.seed = seed

    def run(
        self,
        sessions: int = 200,
        queries_per_session: int = 2,
        arrival_rate_per_ms: Optional[float] = 0.05,
        think_time_ms: float = 250.0,
        recommendation_probability: float = 0.25,
        find_similar_probability: float = 0.0,
        max_events: int = 1_000_000,
    ) -> ConcurrentScenarioReport:
        """Drive ``sessions`` overlapping sessions to completion.

        ``arrival_rate_per_ms=None`` turns the open-loop arrivals into a
        simultaneous burst (every session arrives at the current horizon) —
        the harshest test of admission shedding.
        ``find_similar_probability`` adds a fleet-wide similar-consumer
        lookup to that fraction of sessions — the fan-out (and, when
        configured, hedged-request) hot path under concurrent load.  At the
        default ``0.0`` the extra RNG draw is skipped entirely, so existing
        seeded runs replay byte-identically.
        """
        if not 0.0 <= find_similar_probability <= 1.0:
            raise WorkloadError("find_similar_probability must be in [0, 1]")
        if sessions <= 0:
            raise WorkloadError("concurrent day needs at least one session")
        if queries_per_session < 0:
            raise WorkloadError("queries_per_session cannot be negative")
        pool = self.population.consumers()
        if not pool:
            raise WorkloadError("concurrent day needs a non-empty population")

        rng = random.Random(self.seed)
        think = ThinkTime(think_time_ms, seed=self.seed + 1)
        if arrival_rate_per_ms is None:
            offsets = [0.0] * sessions
        else:
            offsets = PoissonArrivals(
                arrival_rate_per_ms, seed=self.seed + 2
            ).offsets_ms(sessions)

        # Distinct consumers when the population allows it: two *overlapping*
        # sessions of the same account are a genuine conflict (the second
        # login fails), which is noise when the point is load, not accounts.
        # An under-sized population falls back to drawing with replacement
        # and the duplicate-login failures are counted like any other.
        if len(pool) >= sessions:
            chosen = rng.sample(pool, sessions)
        else:
            chosen = [rng.choice(pool) for _ in range(sessions)]

        scheduler = self.gateway.sessions
        base = scheduler.horizon
        # Snapshot the platform-global accumulators so the report covers
        # *this run only*: timers, counters and the per-server queue stats
        # all outlive a run, and a second drive on the same platform must
        # not fold the first drive's samples into its own numbers.
        metrics = self.platform.metrics
        queue_timer = metrics.timer("api.queue_wait_ms")
        waits_before = len(queue_timer.samples)
        dropped_before = metrics.counter("api.queue_dropped").value
        queues_before = scheduler.queues.stats()
        futures: List[Any] = []
        for consumer, offset in zip(chosen, offsets):
            session = _Session(
                gateway=self.gateway,
                consumer=consumer,
                queries=queries_per_session,
                think=think,
                ask_recommendations=rng.random() < recommendation_probability,
                rng=rng,
                futures=futures,
                # Guarded draw: at probability 0 the RNG is not consulted,
                # keeping pre-existing seeded runs byte-identical.
                ask_similar=(
                    find_similar_probability > 0.0
                    and rng.random() < find_similar_probability
                ),
            )
            session.start(base + offset)
        executed = scheduler.run_until_idle(max_events)

        report = ConcurrentScenarioReport(
            consumers=len(pool), sessions=sessions, executed_events=executed
        )
        latencies: List[float] = []
        for future in futures:
            response = future.response
            report.requests += 1
            report.statuses[response.status] = (
                report.statuses.get(response.status, 0) + 1
            )
            report.operations[response.operation] = (
                report.operations.get(response.operation, 0) + 1
            )
            if response.status == ApiStatus.REJECTED:
                report.shed += 1
            else:
                # "Completed" means the platform resolved the request with
                # an answer (ok, degraded, failed or unavailable) — a shed
                # request was turned away at the door and completed nothing.
                report.completed += 1
                latencies.append(future.finished_at_ms - future.submitted_at_ms)
            if response.failed:
                report.failed_operations += 1
        if futures:
            report.started_at_ms = min(f.submitted_at_ms for f in futures)
            report.finished_at_ms = max(f.finished_at_ms for f in futures)
        report.latency_ms = summarize(latencies)
        report.queue_wait_ms = summarize(queue_timer.samples[waits_before:])
        report.queue_dropped = int(
            metrics.counter("api.queue_dropped").value - dropped_before
        )
        report.histogram = latency_histogram(latencies)
        self._report_servers(report, queues_before, scheduler.queues.stats())
        return report

    def _report_servers(
        self,
        report: ConcurrentScenarioReport,
        before: Dict[str, Dict[str, float]],
        after: Dict[str, Dict[str, float]],
    ) -> None:
        """Fill ``report.servers`` and the per-server platform gauges.

        Utilization is this run's busy time over this run's duration;
        ``queue_wait_ms`` is the total queueing delay sessions spent stuck
        behind the server — the backlog signal an autoscaler would watch.
        Published as ``api.server.<name>.utilization`` / ``.backlog_ms``
        gauges too, so the saturation sweep (and a future control loop)
        can read them without holding the report.
        """
        duration = report.simulated_duration_ms
        zero = {"busy_ms": 0.0, "queued_ms": 0.0, "served": 0.0}
        for server in self.platform.buyer_servers:
            name = server.name
            delta = {
                key: after.get(name, zero).get(key, 0.0)
                - before.get(name, zero).get(key, 0.0)
                for key in zero
            }
            utilization = delta["busy_ms"] / duration if duration > 0 else 0.0
            report.servers[name] = {
                "busy_ms": delta["busy_ms"],
                "utilization": utilization,
                "queue_wait_ms": delta["queued_ms"],
                "served": delta["served"],
            }
            metrics = self.platform.metrics
            metrics.gauge(f"api.server.{name}.utilization").set(utilization)
            metrics.gauge(f"api.server.{name}.backlog_ms").set(delta["queued_ms"])
