"""Synthetic merchandise generation.

The taxonomy mirrors the kinds of goods the paper's motivating scenarios and
its cited recommender-systems work mention (books, electronics, groceries,
entertainment ...).  Categories and sub-categories line up with the profile
hierarchy of Figure 4.4, and every item carries a handful of weighted
descriptive terms drawn from its sub-category's term pool so the
information-filtering recommender and the profile learner have content to work
with.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.core.items import Item

__all__ = ["TAXONOMY", "ProductGenerator"]


#: category -> sub-category -> descriptive term pool
TAXONOMY: Dict[str, Dict[str, List[str]]] = {
    "books": {
        "fiction": ["novel", "mystery", "thriller", "romance", "classic", "fantasy"],
        "technical": ["programming", "networks", "databases", "algorithms", "java", "python"],
        "business": ["management", "marketing", "finance", "strategy", "startup"],
    },
    "electronics": {
        "computers": ["laptop", "desktop", "monitor", "keyboard", "ssd", "memory"],
        "phones": ["smartphone", "android", "battery", "camera", "charger"],
        "audio": ["headphones", "speaker", "wireless", "bass", "noise-cancelling"],
    },
    "entertainment": {
        "movies": ["dvd", "action", "comedy", "drama", "director", "subtitle"],
        "music": ["album", "jazz", "rock", "pop", "vinyl", "concert"],
        "games": ["console", "rpg", "strategy-game", "multiplayer", "puzzle"],
    },
    "groceries": {
        "beverages": ["coffee", "tea", "juice", "sparkling", "organic"],
        "snacks": ["chocolate", "chips", "cookies", "nuts", "candy"],
        "produce": ["fruit", "vegetable", "fresh", "salad", "seasonal"],
    },
    "fashion": {
        "clothing": ["shirt", "jacket", "jeans", "cotton", "casual", "formal"],
        "shoes": ["sneakers", "boots", "running", "leather", "comfort"],
        "accessories": ["watch", "bag", "belt", "scarf", "sunglasses"],
    },
}

#: Typical price ranges per category (low, high).
PRICE_RANGES: Dict[str, tuple] = {
    "books": (8.0, 60.0),
    "electronics": (30.0, 1500.0),
    "entertainment": (10.0, 90.0),
    "groceries": (2.0, 25.0),
    "fashion": (15.0, 250.0),
}


class ProductGenerator:
    """Deterministic generator of synthetic merchandise items."""

    def __init__(self, seed: int = 0, taxonomy: Optional[Dict[str, Dict[str, List[str]]]] = None):
        self._rng = random.Random(seed)
        self.taxonomy = taxonomy if taxonomy is not None else TAXONOMY
        if not self.taxonomy:
            raise WorkloadError("the product taxonomy cannot be empty")
        self._serial = 0

    def categories(self) -> List[str]:
        return sorted(self.taxonomy)

    def subcategories(self, category: str) -> List[str]:
        if category not in self.taxonomy:
            raise WorkloadError(f"unknown category {category!r}")
        return sorted(self.taxonomy[category])

    def _next_id(self, seller: str) -> str:
        self._serial += 1
        prefix = seller or "item"
        return f"{prefix}-{self._serial:05d}"

    def generate_item(
        self,
        seller: str = "",
        category: Optional[str] = None,
        subcategory: Optional[str] = None,
    ) -> Item:
        """Generate one item, optionally pinned to a category/sub-category."""
        rng = self._rng
        category = category or rng.choice(self.categories())
        subcategory = subcategory or rng.choice(self.subcategories(category))
        pool = self.taxonomy[category][subcategory]

        term_count = min(len(pool), rng.randint(2, 4))
        chosen = rng.sample(pool, term_count)
        terms = {term: round(rng.uniform(0.4, 1.0), 3) for term in chosen}

        low, high = PRICE_RANGES.get(category, (5.0, 100.0))
        price = round(rng.uniform(low, high), 2)
        item_id = self._next_id(seller)
        name = f"{subcategory.title()} {chosen[0].title()} #{self._serial}"
        return Item.build(
            item_id=item_id,
            name=name,
            category=category,
            subcategory=subcategory,
            terms=terms,
            price=price,
            seller=seller,
        )

    def generate(
        self,
        count: int,
        seller: str = "",
        categories: Optional[Sequence[str]] = None,
    ) -> List[Item]:
        """Generate ``count`` items, cycling over ``categories`` when given."""
        if count <= 0:
            raise WorkloadError("item count must be positive")
        allowed = list(categories) if categories else self.categories()
        for category in allowed:
            if category not in self.taxonomy:
                raise WorkloadError(f"unknown category {category!r}")
        items = []
        for index in range(count):
            category = allowed[index % len(allowed)]
            items.append(self.generate_item(seller=seller, category=category))
        return items
