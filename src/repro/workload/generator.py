"""Offline interaction datasets for the algorithm-level benchmarks.

The recommendation-quality experiments (CAP-4 in DESIGN.md) do not need the
whole agent platform: they evaluate the recommenders directly on a dataset of
consumer behaviour.  :class:`InteractionGenerator` produces such datasets from
a synthetic population and catalogue: each consumer interacts (queries, buys,
bids) with items drawn according to its latent utility, over simulated time,
and the dataset is split chronologically into a training part (what the
mechanism gets to observe) and a held-out part (what the metrics are computed
against).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.core.items import Item, ItemCatalogView
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent, ProfileLearner
from repro.core.ratings import Interaction, InteractionKind, RatingsStore
from repro.workload.consumers import ConsumerPopulation, SyntheticConsumer

__all__ = ["InteractionDataset", "InteractionGenerator"]


@dataclass
class InteractionDataset:
    """A generated behaviour dataset with a chronological train/test split."""

    catalog: ItemCatalogView
    population: ConsumerPopulation
    train_events: List[FeedbackEvent]
    test_relevance: Dict[str, List[str]]
    duration_ms: float

    def build_profiles(self, learner: Optional[ProfileLearner] = None) -> Dict[str, Profile]:
        """Learn a profile per consumer from the training events."""
        learner = learner or ProfileLearner()
        profiles: Dict[str, Profile] = {}
        for event in self.train_events:
            profile = profiles.setdefault(event.user_id, Profile(event.user_id))
            learner.apply(profile, event)
        # Consumers with no training events still get an (empty) profile.
        for consumer in self.population:
            profiles.setdefault(consumer.user_id, Profile(consumer.user_id))
        return profiles

    def build_ratings(self) -> RatingsStore:
        """Observational ratings store built from the training events."""
        store = RatingsStore()
        for event in self.train_events:
            store.add(
                Interaction(
                    user_id=event.user_id,
                    item_id=event.item.item_id,
                    kind=event.kind,
                    timestamp=event.timestamp,
                    value=event.rating or 0.0,
                    category=event.item.category,
                )
            )
        return store

    def relevant_items(self, user_id: str) -> List[str]:
        """Held-out ground-truth relevant items for ``user_id``."""
        return list(self.test_relevance.get(user_id, []))

    @property
    def users(self) -> List[str]:
        return [consumer.user_id for consumer in self.population]


class InteractionGenerator:
    """Generates behaviour datasets from a population and a catalogue."""

    #: Probability of each behaviour kind given the consumer engaged an item.
    BEHAVIOUR_MIX: Sequence[Tuple[InteractionKind, float]] = (
        (InteractionKind.QUERY, 0.45),
        (InteractionKind.VIEW, 0.20),
        (InteractionKind.NEGOTIATE, 0.10),
        (InteractionKind.AUCTION_BID, 0.10),
        (InteractionKind.BUY, 0.15),
    )

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def _pick_behaviour(self, utility: float) -> InteractionKind:
        """Stronger latent interest shifts behaviour towards purchases."""
        roll = self._rng.random()
        if utility > 0.75 and roll < 0.45:
            return InteractionKind.BUY
        cumulative = 0.0
        for kind, probability in self.BEHAVIOUR_MIX:
            cumulative += probability
            if roll <= cumulative:
                return kind
        return InteractionKind.QUERY

    def _choose_item(
        self, consumer: SyntheticConsumer, items: Sequence[Item], exploration: float
    ) -> Item:
        """Mostly pick items the consumer truly likes; sometimes explore."""
        if self._rng.random() < exploration:
            return self._rng.choice(list(items))
        weighted = [(consumer.utility(item), item) for item in items]
        weighted.sort(key=lambda pair: (-pair[0], pair[1].item_id))
        head = max(1, int(len(weighted) * 0.25))
        return self._rng.choice([item for _, item in weighted[:head]])

    def generate(
        self,
        population: ConsumerPopulation,
        catalog: ItemCatalogView,
        events_per_user: int = 40,
        exploration: float = 0.15,
        test_fraction: float = 0.3,
        start_ms: float = 0.0,
        gap_ms: float = 60_000.0,
    ) -> InteractionDataset:
        """Generate one dataset.

        Args:
            population: the synthetic consumers.
            catalog: the merchandise they interact with.
            events_per_user: how many training interactions each consumer makes.
            exploration: probability an interaction targets a random item
                rather than one the consumer likes (adds noise/serendipity).
            test_fraction: fraction of each consumer's *relevant* items that is
                held out of training entirely and used as ground truth.
            start_ms / gap_ms: timestamps of the generated events.
        """
        if events_per_user <= 0:
            raise WorkloadError("events_per_user must be positive")
        if not 0.0 <= exploration <= 1.0:
            raise WorkloadError("exploration must be in [0, 1]")
        if not 0.0 < test_fraction < 1.0:
            raise WorkloadError("test_fraction must be in (0, 1)")

        items = list(catalog)
        if not items:
            raise WorkloadError("the catalogue is empty")

        train_events: List[FeedbackEvent] = []
        test_relevance: Dict[str, List[str]] = {}
        timestamp = start_ms

        for consumer in population:
            relevant = consumer.relevant_items(items)
            self._rng.shuffle(relevant)
            held_out_count = max(1, int(len(relevant) * test_fraction)) if relevant else 0
            held_out = set(relevant[:held_out_count])
            test_relevance[consumer.user_id] = sorted(held_out)

            trainable = [item for item in items if item.item_id not in held_out]
            if not trainable:
                trainable = items
            for _ in range(events_per_user):
                item = self._choose_item(consumer, trainable, exploration)
                utility = consumer.utility(item)
                kind = self._pick_behaviour(utility)
                rating = None
                if kind is InteractionKind.BUY and self._rng.random() < 0.4:
                    # Some purchases come with an explicit rating proportional
                    # to the consumer's true utility (observational + explicit).
                    rating = round(5.0 * utility, 1)
                timestamp += gap_ms
                train_events.append(
                    FeedbackEvent(
                        user_id=consumer.user_id,
                        item=item,
                        kind=kind,
                        timestamp=timestamp,
                        rating=rating,
                    )
                )

        return InteractionDataset(
            catalog=catalog,
            population=population,
            train_events=train_events,
            test_relevance=test_relevance,
            duration_ms=timestamp - start_ms,
        )
