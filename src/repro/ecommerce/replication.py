"""Cross-server replication of buyer agent server state.

The paper's platform assumes buyer agent servers that keep "servicing a
consumer community" as hosts come and go (§3.2, §1 fault tolerance).  PR 2's
failover drain cheated: it read the crashed server's in-memory UserDB
directly.  This module makes the fleet an honest distributed system: every
buyer agent server streams its durable mutations to one or more replica peers
over the simulated network, and a crashed server's consumers are restored
from those replicas — without a single read against the dead host's memory.

**Design.**  Three pieces:

- :class:`ReplicationLog` — the primary's write-ahead log.  Every durable
  UserDB mutation (registration, profile snapshot, observational rating,
  transaction, login, unregistration) becomes a :class:`ReplicationLogEntry`
  with a monotonic sequence number.  In-place profile *learning* updates —
  which never pass through ``UserDB.store_profile`` — are captured through a
  :class:`~repro.core.profile_learning.ProfileLearner` update hook that
  snapshots the changed profile.
- :class:`ReplicaState` — one primary's mirror hosted on a peer server: a
  shadow :class:`~repro.ecommerce.databases.UserDB` plus the sequence number
  of the last applied entry.  Entries apply strictly in sequence order;
  duplicates are skipped, gaps stall the replica until anti-entropy fills
  them, so a replica is always a *prefix* of the primary's history.
- :class:`ReplicationManager` — one per participating server.  It owns the
  local WAL, the list of replica peers, and the replicas this server hosts
  for *other* primaries.  Writes stream synchronously when the network
  allows (each shipment is charged to the
  :class:`~repro.platform.network.SimulatedNetwork` via the transport, so
  replication traffic costs simulated time and bytes like any other
  transfer); when a peer is down, partitioned or the transfer is dropped,
  the entries stay in the log and a periodic anti-entropy task
  (:meth:`~repro.platform.clock.Scheduler.call_every`) re-ships everything
  the peer has not acknowledged once connectivity returns.

**Replication semantics — what is durable, what is lost.**

- *Durable (replicated):* consumer registrations, full profile state
  (including every learning update, as post-update snapshots), observational
  ratings in arrival order (so accumulated values replay identically),
  transaction records, login stamps and unregistrations.  A consumer whose
  entries reached at least one live replica survives a primary crash with
  byte-identical profile, ratings and transactions.
- *Lost on crash:* entries appended after the last successful shipment to
  every replica (the replication lag tail), and the primary's soft state —
  BSMDB session records, agent instances, recommendation caches — which is
  rebuilt on the consumer's next login.  A consumer *registered* during a
  replication outage is reported as lost by the failover drain rather than
  silently resurrected empty.
- *Lag visibility:* :meth:`ReplicationManager.lag_of` reports the per-peer
  unacknowledged-entry count, mirrored into platform metrics as
  ``replication.lag.<primary>-><peer>`` gauges; anti-entropy catch-ups are
  recorded as ``replication.catch-up`` events in the platform event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import NetworkError, ReplicationError
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.ecommerce.databases import UserDB
from repro.platform.clock import RecurringCallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.buyer_server import BuyerAgentServer

__all__ = [
    "ReplicationLogEntry",
    "ReplicationLog",
    "ReplicaState",
    "ReplicationManager",
]

#: Fixed per-entry framing overhead charged to the network, on top of the
#: payload's own (repr-estimated) size.
ENTRY_OVERHEAD_BYTES = 48


@dataclass(frozen=True)
class ReplicationLogEntry:
    """One write-ahead-log entry: a durable mutation with a sequence number."""

    seq: int
    op: str
    payload: Dict[str, Any]
    timestamp: float

    def payload_bytes(self) -> int:
        """Deterministic wire-size estimate used to charge the network."""
        return ENTRY_OVERHEAD_BYTES + len(repr(self.payload))


class ReplicationLog:
    """The primary's append-only write-ahead log with monotonic sequence numbers."""

    def __init__(self) -> None:
        self._entries: List[ReplicationLogEntry] = []

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 when the log is empty)."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def append(self, op: str, payload: Dict[str, Any], timestamp: float) -> ReplicationLogEntry:
        """Append one mutation; sequence numbers start at 1 and never skip."""
        entry = ReplicationLogEntry(
            seq=self.last_seq + 1, op=op, payload=dict(payload), timestamp=timestamp
        )
        self._entries.append(entry)
        return entry

    def entries_since(self, seq: int) -> List[ReplicationLogEntry]:
        """Every entry with a sequence number strictly greater than ``seq``."""
        if seq < 0:
            raise ReplicationError(f"sequence numbers are non-negative, got {seq}")
        return list(self._entries[seq:])


class ReplicaState:
    """One primary's replicated state, hosted on a peer server.

    The shadow :class:`UserDB` is rebuilt purely from log entries, applied
    strictly in sequence order: :meth:`apply_entries` skips entries at or
    below ``applied_seq`` (duplicate shipments are idempotent) and stops at
    the first gap (anti-entropy re-ships the full missing suffix later), so
    the shadow is always an exact prefix of the primary's mutation history.
    """

    def __init__(self, primary: str) -> None:
        self.primary = primary
        self.applied_seq = 0
        self.db = UserDB()

    def apply_entries(self, entries: List[ReplicationLogEntry]) -> int:
        """Apply an ordered batch; return how many entries were applied."""
        applied = 0
        for entry in entries:
            if entry.seq <= self.applied_seq:
                continue  # duplicate shipment — already applied
            if entry.seq != self.applied_seq + 1:
                break  # gap — wait for anti-entropy to ship the full suffix
            self._apply(entry)
            self.applied_seq = entry.seq
            applied += 1
        return applied

    def _apply(self, entry: ReplicationLogEntry) -> None:
        payload = entry.payload
        if entry.op == "register":
            self.db.register(
                payload["user_id"],
                payload.get("display_name", ""),
                timestamp=payload.get("timestamp", 0.0),
            )
        elif entry.op == "unregister":
            self.db.unregister(payload["user_id"])
        elif entry.op == "store-profile":
            self.db.store_profile(Profile.from_dict(payload["profile"]))
        elif entry.op == "interaction":
            self.db.record_interaction(payload["interaction"])
        elif entry.op == "transaction":
            self.db.record_transaction(payload["transaction"])
        elif entry.op == "login":
            self.db.record_login(payload["user_id"], payload.get("timestamp", 0.0))
        else:
            raise ReplicationError(f"unknown replication op {entry.op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaState(primary={self.primary!r}, applied_seq={self.applied_seq}, "
            f"consumers={len(self.db)})"
        )


class ReplicationManager:
    """Streams one buyer agent server's mutations to its replica peers.

    Attach with :meth:`BuyerAgentServer.enable_replication`; wire peers with
    :meth:`replicate_to`.  The manager hooks the server's UserDB mutation
    listener and the profile learner's update hook, so every durable write is
    logged and (network permitting) shipped immediately; the scheduled
    anti-entropy task re-ships anything a peer missed.
    """

    def __init__(self, server: "BuyerAgentServer") -> None:
        self.server = server
        self.name = server.name
        self.log = ReplicationLog()
        self.peers: List["BuyerAgentServer"] = []
        #: Highest sequence number each peer has acknowledged applying.
        self._acked: Dict[str, int] = {}
        #: Replicas this server hosts for *other* primaries (name → state).
        self.hosted: Dict[str, ReplicaState] = {}
        self._anti_entropy_task: Optional[RecurringCallback] = None
        server.user_db.add_mutation_listener(self._on_mutation)
        server.profile_learner.add_update_hook(self._on_profile_update)

    # -- wiring ---------------------------------------------------------------

    def replicate_to(self, peer: "BuyerAgentServer") -> ReplicaState:
        """Start streaming this server's WAL to ``peer``.

        The peer must have replication enabled too (it hosts the
        :class:`ReplicaState`).  Returns the replica state, which lives on
        the peer — exactly where the failover drain will look for it.
        """
        if peer is self.server:
            raise ReplicationError(f"server {self.name!r} cannot replicate to itself")
        if peer.replication is None:
            raise ReplicationError(
                f"peer {peer.name!r} must enable replication before hosting a replica"
            )
        if any(existing is peer for existing in self.peers):
            raise ReplicationError(
                f"server {self.name!r} already replicates to {peer.name!r}"
            )
        state = peer.replication.host_replica(self.name)
        self.peers.append(peer)
        self._acked[peer.name] = 0
        return state

    def host_replica(self, primary: str) -> ReplicaState:
        """Create (or return) the replica this server hosts for ``primary``."""
        if primary not in self.hosted:
            self.hosted[primary] = ReplicaState(primary)
        return self.hosted[primary]

    # -- capture hooks --------------------------------------------------------

    def _on_mutation(self, op: str, payload: Dict[str, Any]) -> None:
        self._append_and_stream(op, payload)

    def _on_profile_update(
        self, profile: Profile, event: Optional[FeedbackEvent] = None
    ) -> None:
        # In-place learning updates never pass through store_profile; snapshot
        # the whole profile so replicas converge to the exact post-update state.
        self._append_and_stream("store-profile", {"profile": profile.to_dict()})

    def _append_and_stream(self, op: str, payload: Dict[str, Any]) -> None:
        entry = self.log.append(op, payload, timestamp=self.server.context.now)
        if not self.server.context.host.is_running:
            return  # crashed primaries cannot ship; the tail is the lag
        for peer in self.peers:
            self._ship(peer, [entry])

    # -- shipping -------------------------------------------------------------

    def _ship(self, peer: "BuyerAgentServer", entries: List[ReplicationLogEntry]) -> int:
        """Ship ``entries`` to ``peer``; return how many it applied.

        A peer that missed earlier entries is sent the full unacknowledged
        suffix instead (replicas apply strictly in order).  Network failures
        — peer down, partition, dropped transfer — leave the entries in the
        log for the next anti-entropy pass and are counted in
        ``replication.deferred``.
        """
        acked = self._acked[peer.name]
        if not entries or entries[0].seq > acked + 1:
            entries = self.log.entries_since(acked)
        if not entries:
            return 0
        transport = self.server.context.transport
        payload_bytes = sum(entry.payload_bytes() for entry in entries)
        try:
            transport.deliver(self.name, peer.name, "replication", payload_bytes)
        except NetworkError:
            transport.metrics.counter("replication.deferred").increment()
            return 0
        state = peer.replication.hosted[self.name]
        applied = state.apply_entries(entries)
        self._acked[peer.name] = state.applied_seq
        transport.metrics.counter("replication.entries_shipped").increment(applied)
        self._record_lag(peer)
        return applied

    def _record_lag(self, peer: "BuyerAgentServer") -> None:
        metrics = self.server.context.transport.metrics
        metrics.gauge(f"replication.lag.{self.name}->{peer.name}").set(
            self.lag_of(peer.name)
        )

    def lag_of(self, peer_name: str) -> int:
        """Unacknowledged entries for ``peer_name`` (replication lag in ops)."""
        if peer_name not in self._acked:
            raise ReplicationError(f"{self.name!r} does not replicate to {peer_name!r}")
        return self.log.last_seq - self._acked[peer_name]

    def acked_seq(self, peer_name: str) -> int:
        """Highest sequence number ``peer_name`` has acknowledged."""
        if peer_name not in self._acked:
            raise ReplicationError(f"{self.name!r} does not replicate to {peer_name!r}")
        return self._acked[peer_name]

    # -- anti-entropy ---------------------------------------------------------

    def anti_entropy_tick(self) -> int:
        """Re-ship every unacknowledged entry to every peer; return shipped count.

        Skips entirely while the primary host is down (a crashed server
        cannot send), and records a ``replication.catch-up`` event whenever a
        lagging peer was actually caught up.
        """
        if not self.server.context.host.is_running:
            return 0
        transport = self.server.context.transport
        shipped = 0
        for peer in self.peers:
            lag = self.lag_of(peer.name)
            if lag == 0:
                self._record_lag(peer)
                continue
            applied = self._ship(peer, self.log.entries_since(self._acked[peer.name]))
            shipped += applied
            if applied:
                transport.event_log.record(
                    self.server.context.now,
                    "replication.catch-up",
                    self.name,
                    peer.name,
                    entries=applied,
                    remaining_lag=self.lag_of(peer.name),
                )
            self._record_lag(peer)
        return shipped

    @property
    def anti_entropy_scheduled(self) -> bool:
        return (
            self._anti_entropy_task is not None
            and not self._anti_entropy_task.cancelled
        )

    def start_anti_entropy(self, interval_ms: float) -> RecurringCallback:
        """Run :meth:`anti_entropy_tick` every ``interval_ms`` of simulated time."""
        if interval_ms <= 0:
            raise ReplicationError("anti-entropy interval must be positive")
        if self.anti_entropy_scheduled:
            raise ReplicationError(
                f"server {self.name!r} already has a scheduled anti-entropy task"
            )
        self._anti_entropy_task = self.server.context.host.scheduler.call_every(
            interval_ms, self.anti_entropy_tick, label=f"replication.{self.name}"
        )
        return self._anti_entropy_task

    def stop_anti_entropy(self) -> None:
        """Cancel the scheduled anti-entropy task (no-op when none is armed)."""
        if self._anti_entropy_task is not None:
            self._anti_entropy_task.cancel()
            self._anti_entropy_task = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationManager({self.name!r}, wal={self.log.last_seq}, "
            f"peers={[peer.name for peer in self.peers]}, "
            f"hosts={sorted(self.hosted)})"
        )
