"""Cross-server replication of buyer agent server state.

The paper's platform assumes buyer agent servers that keep "servicing a
consumer community" as hosts come and go (§3.2, §1 fault tolerance).  PR 2's
failover drain cheated: it read the crashed server's in-memory UserDB
directly.  This module makes the fleet an honest distributed system: every
buyer agent server streams its durable mutations to one or more replica peers
over the simulated network, and a crashed server's consumers are restored
from those replicas — without a single read against the dead host's memory.

**Design.**  Four pieces:

- :class:`ReplicationLog` — the primary's write-ahead log.  Every durable
  UserDB mutation (registration, profile snapshot, observational rating,
  transaction, login, unregistration) becomes a :class:`ReplicationLogEntry`
  with a monotonic sequence number.  In-place profile *learning* updates —
  which never pass through ``UserDB.store_profile`` — are captured through a
  :class:`~repro.core.profile_learning.ProfileLearner` update hook that
  snapshots the changed profile.  The log is **bounded**: once every peer has
  acknowledged a long enough prefix, the manager captures a
  :class:`ReplicationSnapshot` and truncates the acknowledged prefix
  (:meth:`ReplicationManager.maybe_truncate`), so long-running platforms do
  not grow memory without limit.  Truncation never drops an entry any peer
  still needs — the truncation point is the *minimum* acknowledged sequence
  number across peers.
- :class:`ReplicaState` — one primary's mirror hosted on a peer server: a
  shadow :class:`~repro.ecommerce.databases.UserDB` plus the sequence number
  of the last applied entry.  Entries apply strictly in sequence order;
  duplicates are skipped, gaps stall the replica until anti-entropy fills
  them, so a replica is always a *prefix* of the primary's history.  A fresh
  replica (a peer added after the log was truncated, e.g. the new ring
  successor picked during a promotion failover) is bootstrapped from the
  primary's latest snapshot instead of the truncated entries.
- :class:`ReplicationSnapshot` — a full dump of the primary's durable
  consumer state at a known sequence number.  Bootstrapping a replica from a
  snapshot is byte-identical to replaying entries ``1..seq``.
- :class:`ReplicationManager` — one per participating server.  It owns the
  local WAL, the list of replica peers, and the replicas this server hosts
  for *other* primaries.  Writes stream synchronously when the network
  allows (each shipment is charged to the
  :class:`~repro.platform.network.SimulatedNetwork` via the transport, so
  replication traffic costs simulated time and bytes like any other
  transfer); when a peer is down, partitioned or the transfer is dropped,
  the entries stay in the log and a periodic anti-entropy task
  (:meth:`~repro.platform.clock.Scheduler.call_every`) re-ships everything
  the peer has not acknowledged once connectivity returns.  Peers can be
  removed or retargeted at runtime (:meth:`remove_peer`) — a promotion
  failover retires a dead primary's stream and points survivors at a new
  ring successor, clearing the retired ``replication.lag.*`` gauges so
  metrics never report a stream that no longer exists.

**Replication semantics — what is durable, what is lost.**

- *Durable (replicated):* consumer registrations, full profile state
  (including every learning update, as post-update snapshots), observational
  ratings in arrival order (so accumulated values replay identically),
  transaction records, login stamps and unregistrations.  A consumer whose
  entries reached at least one live replica survives a primary crash with
  byte-identical profile, ratings and transactions.
- *Lost on crash:* entries appended after the last successful shipment to
  every replica (the replication lag tail), and the primary's soft state —
  BSMDB session records, agent instances, recommendation caches — which is
  rebuilt on the consumer's next login.  A consumer *registered* during a
  replication outage is reported as lost by the failover drain rather than
  silently resurrected empty.
- *Lag visibility:* :meth:`ReplicationManager.lag_of` reports the per-peer
  unacknowledged-entry count, mirrored into platform metrics as
  ``replication.lag.<primary>-><peer>`` gauges; anti-entropy catch-ups are
  recorded as ``replication.catch-up`` events in the platform event log.
- *WAL bound:* with a positive truncation threshold the retained log is
  bounded by ``threshold + (entries appended since the last anti-entropy
  tick) + (max per-peer lag)`` — a fixed bound whenever peers keep
  acknowledging.  ``replication.wal-truncated`` events and the
  ``replication.wal.truncated_entries`` counter make truncations observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.errors import NetworkError, ReplicationError
from repro.core.neighbors import ProfileNeighborIndex
from repro.core.profile import Profile
from repro.core.profile_learning import FeedbackEvent
from repro.ecommerce.databases import UserDB
from repro.platform.clock import RecurringCallback

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.buyer_server import BuyerAgentServer

__all__ = [
    "ReplicationLogEntry",
    "ReplicationLog",
    "ReplicationSnapshot",
    "ReplicaState",
    "ReplicationManager",
]

#: Fixed per-entry framing overhead charged to the network, on top of the
#: payload's own (repr-estimated) size.
ENTRY_OVERHEAD_BYTES = 48

#: Fixed framing overhead of one snapshot shipment.
SNAPSHOT_OVERHEAD_BYTES = 256


@dataclass(frozen=True)
class ReplicationLogEntry:
    """One write-ahead-log entry: a durable mutation with a sequence number."""

    seq: int
    op: str
    payload: Dict[str, Any]
    timestamp: float

    def payload_bytes(self) -> int:
        """Deterministic wire-size estimate used to charge the network."""
        return ENTRY_OVERHEAD_BYTES + len(repr(self.payload))


@dataclass(frozen=True)
class ReplicationSnapshot:
    """A full dump of one primary's durable consumer state at ``seq``.

    ``state`` maps user id → the consumer's registration record fields,
    profile dict, observational interactions (arrival order) and transaction
    records.  Bootstrapping a :class:`ReplicaState` from a snapshot produces
    exactly the shadow UserDB that replaying entries ``1..seq`` would.
    """

    seq: int
    timestamp: float
    state: Dict[str, Dict[str, Any]]

    def payload_bytes(self) -> int:
        """Deterministic wire-size estimate used to charge the network."""
        return SNAPSHOT_OVERHEAD_BYTES + len(repr(self.state))


class ReplicationLog:
    """The primary's append-only write-ahead log with monotonic sequence numbers.

    The log can be **truncated**: :meth:`truncate_through` drops a fully
    acknowledged prefix (the caller — :meth:`ReplicationManager.maybe_truncate`
    — guarantees every peer is past it and a snapshot covers it).  Sequence
    numbers keep counting from where they were; only the storage goes.
    ``len(log)`` is the *retained* entry count, :attr:`last_seq` the newest
    sequence number ever appended.
    """

    def __init__(self) -> None:
        self._entries: List[ReplicationLogEntry] = []
        self._base_seq = 0  # every entry with seq <= _base_seq has been truncated

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest entry (0 when nothing was appended)."""
        return self._base_seq + len(self._entries)

    @property
    def truncated_seq(self) -> int:
        """Highest sequence number dropped by truncation (0 = never truncated)."""
        return self._base_seq

    def __len__(self) -> int:
        """Retained (untruncated) entry count — the log's actual memory."""
        return len(self._entries)

    def append(self, op: str, payload: Dict[str, Any], timestamp: float) -> ReplicationLogEntry:
        """Append one mutation; sequence numbers start at 1 and never skip."""
        entry = ReplicationLogEntry(
            seq=self.last_seq + 1, op=op, payload=dict(payload), timestamp=timestamp
        )
        self._entries.append(entry)
        return entry

    def entries_since(self, seq: int) -> List[ReplicationLogEntry]:
        """Every retained entry with a sequence number strictly greater than ``seq``.

        Asking for entries below the truncation point raises — the caller
        must bootstrap the peer from the snapshot instead (see
        :meth:`ReplicationManager._ship`).
        """
        if seq < 0:
            raise ReplicationError(f"sequence numbers are non-negative, got {seq}")
        if seq < self._base_seq:
            raise ReplicationError(
                f"entries through seq {self._base_seq} have been truncated; "
                f"bootstrap from the snapshot instead of replaying from {seq}"
            )
        return list(self._entries[seq - self._base_seq:])

    def truncate_through(self, seq: int) -> int:
        """Drop every entry with a sequence number ``<= seq``; return the count.

        The caller is responsible for the safety invariant: ``seq`` must not
        exceed any peer's acknowledged sequence number, or unacknowledged
        entries would be lost.
        """
        if seq <= self._base_seq:
            return 0
        if seq > self.last_seq:
            raise ReplicationError(
                f"cannot truncate through {seq}: the log only reaches {self.last_seq}"
            )
        dropped = seq - self._base_seq
        del self._entries[:dropped]
        self._base_seq = seq
        return dropped


class ReplicaState:
    """One primary's replicated state, hosted on a peer server.

    The shadow :class:`UserDB` is rebuilt purely from log entries, applied
    strictly in sequence order: :meth:`apply_entries` skips entries at or
    below ``applied_seq`` (duplicate shipments are idempotent) and stops at
    the first gap (anti-entropy re-ships the full missing suffix later), so
    the shadow is always an exact prefix of the primary's mutation history.
    A replica created after the primary truncated its log starts from a
    :meth:`bootstrap` snapshot instead of sequence 1.
    """

    def __init__(self, primary: str) -> None:
        self.primary = primary
        self.applied_seq = 0
        self.db = UserDB()
        # Lazily built neighbor index over the shadow profiles, so degraded /
        # hedged reads answered from this replica stop brute-forcing the
        # whole shadow community per query (see neighbor_index()).
        self._neighbor_index: Optional[ProfileNeighborIndex] = None
        self._neighbor_backend: Optional[str] = None

    def neighbor_index(self, backend: str = "dict") -> ProfileNeighborIndex:
        """A :class:`ProfileNeighborIndex` over this replica's shadow profiles.

        Built on first use and kept in sync through the shadow UserDB's
        provider/version-stamp reconcile: WAL applies replace whole profile
        objects (``store-profile``), so a query after a batch of applies
        re-indexes exactly the consumers whose profiles changed — lazily, at
        query time, never per WAL entry.  Answers are byte-identical to
        brute-forcing ``find_similar_users`` over ``db.profiles()`` (the PR 1
        equivalence guarantee), which is what degraded reads did before.
        :meth:`bootstrap` swaps the shadow DB wholesale, so it drops the
        index; the next read rebuilds against the restored state.
        """
        index = self._neighbor_index
        if index is None or self._neighbor_backend != backend:
            index = ProfileNeighborIndex(
                provider=self.db.profiles,
                provider_version=self.db.profiles_version,
                backend=backend,
            )
            self._neighbor_index = index
            self._neighbor_backend = backend
        return index

    def apply_entries(self, entries: List[ReplicationLogEntry]) -> int:
        """Apply an ordered batch; return how many entries were applied."""
        applied = 0
        for entry in entries:
            if entry.seq <= self.applied_seq:
                continue  # duplicate shipment — already applied
            if entry.seq != self.applied_seq + 1:
                break  # gap — wait for anti-entropy to ship the full suffix
            self._apply(entry)
            self.applied_seq = entry.seq
            applied += 1
        return applied

    def bootstrap(self, snapshot: ReplicationSnapshot) -> None:
        """Replace this replica's state with a full snapshot at ``snapshot.seq``.

        Equivalent — byte for byte — to having applied entries
        ``1..snapshot.seq`` in order.  Bootstrapping backwards (the replica
        already applied past the snapshot) is refused: a replica never
        regresses its prefix.
        """
        if snapshot.seq < self.applied_seq:
            raise ReplicationError(
                f"replica of {self.primary!r} already applied seq {self.applied_seq}; "
                f"refusing to regress to snapshot seq {snapshot.seq}"
            )
        db = UserDB()
        for user_id in sorted(snapshot.state):
            dump = snapshot.state[user_id]
            db.register(
                user_id, dump["display_name"], timestamp=dump["registered_at"]
            )
            db.store_profile(Profile.from_dict(dump["profile"]))
            for interaction in dump["interactions"]:
                db.record_interaction(interaction)
            for transaction in dump["transactions"]:
                db.record_transaction(transaction)
            record = db.user(user_id)
            record.logins = dump["logins"]
            record.last_login_at = dump["last_login_at"]
        self.db = db
        self.applied_seq = snapshot.seq
        # The old shadow DB (and any index built over it) is gone wholesale.
        self._neighbor_index = None
        self._neighbor_backend = None

    def _apply(self, entry: ReplicationLogEntry) -> None:
        payload = entry.payload
        if entry.op == "register":
            self.db.register(
                payload["user_id"],
                payload.get("display_name", ""),
                timestamp=payload.get("timestamp", 0.0),
            )
        elif entry.op == "unregister":
            self.db.unregister(payload["user_id"])
        elif entry.op == "store-profile":
            self.db.store_profile(Profile.from_dict(payload["profile"]))
        elif entry.op == "interaction":
            self.db.record_interaction(payload["interaction"])
        elif entry.op == "transaction":
            self.db.record_transaction(payload["transaction"])
        elif entry.op == "login":
            self.db.record_login(payload["user_id"], payload.get("timestamp", 0.0))
        elif entry.op == "login-stats":
            self.db.restore_login_stats(
                payload["user_id"],
                payload.get("logins", 0),
                payload.get("last_login_at", 0.0),
            )
        else:
            raise ReplicationError(f"unknown replication op {entry.op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaState(primary={self.primary!r}, applied_seq={self.applied_seq}, "
            f"consumers={len(self.db)})"
        )


class ReplicationManager:
    """Streams one buyer agent server's mutations to its replica peers.

    Attach with :meth:`BuyerAgentServer.enable_replication`; wire peers with
    :meth:`replicate_to`.  The manager hooks the server's UserDB mutation
    listener and the profile learner's update hook, so every durable write is
    logged and (network permitting) shipped immediately; the scheduled
    anti-entropy task re-ships anything a peer missed and — when a
    ``truncate_threshold`` is configured — snapshots and truncates the
    fully-acknowledged WAL prefix so the log stays bounded.
    """

    def __init__(
        self, server: "BuyerAgentServer", truncate_threshold: int = 0
    ) -> None:
        if truncate_threshold < 0:
            raise ReplicationError("WAL truncate threshold cannot be negative")
        self.server = server
        self.name = server.name
        self.log = ReplicationLog()
        #: Snapshot + truncate once every peer has acknowledged this many
        #: entries beyond the current truncation point (0 = never truncate).
        self.truncate_threshold = truncate_threshold
        #: The latest snapshot captured at truncation time (None before the
        #: first truncation).  Bootstraps peers whose acknowledged prefix has
        #: been truncated away.
        self.snapshot: Optional[ReplicationSnapshot] = None
        self.peers: List["BuyerAgentServer"] = []
        #: Highest sequence number each peer has acknowledged applying.
        self._acked: Dict[str, int] = {}
        #: Replicas this server hosts for *other* primaries (name → state).
        self.hosted: Dict[str, ReplicaState] = {}
        self._anti_entropy_task: Optional[RecurringCallback] = None
        server.user_db.add_mutation_listener(self._on_mutation)
        server.profile_learner.add_update_hook(self._on_profile_update)

    # -- wiring ---------------------------------------------------------------

    def replicate_to(self, peer: "BuyerAgentServer") -> ReplicaState:
        """Start streaming this server's WAL to ``peer``.

        The peer must have replication enabled too (it hosts the
        :class:`ReplicaState`).  Returns the replica state, which lives on
        the peer — exactly where the failover drain will look for it.  A
        peer added after the log was truncated is bootstrapped from the
        latest snapshot on the next shipment (synchronously if the network
        allows, else by anti-entropy).
        """
        if peer is self.server:
            raise ReplicationError(f"server {self.name!r} cannot replicate to itself")
        if peer.replication is None:
            raise ReplicationError(
                f"peer {peer.name!r} must enable replication before hosting a replica"
            )
        if any(existing is peer for existing in self.peers):
            raise ReplicationError(
                f"server {self.name!r} already replicates to {peer.name!r}"
            )
        state = peer.replication.host_replica(self.name)
        self.peers.append(peer)
        self._acked[peer.name] = min(state.applied_seq, self.log.last_seq)
        if self.log.last_seq > self._acked[peer.name]:
            self._ship(peer, [])
        return state

    def remove_peer(self, peer_name: str) -> None:
        """Stop streaming to ``peer_name`` and retire its lag gauge.

        Used when a peer host is decommissioned or a promotion failover
        retargets the stream to a new ring successor: the peer's
        acknowledgement no longer holds WAL truncation back, and the
        ``replication.lag.*`` gauge is removed rather than left frozen at
        its last pre-retirement value.  The replica the peer hosts is left
        in place (its host may be down); the peer purges it on recovery.
        """
        if peer_name not in self._acked:
            raise ReplicationError(
                f"{self.name!r} does not replicate to {peer_name!r}"
            )
        self.peers = [peer for peer in self.peers if peer.name != peer_name]
        del self._acked[peer_name]
        self.server.context.transport.metrics.remove_gauge(
            f"replication.lag.{self.name}->{peer_name}"
        )

    def host_replica(self, primary: str) -> ReplicaState:
        """Create (or return) the replica this server hosts for ``primary``."""
        if primary not in self.hosted:
            self.hosted[primary] = ReplicaState(primary)
        return self.hosted[primary]

    def discard_replica(self, primary: str) -> Optional[ReplicaState]:
        """Drop the replica hosted for ``primary`` (None when none is hosted).

        Called when the replica has been consumed by a promotion failover
        (its state now lives in the promoted server's own UserDB) or when a
        recovered host purges replicas for primaries that no longer stream
        to it.
        """
        return self.hosted.pop(primary, None)

    # -- capture hooks --------------------------------------------------------

    def _on_mutation(self, op: str, payload: Dict[str, Any]) -> None:
        self._append_and_stream(op, payload)

    def _on_profile_update(
        self, profile: Profile, event: Optional[FeedbackEvent] = None
    ) -> None:
        # In-place learning updates never pass through store_profile; snapshot
        # the whole profile so replicas converge to the exact post-update state.
        self._append_and_stream("store-profile", {"profile": profile.to_dict()})

    def _append_and_stream(self, op: str, payload: Dict[str, Any]) -> None:
        entry = self.log.append(op, payload, timestamp=self.server.context.now)
        if not self.server.context.host.is_running:
            return  # crashed primaries cannot ship; the tail is the lag
        for peer in self.peers:
            self._ship(peer, [entry])

    # -- shipping -------------------------------------------------------------

    def _ship(self, peer: "BuyerAgentServer", entries: List[ReplicationLogEntry]) -> int:
        """Ship ``entries`` to ``peer``; return how many it applied.

        A peer that missed earlier entries is sent the full unacknowledged
        suffix instead (replicas apply strictly in order); a peer whose
        acknowledged prefix has been truncated away — a stream retargeted
        after promotion, or a peer that discarded its replica — is first
        bootstrapped from the latest snapshot.  Network failures — peer
        down, partition, dropped transfer — leave the entries in the log for
        the next anti-entropy pass and are counted in
        ``replication.deferred``.
        """
        transport = self.server.context.transport
        state = peer.replication.host_replica(self.name)
        if state.applied_seq < self._acked[peer.name]:
            # The peer lost (or discarded) our replica since we last shipped:
            # trust the replica's actual prefix, not our stale bookkeeping.
            self._acked[peer.name] = state.applied_seq
        acked = self._acked[peer.name]
        if acked < self.log.truncated_seq:
            # The entries the peer needs next were truncated: bootstrap it
            # from the snapshot, then stream the retained suffix as usual.
            if self.snapshot is None:
                raise ReplicationError(
                    f"log of {self.name!r} truncated through "
                    f"{self.log.truncated_seq} without a snapshot"
                )
            try:
                transport.deliver(
                    self.name,
                    peer.name,
                    "replication-snapshot",
                    self.snapshot.payload_bytes(),
                )
            except NetworkError:
                transport.metrics.counter("replication.deferred").increment()
                return 0
            state.bootstrap(self.snapshot)
            self._acked[peer.name] = state.applied_seq
            acked = state.applied_seq
            transport.metrics.counter("replication.snapshots_shipped").increment()
            transport.event_log.record(
                self.server.context.now,
                "replication.snapshot-bootstrap",
                self.name,
                peer.name,
                snapshot_seq=self.snapshot.seq,
            )
            entries = []
        if not entries or entries[0].seq <= acked or entries[0].seq > acked + 1:
            entries = self.log.entries_since(acked)
        if not entries:
            self._record_lag(peer)
            return 0
        payload_bytes = sum(entry.payload_bytes() for entry in entries)
        try:
            transport.deliver(self.name, peer.name, "replication", payload_bytes)
        except NetworkError:
            transport.metrics.counter("replication.deferred").increment()
            return 0
        applied = state.apply_entries(entries)
        self._acked[peer.name] = state.applied_seq
        transport.metrics.counter("replication.entries_shipped").increment(applied)
        self._record_lag(peer)
        return applied

    def _record_lag(self, peer: "BuyerAgentServer") -> None:
        metrics = self.server.context.transport.metrics
        metrics.gauge(f"replication.lag.{self.name}->{peer.name}").set(
            self.lag_of(peer.name)
        )

    def catch_up(self, peer_name: str) -> int:
        """Immediately re-ship the unacknowledged suffix to one peer.

        The read-repair nudge: a stale-answered fleet query calls this for
        the replica holder that served it, instead of waiting for the next
        scheduled anti-entropy tick.  Ships synchronously (charged to the
        simulated network like any shipment; deferred on network failure)
        and returns the peer's remaining lag — 0 means the replica is now an
        exact copy of the primary's durable history.  A crashed primary
        cannot ship; the call is then a no-op returning the current lag.
        """
        peer = next((p for p in self.peers if p.name == peer_name), None)
        if peer is None:
            raise ReplicationError(
                f"{self.name!r} does not replicate to {peer_name!r}"
            )
        if not self.server.context.host.is_running:
            return self.lag_of(peer_name)
        self._ship(peer, [])
        self._record_lag(peer)
        return self.lag_of(peer_name)

    def lag_of(self, peer_name: str) -> int:
        """Unacknowledged entries for ``peer_name`` (replication lag in ops)."""
        if peer_name not in self._acked:
            raise ReplicationError(f"{self.name!r} does not replicate to {peer_name!r}")
        return self.log.last_seq - self._acked[peer_name]

    def acked_seq(self, peer_name: str) -> int:
        """Highest sequence number ``peer_name`` has acknowledged."""
        if peer_name not in self._acked:
            raise ReplicationError(f"{self.name!r} does not replicate to {peer_name!r}")
        return self._acked[peer_name]

    # -- snapshot + truncation ------------------------------------------------

    def _capture_snapshot(self) -> ReplicationSnapshot:
        """Dump the primary's full durable consumer state at ``log.last_seq``."""
        db = self.server.user_db
        state: Dict[str, Dict[str, Any]] = {}
        for user_id in db.user_ids:
            record = db.user(user_id)
            state[user_id] = {
                "display_name": record.display_name,
                "registered_at": record.registered_at,
                "logins": record.logins,
                "last_login_at": record.last_login_at,
                "profile": db.profile(user_id).to_dict(),
                "interactions": list(db.ratings.interactions_of(user_id)),
                "transactions": list(db.transactions_of(user_id)),
            }
        return ReplicationSnapshot(
            seq=self.log.last_seq,
            timestamp=self.server.context.now,
            state=state,
        )

    def maybe_truncate(self) -> int:
        """Snapshot + truncate the fully-acknowledged WAL prefix; return dropped count.

        The truncation point is ``min`` of every peer's acknowledged
        sequence number — **never** past an unacknowledged entry, so a
        lagging peer (down, partitioned, mid-catch-up) holds truncation back
        instead of losing its suffix.  Runs only when the acknowledged
        prefix beyond the current truncation point has reached
        :attr:`truncate_threshold` entries (0 disables truncation), so
        snapshot capture cost is amortised.
        """
        if self.truncate_threshold <= 0 or not self.peers:
            return 0
        safe = min(self._acked.values())
        if safe - self.log.truncated_seq < self.truncate_threshold:
            return 0
        self.snapshot = self._capture_snapshot()
        dropped = self.log.truncate_through(safe)
        transport = self.server.context.transport
        transport.metrics.counter("replication.wal.truncated_entries").increment(dropped)
        transport.event_log.record(
            self.server.context.now,
            "replication.wal-truncated",
            self.name,
            self.name,
            through_seq=safe,
            dropped=dropped,
            retained=len(self.log),
            snapshot_seq=self.snapshot.seq,
        )
        return dropped

    # -- anti-entropy ---------------------------------------------------------

    def anti_entropy_tick(self) -> int:
        """Re-ship every unacknowledged entry to every peer; return shipped count.

        Skips entirely while the primary host is down (a crashed server
        cannot send), records a ``replication.catch-up`` event whenever a
        lagging peer was actually caught up, and finishes by truncating the
        fully-acknowledged WAL prefix when the bound is configured.
        """
        if not self.server.context.host.is_running:
            return 0
        transport = self.server.context.transport
        shipped = 0
        for peer in self.peers:
            lagging = self.lag_of(peer.name) > 0
            applied = self._ship(peer, [])
            shipped += applied
            if applied and lagging:
                transport.event_log.record(
                    self.server.context.now,
                    "replication.catch-up",
                    self.name,
                    peer.name,
                    entries=applied,
                    remaining_lag=self.lag_of(peer.name),
                )
            self._record_lag(peer)
        self.maybe_truncate()
        return shipped

    @property
    def anti_entropy_scheduled(self) -> bool:
        return (
            self._anti_entropy_task is not None
            and not self._anti_entropy_task.cancelled
        )

    def start_anti_entropy(self, interval_ms: float) -> RecurringCallback:
        """Run :meth:`anti_entropy_tick` every ``interval_ms`` of simulated time."""
        if interval_ms <= 0:
            raise ReplicationError("anti-entropy interval must be positive")
        if self.anti_entropy_scheduled:
            raise ReplicationError(
                f"server {self.name!r} already has a scheduled anti-entropy task"
            )
        self._anti_entropy_task = self.server.context.host.scheduler.call_every(
            interval_ms, self.anti_entropy_tick, label=f"replication.{self.name}"
        )
        return self._anti_entropy_task

    def stop_anti_entropy(self) -> None:
        """Cancel the scheduled anti-entropy task (no-op when none is armed)."""
        if self._anti_entropy_task is not None:
            self._anti_entropy_task.cancel()
            self._anti_entropy_task = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicationManager({self.name!r}, wal={self.log.last_seq}, "
            f"retained={len(self.log)}, "
            f"peers={[peer.name for peer in self.peers]}, "
            f"hosts={sorted(self.hosted)})"
        )
