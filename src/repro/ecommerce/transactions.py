"""Transaction records produced by purchases, auctions and negotiations.

UserDB "records the consumer user profile and consumer transaction records"
(§3.3); every completed trade on a marketplace comes back to the buyer agent
server as a :class:`TransactionRecord` and is stored there.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import TransactionError

__all__ = ["TransactionKind", "TransactionRecord"]

_transaction_ids = itertools.count(1)


class TransactionKind(enum.Enum):
    """How the trade was concluded."""

    DIRECT_PURCHASE = "direct-purchase"
    AUCTION_WIN = "auction-win"
    NEGOTIATED_PURCHASE = "negotiated-purchase"


@dataclass(frozen=True)
class TransactionRecord:
    """One completed trade between a consumer and a marketplace."""

    transaction_id: str
    user_id: str
    item_id: str
    marketplace: str
    kind: TransactionKind
    price: float
    list_price: float
    timestamp: float
    seller: str = ""

    def __post_init__(self) -> None:
        if self.price < 0 or self.list_price < 0:
            raise TransactionError(
                f"transaction {self.transaction_id!r} has a negative price"
            )

    @classmethod
    def create(
        cls,
        user_id: str,
        item_id: str,
        marketplace: str,
        kind: TransactionKind,
        price: float,
        list_price: float,
        timestamp: float,
        seller: str = "",
        transaction_id: Optional[str] = None,
    ) -> "TransactionRecord":
        """Build a record, minting a process-global id when none is given.

        Callers that need *run-deterministic* ids (two same-seed platforms in
        one process must produce identical records — replication payload
        sizes, and therefore simulated clocks, depend on them) should pass
        their own ``transaction_id``; the marketplaces mint
        ``txn-<marketplace>-<n>`` from a per-marketplace sequence.
        """
        return cls(
            transaction_id=transaction_id or f"txn-{next(_transaction_ids)}",
            user_id=user_id,
            item_id=item_id,
            marketplace=marketplace,
            kind=kind,
            price=price,
            list_price=list_price,
            timestamp=timestamp,
            seller=seller,
        )

    @property
    def savings(self) -> float:
        """How much below list price the consumer paid (never negative)."""
        return max(0.0, self.list_price - self.price)

    def to_dict(self) -> Dict[str, object]:
        return {
            "transaction_id": self.transaction_id,
            "user_id": self.user_id,
            "item_id": self.item_id,
            "marketplace": self.marketplace,
            "kind": self.kind.value,
            "price": self.price,
            "list_price": self.list_price,
            "timestamp": self.timestamp,
            "seller": self.seller,
        }
