"""Seller servers and their agents.

"Seller Server stands for the seller and merchandise provider.  The seller
server's function contains integrating and cataloging merchandise." (§3.2)

A :class:`SellerServer` keeps its own master catalogue and lists merchandise
on marketplaces through :class:`MobileSellerAgent` (MSA) instances: the MSA
migrates to the marketplace carrying the listings and hands them to the
marketplace agent there — the seller-side mirror of the buyer's MBA.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ECommerceError
from repro.agents.aglet import Aglet
from repro.agents.context import AgletContext
from repro.agents.messages import Message, MessageKinds, Reply
from repro.core.items import Item
from repro.ecommerce.catalog import MerchandiseCatalog

__all__ = ["SellerAgent", "MobileSellerAgent", "SellerServer"]


class SellerAgent(Aglet):
    """Static agent managing a seller server's master catalogue."""

    agent_type = "SA"

    def on_creation(self, seller_name: str = "") -> None:
        self.seller_name = seller_name or self.location

    def _server(self) -> "SellerServer":
        return self.context.host.service("seller-server")

    def handle_message(self, message: Message) -> Reply:
        if message.kind == MessageKinds.MARKET_CATALOG:
            # A marketplace (or test) asking what this seller offers.
            server = self._server()
            return message.reply(
                listings=[
                    {"item": listing.item, "stock": listing.stock,
                     "reserve_price": listing.reserve_price}
                    for listing in server.catalog.listings()
                ],
                seller=server.name,
            )
        return super().handle_message(message)


class MobileSellerAgent(Aglet):
    """Mobile agent carrying listings from a seller server to a marketplace."""

    agent_type = "MSA"

    def on_creation(self, listings: Optional[List[Dict]] = None, home: str = "") -> None:
        self.listings = list(listings or [])
        self.home = home
        self.delivered_to: List[str] = []

    def deliver_listings(self) -> int:
        """Hand the carried listings to the marketplace agent on this host."""
        market_agents = self.context.active_aglets("MarketAgent")
        if not market_agents:
            raise ECommerceError(
                f"MSA {self.aglet_id} arrived on {self.location!r} but found no marketplace agent"
            )
        reply = self.send_to(
            market_agents[0], MessageKinds.MARKET_CATALOG, listings=self.listings
        )
        if not reply.ok:
            raise ECommerceError(f"marketplace rejected listings: {reply.error}")
        self.delivered_to.append(self.location)
        return int(reply.value("added", 0))


class SellerServer:
    """One merchandise provider of the e-commerce platform."""

    def __init__(self, context: AgletContext) -> None:
        self.context = context
        self.name = context.host_name
        self.catalog = MerchandiseCatalog(owner=self.name)
        context.host.attach_service("seller-server", self)
        self.agent = context.create(SellerAgent, owner=self.name, seller_name=self.name)
        self.listed_on: List[str] = []

    # -- catalogue management ---------------------------------------------------------

    def add_merchandise(self, item: Item, stock: int = 1, reserve_price: float = 0.0) -> None:
        """Add one item to the seller's master catalogue."""
        if item.seller and item.seller != self.name:
            raise ECommerceError(
                f"item {item.item_id!r} belongs to seller {item.seller!r}, "
                f"cannot be catalogued by {self.name!r}"
            )
        self.catalog.list_item(item, stock=stock, reserve_price=reserve_price)

    def add_all(self, items: Iterable[Item], stock: int = 1) -> int:
        count = 0
        for item in items:
            self.add_merchandise(item, stock=stock)
            count += 1
        return count

    # -- marketplace listing -------------------------------------------------------------

    def list_on_marketplace(self, marketplace_host: str) -> int:
        """Send an MSA to ``marketplace_host`` carrying the full catalogue.

        Returns the number of listings the marketplace accepted.
        """
        listings = [
            {"item": listing.item, "stock": listing.stock,
             "reserve_price": listing.reserve_price}
            for listing in self.catalog.listings()
        ]
        if not listings:
            return 0
        msa = self.context.create(
            MobileSellerAgent, owner=self.name, listings=listings, home=self.name
        )
        self.context.dispatch(msa, marketplace_host)
        remote_context = self.context.directory.context_for(marketplace_host)
        remote_msa = remote_context.get_local(msa.aglet_id)
        added = remote_msa.deliver_listings()
        # The MSA's job is done; retract it home and dispose of it.
        self.context.retract(msa.aglet_id)
        self.context.dispose(self.context.get_local(msa.aglet_id))
        if marketplace_host not in self.listed_on:
            self.listed_on.append(marketplace_host)
        return added
