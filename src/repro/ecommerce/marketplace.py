"""Marketplace server: where buyer and seller mobile agents trade.

"Marketplace is a place that lets the Mobile Agent of the Buyer and the Mobile
Agent of the Seller trade with each other.  And provide kinds of trading
services such as: information query, negotiations, and auctions." (§3.2)

A :class:`MarketplaceServer` owns a merchandise catalogue (stocked by seller
agents), an auction house and a negotiation service, and hosts a static
:class:`MarketplaceAgent` that answers the trading messages mobile agents send
while visiting the marketplace host.
"""

from __future__ import annotations

import itertools

from typing import Dict, List, Optional

from repro.errors import CatalogError, MarketplaceError, TransactionError
from repro.adversarial.handshake import HandshakeBroker, HandshakeTranscript
from repro.agents.aglet import Aglet
from repro.agents.context import AgletContext
from repro.agents.messages import Message, MessageKinds, Reply
from repro.core.items import Item
from repro.ecommerce.auction import AuctionHouse
from repro.ecommerce.catalog import MerchandiseCatalog
from repro.ecommerce.negotiation import NegotiationService
from repro.ecommerce.transactions import TransactionKind, TransactionRecord

__all__ = ["MarketplaceAgent", "MarketplaceServer"]


class MarketplaceAgent(Aglet):
    """Static agent answering trading requests on a marketplace host.

    The agent keeps no trading state of its own: the catalogue, auction house
    and negotiation service are host services, fetched per message, so the
    agent itself stays trivially serialisable.
    """

    agent_type = "MarketAgent"

    def on_creation(self, marketplace_name: str = "") -> None:
        self.marketplace_name = marketplace_name or self.location

    # -- host service access ----------------------------------------------------

    def _server(self) -> "MarketplaceServer":
        return self.context.host.service("marketplace-server")

    # -- message handling ----------------------------------------------------------

    def handle_message(self, message: Message) -> Reply:
        server = self._server()
        try:
            if message.kind == MessageKinds.MARKET_QUERY:
                return self._handle_query(server, message)
            if message.kind == MessageKinds.MARKET_BUY:
                return self._handle_buy(server, message)
            if message.kind == MessageKinds.MARKET_NEGOTIATE:
                return self._handle_negotiate(server, message)
            if message.kind == MessageKinds.MARKET_AUCTION_BID:
                return self._handle_auction(server, message)
            if message.kind == MessageKinds.MARKET_CATALOG:
                return self._handle_catalog_update(server, message)
        except (MarketplaceError, TransactionError, CatalogError) as exc:
            return Reply.failure(message.kind, str(exc), message.correlation_id)
        return super().handle_message(message)

    def _handle_query(self, server: "MarketplaceServer", message: Message) -> Reply:
        keyword = message.argument("keyword", "")
        category = message.argument("category")
        listings = server.search(keyword=keyword, category=category)
        results = [
            {
                "item": listing.item,
                "price": listing.item.price,
                "stock": listing.stock,
                "marketplace": server.name,
            }
            for listing in listings
        ]
        return message.reply(results=results, marketplace=server.name)

    def _handle_buy(self, server: "MarketplaceServer", message: Message) -> Reply:
        item_id = message.require("item_id")
        user_id = message.require("user_id")
        transaction = server.sell_direct(item_id, user_id, timestamp=self.now)
        return message.reply(transaction=transaction, marketplace=server.name)

    def _handle_negotiate(self, server: "MarketplaceServer", message: Message) -> Reply:
        item_id = message.require("item_id")
        user_id = message.require("user_id")
        max_price = float(message.require("max_price"))
        outcome, transaction = server.negotiate_purchase(
            item_id, user_id, max_price, timestamp=self.now
        )
        return message.reply(
            agreed=outcome.agreed,
            final_price=outcome.final_price,
            rounds=outcome.rounds,
            transaction=transaction,
            marketplace=server.name,
        )

    def _handle_auction(self, server: "MarketplaceServer", message: Message) -> Reply:
        item_id = message.require("item_id")
        user_id = message.require("user_id")
        max_price = float(message.require("max_price"))
        result, transaction = server.auction_purchase(
            item_id, user_id, max_price, timestamp=self.now
        )
        return message.reply(
            won=transaction is not None,
            winning_bid=result.winning_bid,
            rounds=result.rounds,
            bids=result.bids,
            transaction=transaction,
            marketplace=server.name,
        )

    def _handle_catalog_update(self, server: "MarketplaceServer", message: Message) -> Reply:
        listings = message.require("listings")
        added = 0
        for entry in listings:
            server.catalog.list_item(
                entry["item"], stock=int(entry.get("stock", 1)),
                reserve_price=float(entry.get("reserve_price", 0.0)),
            )
            added += 1
        return message.reply(added=added, marketplace=server.name)


class MarketplaceServer:
    """One marketplace of the e-commerce platform.

    With ``handshake_trades`` the marketplace secures every trade with
    the :mod:`repro.adversarial.handshake` protocol: its auth service
    backs a :class:`HandshakeBroker`, the trade services refuse work
    without a redeemable transcript, and every recorded transaction is
    backed by one in :attr:`trade_handshakes` (what the invariant
    auditor re-checks).  Off by default — the unsecured trade path is
    byte-identical to the pre-handshake platform.
    """

    def __init__(
        self, context: AgletContext, seed: int = 0, handshake_trades: bool = False
    ) -> None:
        self.context = context
        self.name = context.host_name
        self.catalog = MerchandiseCatalog(owner=self.name)
        self.handshakes: Optional[HandshakeBroker] = (
            HandshakeBroker(self.name, context.auth) if handshake_trades else None
        )
        #: transaction_id → transcript backing it (handshake mode only).
        self.trade_handshakes: Dict[str, HandshakeTranscript] = {}
        self.auction_house = AuctionHouse(
            self.name, seed=seed, handshake=self.handshakes
        )
        self.negotiations = NegotiationService(self.name, handshake=self.handshakes)
        self.transactions: List[TransactionRecord] = []
        # Per-marketplace id sequence: two same-seed platforms built in the
        # same process mint identical transaction ids (the process-global
        # fallback in TransactionRecord.create would not), which keeps whole
        # runs — including replication payload sizes — reproducible.
        self._transaction_seq = itertools.count(1)
        context.host.attach_service("marketplace-server", self)
        self.agent = context.create(MarketplaceAgent, owner=self.name,
                                    marketplace_name=self.name)

    def _next_transaction_id(self) -> str:
        return f"txn-{self.name}-{next(self._transaction_seq)}"

    # -- querying -----------------------------------------------------------------

    def search(self, keyword: str = "", category: Optional[str] = None):
        """Search the catalogue by keyword and/or category."""
        if keyword:
            listings = self.catalog.search(keyword)
            if category:
                listings = [l for l in listings if l.item.category == category]
            return listings
        if category:
            return self.catalog.in_category(category)
        return [listing for listing in self.catalog.listings() if listing.available]

    # -- trading ---------------------------------------------------------------------

    def sell_direct(self, item_id: str, user_id: str, timestamp: float) -> TransactionRecord:
        """A straight purchase at list price."""
        handshake = None
        if self.handshakes is not None:
            handshake = self.handshakes.perform(user_id, timestamp)
            self.handshakes.redeem(handshake)
        item = self.catalog.sell(item_id)
        transaction = TransactionRecord.create(
            user_id=user_id,
            item_id=item_id,
            marketplace=self.name,
            kind=TransactionKind.DIRECT_PURCHASE,
            price=item.price,
            list_price=item.price,
            timestamp=timestamp,
            seller=item.seller,
            transaction_id=self._next_transaction_id(),
        )
        if handshake is not None:
            self.trade_handshakes[transaction.transaction_id] = handshake
        self.transactions.append(transaction)
        return transaction

    def negotiate_purchase(
        self, item_id: str, user_id: str, max_price: float, timestamp: float
    ):
        """Bargain for the item; buy it at the agreed price on success."""
        listing = self.catalog.listing(item_id)
        if not listing.available:
            raise TransactionError(f"item {item_id!r} is out of stock on {self.name!r}")
        handshake = None
        if self.handshakes is not None:
            handshake = self.handshakes.perform(user_id, timestamp)
        outcome = self.negotiations.negotiate(
            listing.item,
            buyer_max=max_price,
            seller_reserve=listing.reserve_price,
            handshake=handshake,
        )
        transaction = None
        if outcome.agreed:
            self.catalog.sell(item_id)
            transaction = TransactionRecord.create(
                user_id=user_id,
                item_id=item_id,
                marketplace=self.name,
                kind=TransactionKind.NEGOTIATED_PURCHASE,
                price=outcome.final_price,
                list_price=listing.item.price,
                timestamp=timestamp,
                seller=listing.item.seller,
                transaction_id=self._next_transaction_id(),
            )
            if handshake is not None:
                self.trade_handshakes[transaction.transaction_id] = handshake
            self.transactions.append(transaction)
        return outcome, transaction

    def auction_purchase(
        self, item_id: str, user_id: str, max_price: float, timestamp: float
    ):
        """Run an auction for the item; buy it if the consumer's agent wins."""
        listing = self.catalog.listing(item_id)
        if not listing.available:
            raise TransactionError(f"item {item_id!r} is out of stock on {self.name!r}")
        handshake = None
        if self.handshakes is not None:
            handshake = self.handshakes.perform(user_id, timestamp)
        result = self.auction_house.run_auction(
            listing.item, bidder=user_id, max_price=max_price,
            reserve_price=listing.reserve_price,
            handshake=handshake,
        )
        transaction = None
        if result.winner == user_id:
            self.catalog.sell(item_id)
            transaction = TransactionRecord.create(
                user_id=user_id,
                item_id=item_id,
                marketplace=self.name,
                kind=TransactionKind.AUCTION_WIN,
                price=result.winning_bid,
                list_price=listing.item.price,
                timestamp=timestamp,
                seller=listing.item.seller,
                transaction_id=self._next_transaction_id(),
            )
            if handshake is not None:
                self.trade_handshakes[transaction.transaction_id] = handshake
            self.transactions.append(transaction)
        return result, transaction

    # -- statistics --------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        stats = {
            "listings": float(len(self.catalog)),
            "stock": float(self.catalog.total_stock()),
            "sold": float(self.catalog.total_sold()),
            "transactions": float(len(self.transactions)),
            "auctions": float(len(self.auction_house.completed)),
            "negotiations": float(len(self.negotiations.completed)),
        }
        if self.handshakes is not None:
            # Keys appear only in handshake mode, keeping the unsecured
            # platform's stats byte-identical.
            stats.update(
                {f"handshakes_{key}": value for key, value in self.handshakes.stats().items()}
            )
        return stats
